"""Tests for adaptive (feedback-driven) video sending."""

import pytest

from repro.apps.video.adaptive import (
    AdaptiveVideoSender,
    FeedbackReporter,
    attach_feedback_channel,
)
from repro.apps.video.quality import SsimModel
from repro.apps.video.receiver import VideoReceiver
from repro.apps.video.svc import SvcEncoderModel
from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec
from repro.units import mbps, ms


def build_session(net, duration=None, **sender_kwargs):
    encoder = SvcEncoderModel()
    media = net.open_datagram()
    feedback = net.open_datagram()
    sender = AdaptiveVideoSender(
        net.sim, media.client, encoder, duration=duration, **sender_kwargs
    )
    receiver = VideoReceiver(net.sim, media.server, encoder)
    reporter = FeedbackReporter(net.sim, receiver, feedback.server)
    attach_feedback_channel(sender, feedback.client)
    return sender, receiver


class TestAdaptiveSender:
    def test_keeps_full_ladder_on_clean_network(self):
        net = HvcNetwork(
            [fixed_embb_spec(rate_bps=mbps(50), rtt=ms(20))], steering="single"
        )
        sender, _ = build_session(net, duration=6.0)
        net.run(until=7.0)
        assert sender.active_layers == 3
        assert sender.adaptation_log == [(0.0, 3)]

    def test_drops_layers_when_channel_too_narrow(self):
        # 6 Mbps < the 12 Mbps ladder: frames arrive late, feedback bites.
        net = HvcNetwork(
            [fixed_embb_spec(rate_bps=mbps(6), rtt=ms(20))], steering="single"
        )
        sender, _ = build_session(net, duration=10.0)
        net.run(until=11.0)
        assert sender.active_layers < 3
        assert len(sender.adaptation_log) > 1

    def test_adaptation_restores_timeliness(self):
        """After dropping to a sustainable ladder, frames arrive on time."""
        net = HvcNetwork(
            [fixed_embb_spec(rate_bps=mbps(6), rtt=ms(20))], steering="single"
        )
        sender, receiver = build_session(net, duration=20.0)
        net.run(until=21.0)
        late_window = [f for f in receiver.frames if f.sent_at > 15.0 and f.decoded]
        assert late_window
        on_time = sum(1 for f in late_window if f.latency <= ms(120))
        assert on_time / len(late_window) > 0.8

    def test_restores_layers_after_recovery(self):
        sender_net = HvcNetwork(
            [fixed_embb_spec(rate_bps=mbps(50), rtt=ms(20))], steering="single"
        )
        sender, _ = build_session(
            sender_net, duration=15.0, restore_after=1.0
        )
        # Force a drop manually, then let clean feedback restore it.
        sender.on_feedback(0.2)
        assert sender.active_layers == 2
        sender_net.run(until=10.0)
        assert sender.active_layers == 3

    def test_never_drops_base_layer(self):
        net = HvcNetwork(
            [fixed_embb_spec(rate_bps=mbps(1), rtt=ms(20))], steering="single"
        )
        sender, _ = build_session(net, duration=10.0)
        net.run(until=11.0)
        assert sender.active_layers >= 1
