"""Unit tests for the shim resequencing buffer."""

import pytest

from repro.net.packet import Packet, PacketType
from repro.net.resequencer import Resequencer
from repro.sim.kernel import Simulator


def pkt(shim_seq, flow=1, channel=0, channels=1):
    packet = Packet(flow_id=flow, ptype=PacketType.DATA, payload_bytes=100)
    packet.shim_seq = shim_seq
    packet.channel_index = channel
    packet.shim_channel_count = channels
    return packet


@pytest.fixture
def rig():
    sim = Simulator()
    delivered = []
    reseq = Resequencer(sim, lambda p: delivered.append(p.shim_seq), timeout=0.05)
    return sim, reseq, delivered


class TestResequencer:
    def test_in_order_passthrough(self, rig):
        sim, reseq, delivered = rig
        for seq in range(5):
            reseq.push(pkt(seq))
        assert delivered == [0, 1, 2, 3, 4]
        assert reseq.packets_held == 0

    def test_untagged_packets_bypass(self, rig):
        sim, reseq, delivered = rig
        packet = Packet(flow_id=1, ptype=PacketType.DATA)
        packet.shim_seq = None
        reseq.push(packet)
        assert len(delivered) == 1

    def test_reordered_pair_restored(self, rig):
        sim, reseq, delivered = rig
        reseq.push(pkt(1, channel=1, channels=2))
        assert delivered == []  # held: 0 is missing
        reseq.push(pkt(0, channel=0, channels=2))
        assert delivered == [0, 1]

    def test_cross_channel_reordering_restored(self, rig):
        """eMBB packets 0-2 arrive after URLLC packet 3."""
        sim, reseq, delivered = rig
        reseq.push(pkt(3, channel=1, channels=2))
        for seq in range(3):
            reseq.push(pkt(seq, channel=0, channels=2))
        assert delivered == [0, 1, 2, 3]

    def test_fifo_proof_flushes_hole_immediately(self, rig):
        """Single channel: a later same-channel arrival proves the hole lost."""
        sim, reseq, delivered = rig
        reseq.push(pkt(0, channel=0))
        reseq.push(pkt(2, channel=0))  # 1 was dropped on channel 0
        # Channel 0 delivered beyond seq 1 → 1 is provably lost; no waiting.
        assert delivered == [0, 2]

    def test_multi_channel_hole_waits_for_proof(self, rig):
        sim, reseq, delivered = rig
        reseq.push(pkt(0, channel=0, channels=2))
        reseq.push(pkt(2, channel=1, channels=2))  # 1 may be queued on ch 0
        assert delivered == [0]
        reseq.push(pkt(3, channel=0, channels=2))  # every channel beyond 1
        assert delivered == [0, 2, 3]

    def test_timeout_flushes_unproven_hole(self, rig):
        sim, reseq, delivered = rig
        reseq.push(pkt(0, channel=0, channels=2))
        reseq.push(pkt(2, channel=1, channels=2))
        sim.run(until=1.0)
        assert delivered == [0, 2]
        assert reseq.timeout_flushes == 1

    def test_straggler_after_flush_passes_through(self, rig):
        sim, reseq, delivered = rig
        reseq.push(pkt(0, channel=0, channels=2))
        reseq.push(pkt(2, channel=1, channels=2))
        sim.run(until=1.0)  # hole for 1 flushed
        reseq.push(pkt(1, channel=0, channels=2))
        assert delivered == [0, 2, 1]

    def test_duplicate_held_packet_ignored(self, rig):
        sim, reseq, delivered = rig
        reseq.push(pkt(2, channel=1, channels=2))
        reseq.push(pkt(2, channel=1, channels=2))
        reseq.push(pkt(0, channel=0, channels=2))
        reseq.push(pkt(1, channel=0, channels=2))
        assert delivered == [0, 1, 2]

    def test_flows_are_independent(self, rig):
        sim, reseq, delivered = rig
        reseq.push(pkt(1, flow=1, channel=1, channels=2))  # held
        reseq.push(pkt(0, flow=2, channel=0))  # different flow: delivered
        assert delivered == [0]

    def test_timeout_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resequencer(sim, lambda p: None, timeout=0)

    def test_interleaved_channels_restore_total_order(self, rig):
        """Per-channel FIFO arrivals in any interleaving come out sorted."""
        import random

        sim, reseq, delivered = rig
        evens = [s for s in range(50) if s % 2 == 0]  # channel 0, in order
        odds = [s for s in range(50) if s % 2 == 1]  # channel 1, in order
        rng = random.Random(3)
        while evens or odds:
            source = evens if (not odds or (evens and rng.random() < 0.5)) else odds
            seq = source.pop(0)
            reseq.push(pkt(seq, channel=seq % 2, channels=2))
        sim.run(until=5.0)
        assert delivered == list(range(50))
