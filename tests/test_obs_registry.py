"""Unit tests for the repro.obs metrics registry."""

import pytest

from repro.obs.registry import MetricsRegistry


class TestCounters:
    def test_counter_is_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("link.delivered", channel="embb")
        counter.inc()
        counter.add(4)
        assert counter.value == 5

    def test_set_total_adopts_but_never_regresses(self):
        registry = MetricsRegistry()
        counter = registry.counter("link.offered")
        counter.set_total(10)
        counter.set_total(7)  # stale collector read must not rewind
        assert counter.value == 10

    def test_handles_are_memoized_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("steer.decisions", host="client", channel=0)
        b = registry.counter("steer.decisions", channel=0, host="client")
        c = registry.counter("steer.decisions", host="client", channel=1)
        assert a is b
        assert a is not c

    def test_label_values_stringified(self):
        registry = MetricsRegistry()
        counter = registry.counter("steer.decisions", channel=0)
        counter.inc()
        assert registry.value("steer.decisions", channel="0") == 1


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("link.backlog_bytes", channel="embb")
        gauge.set(100)
        gauge.set(40)
        assert registry.value("link.backlog_bytes", channel="embb") == 40

    def test_histogram_summary_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("span.latency")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert sum(hist.buckets.values()) == 3


class TestCollectors:
    def test_collector_syncs_external_totals(self):
        registry = MetricsRegistry()

        class Stats:
            sent = 0

        stats = Stats()
        counter = registry.counter("link.offered")
        registry.add_collector(lambda _r: counter.set_total(stats.sent))
        stats.sent = 42
        assert registry.value("link.offered") == 42
        stats.sent = 50
        snapshot = registry.snapshot()
        assert snapshot["link.offered"][0]["value"] == 50

    def test_value_unknown_metric_is_none(self):
        assert MetricsRegistry().value("no.such.metric") is None


class TestRendering:
    def test_snapshot_groups_by_family(self):
        registry = MetricsRegistry()
        registry.counter("link.delivered", channel="embb", direction="up").add(3)
        registry.counter("link.delivered", channel="urllc", direction="up").add(1)
        registry.gauge("link.backlog_bytes", channel="embb", direction="up").set(9)
        snapshot = registry.snapshot()
        assert len(snapshot["link.delivered"]) == 2
        assert snapshot["link.backlog_bytes"][0]["labels"] == {
            "channel": "embb",
            "direction": "up",
        }

    def test_render_one_line_per_metric(self):
        registry = MetricsRegistry()
        registry.counter("sim.events_processed").add(7)
        registry.histogram("span.latency", channel="embb").observe(0.5)
        text = registry.render()
        assert "sim.events_processed 7" in text
        assert "span.latency{channel=embb} count=1" in text
