"""Chaos-campaign tests: seeded determinism, bundles, and the triage loop.

The campaign's contract has three legs. Scenario generation is a pure
function of the seed — "chaos" happens inside the simulations, never in
what the campaign decides to run. Clean code passes a campaign with zero
violations. And a planted bug (``--seed-bug``) is caught, bundled, and the
bundle replays to the *same* violation — law, entity, and simulated time —
which is the property that makes a CI chaos failure triageable instead of
a shrug.
"""

from __future__ import annotations

import random

import pytest

from repro.check import (
    random_scenario,
    read_bundle,
    replay_bundle,
    run_campaign,
    run_scenario,
    same_violation,
    write_bundle,
)
from repro.check.chaos import PRESET_CHANNELS, channel_preset
from repro.errors import ScenarioError


def scenario(seed: int = 3, duration: float = 0.3, **overrides) -> dict:
    drawn = random_scenario(random.Random(seed), index=0, duration=duration)
    drawn.update(overrides)
    return drawn


class TestScenarioGeneration:
    def test_same_seed_draws_identical_scenarios(self):
        first = [random_scenario(random.Random(42), i) for i in range(10)]
        second = [random_scenario(random.Random(42), i) for i in range(10)]
        assert first == second

    def test_scenarios_are_primitive_and_bundleable(self):
        import json

        drawn = scenario()
        assert json.loads(json.dumps(drawn)) == drawn

    def test_preset_names_match_materialized_specs(self):
        for preset, names in PRESET_CHANNELS.items():
            specs = channel_preset(preset)
            assert tuple(spec.name for spec in specs) == tuple(names)

    def test_unknown_preset_and_seed_bug_are_rejected(self):
        with pytest.raises(ScenarioError):
            channel_preset("carrier-pigeon")
        with pytest.raises(ScenarioError):
            random_scenario(random.Random(0), 0, seed_bug="nonexistent-bug")

    def test_some_scenarios_derive_faults_from_traces(self):
        from repro.check.chaos import TRACE_FAULT_SOURCES

        rng = random.Random(11)
        drawn = [random_scenario(rng, index=i) for i in range(60)]
        sources = {scn["fault_source"] for scn in drawn}
        assert "random" in sources
        assert sources & set(TRACE_FAULT_SOURCES)
        for scn in drawn:
            if scn["fault_source"] == "random":
                continue
            # Derived rows target a channel that exists in the preset and
            # carry at least one fault (both presets disrupt within 6 s).
            assert scn["fault_rows"]
            channels = set(PRESET_CHANNELS[scn["channels"]])
            assert {row[1] for row in scn["fault_rows"]} <= channels

    def test_trace_derived_scenario_runs_clean_and_replays_from_rows(self):
        from repro.check.chaos import TRACE_FAULT_SOURCES

        rng = random.Random(11)
        drawn = next(
            scn for scn in (random_scenario(rng, index=i) for i in range(60))
            if scn["fault_source"] in TRACE_FAULT_SOURCES
        )
        result = run_scenario(drawn)
        assert result["ok"] and result["faults"] == len(drawn["fault_rows"])
        # Bundles replay from the stored rows alone: mutating fault_source
        # must not change execution (no re-derivation happens at run time).
        relabeled = dict(drawn, fault_source="random")
        assert run_scenario(relabeled)["checks"] == result["checks"]


class TestCampaign:
    def test_single_scenario_runs_clean(self):
        result = run_scenario(scenario())
        assert result["ok"] and result["checks"] > 0

    def test_small_campaign_is_clean(self, tmp_path):
        summary = run_campaign(
            scenarios=6,
            seed=0,
            duration=0.3,
            bundle_dir=tmp_path,
            timeout=None,
        )
        assert summary["violations"] == 0
        assert summary["errors"] == []
        assert summary["clean"] == 6
        assert summary["checks"] > 0
        assert list(tmp_path.iterdir()) == []

    def test_seeded_bug_is_caught_bundled_and_replayable(self, tmp_path):
        summary = run_campaign(
            scenarios=6,
            seed=0,
            duration=0.5,
            bundle_dir=tmp_path,
            seed_bug="reseq-double-release",
            timeout=None,
        )
        assert summary["violations"] >= 1
        assert len(summary["bundles"]) == summary["violations"]
        payload = read_bundle(summary["bundles"][0])
        assert payload["violation"]["law"] == "reseq-no-dup-release"
        assert payload["scenario"]["seed_bug"] == "reseq-double-release"
        replay = replay_bundle(summary["bundles"][0])
        assert replay["reproduced"], (
            f"recorded {replay['recorded']}, replayed {replay['replayed']}"
        )


class TestBundles:
    def test_round_trip(self, tmp_path):
        scn = scenario()
        violation = {"law": "link-fifo", "entity": "embb:up", "time": 0.25}
        path = write_bundle(tmp_path, scn, violation, campaign={"seed": 0})
        assert path.name == "chaos-00000-link-fifo.json"
        payload = read_bundle(path)
        assert payload["scenario"] == scn
        assert payload["violation"] == violation
        assert payload["campaign"] == {"seed": 0}

    def test_read_rejects_junk_and_foreign_json(self, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("not json at all {{{")
        with pytest.raises(ScenarioError):
            read_bundle(junk)
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"format": "something-else/9"}')
        with pytest.raises(ScenarioError):
            read_bundle(foreign)
        with pytest.raises(ScenarioError):
            read_bundle(tmp_path / "missing.json")

    def test_same_violation_matching(self):
        recorded = {"law": "link-fifo", "entity": "embb:up", "time": 0.25}
        assert same_violation(recorded, dict(recorded))
        assert same_violation(recorded, {**recorded, "time": 0.25 + 5e-7})
        assert not same_violation(recorded, {**recorded, "time": 0.26})
        assert not same_violation(recorded, {**recorded, "law": "link-exactly-once"})
        assert not same_violation(recorded, {**recorded, "entity": "urllc:up"})


class TestCli:
    def test_chaos_subcommand_dispatches_and_passes(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "chaos", "--scenarios", "3", "--duration", "0.3",
            "--timeout", "0", "--bundle-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 scenarios" in out and "0 violations" in out

    def test_replay_of_missing_bundle_fails_cleanly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(ScenarioError):
            main(["chaos", "--replay", str(tmp_path / "nope.json")])
