"""Unit tests for the composite GeneralSteerer (the paper's conclusion)."""

import pytest

from repro.net.packet import Packet, PacketType
from repro.steering import make_steerer
from repro.steering.general import GeneralSteerer, PRIORITY_PIN_BYTES

from tests.test_steering import FakeView, ack_pkt, data_pkt, embb, urllc


class TestGeneralSteerer:
    def steerer(self, **kwargs):
        return GeneralSteerer(**kwargs)

    def test_registered(self):
        assert isinstance(make_steerer("general"), GeneralSteerer)

    def test_background_flow_barred_from_ll(self):
        packet = ack_pkt(flow_priority=2)
        assert self.steerer().choose(packet, [embb(), urllc()], 0.0) == (0,)

    def test_low_priority_message_kept_off_ll(self):
        packet = data_pkt(message_priority=1)
        views = [embb(backlog=1_000_000), urllc()]  # even with eMBB bloated
        assert self.steerer().choose(packet, views, 0.0) == (0,)

    def test_priority_datagram_pinned_to_ll(self):
        packet = Packet(
            flow_id=1, ptype=PacketType.DATAGRAM, payload_bytes=1460,
            message_priority=0,
        )
        views = [embb(), urllc(backlog=30_000)]
        assert self.steerer().choose(packet, views, 0.0) == (1,)

    def test_small_priority_message_pinned_reliable_stream(self):
        packet = data_pkt(message_priority=0, message_last=True, message_start=0)
        packet.seq, packet.end_seq = 0, 2_000
        views = [embb(), urllc(backlog=30_000)]
        assert self.steerer().choose(packet, views, 0.0) == (1,)

    def test_large_priority_message_not_pinned(self):
        """A 'priority' megabyte must not be forced onto 2 Mbps."""
        packet = data_pkt(message_priority=0, message_last=True, message_start=0)
        packet.seq, packet.end_seq = PRIORITY_PIN_BYTES * 90, PRIORITY_PIN_BYTES * 100
        views = [embb(), urllc(backlog=30_000)]
        assert self.steerer().choose(packet, views, 0.0) == (0,)

    def test_untagged_acks_still_separated(self):
        assert self.steerer().choose(ack_pkt(), [embb(), urllc()], 0.0) == (1,)

    def test_untagged_bulk_uses_dchannel_logic(self):
        views = [embb(), urllc(backlog=12_000)]
        assert self.steerer().choose(data_pkt(), views, 0.0) == (0,)

    def test_retransmissions_prefer_reliable(self):
        rtx = data_pkt(is_retransmission=True)
        assert self.steerer().choose(rtx, [embb(), urllc()], 0.0) == (1,)

    def test_single_channel_passthrough(self):
        assert self.steerer().choose(data_pkt(flow_priority=2), [urllc()], 0.0) == (1,)

    def test_flow_filter_precedes_message_priority(self):
        """A background flow's 'important' messages still stay off URLLC."""
        packet = Packet(
            flow_id=9, ptype=PacketType.DATAGRAM, payload_bytes=500,
            message_priority=0, flow_priority=2,
        )
        assert self.steerer().choose(packet, [embb(), urllc()], 0.0) == (0,)
