"""Unit tests for steering policies (driven by fake channel views)."""

import pytest

from repro.errors import SteeringError
from repro.net.packet import Packet, PacketType
from repro.steering import list_steerers, make_steerer
from repro.steering.base import (
    best_delivery,
    highest_bandwidth,
    lowest_latency,
    most_reliable,
    up_views,
)
from repro.steering.cost import CostAwareSteerer
from repro.steering.dchannel import DChannelSteerer
from repro.steering.flow_priority import FlowPriorityFilter
from repro.steering.mptcp import EcfSteerer, MinRttSteerer
from repro.steering.priority import MessagePrioritySteerer
from repro.steering.redundant import RedundantSteerer
from repro.steering.roundrobin import RateWeightedSteerer, RoundRobinSteerer
from repro.steering.single import SingleChannelSteerer
from repro.steering.transport_aware import TransportAwareSteerer
from repro.steering.util import TokenBucket
from repro.units import mbps, ms


class FakeView:
    """Stand-in for ChannelView with directly settable state."""

    def __init__(
        self,
        index,
        name="ch",
        rate_bps=mbps(10),
        base_delay=ms(10),
        backlog_bytes=0,
        up=True,
        cost_per_byte=0.0,
        reliable=False,
        loss_rate=0.0,
    ):
        self.index = index
        self.name = name
        self.rate_bps = rate_bps
        self.base_delay = base_delay
        self.backlog_bytes = backlog_bytes
        self.up = up
        self.cost_per_byte = cost_per_byte
        self.reliable = reliable
        self.loss_rate = loss_rate
        # Requirement-class steering reads these two contract fields;
        # a fake channel has no background load, so capacity == rate.
        self.base_rtt = 2 * base_delay
        self.capacity_bps = rate_bps

    def queueing_delay(self, extra_bytes=0):
        if self.rate_bps <= 0:
            return float("inf")
        return (self.backlog_bytes + extra_bytes) * 8 / self.rate_bps

    def estimated_delivery_delay(self, packet_bytes):
        return self.queueing_delay(packet_bytes) + self.base_delay


def embb(backlog=0, **kw):
    return FakeView(0, "embb", rate_bps=mbps(60), base_delay=ms(25), backlog_bytes=backlog, **kw)


def urllc(backlog=0, **kw):
    return FakeView(1, "urllc", rate_bps=mbps(2), base_delay=ms(2.5), backlog_bytes=backlog, reliable=True, **kw)


def data_pkt(payload=1460, **kw):
    return Packet(flow_id=1, ptype=PacketType.DATA, payload_bytes=payload, **kw)


def ack_pkt(**kw):
    return Packet(flow_id=1, ptype=PacketType.ACK, payload_bytes=0, **kw)


class TestHelpers:
    def test_lowest_latency_and_highest_bandwidth(self):
        views = [embb(), urllc()]
        assert lowest_latency(views).name == "urllc"
        assert highest_bandwidth(views).name == "embb"

    def test_up_views_excludes_down(self):
        views = [embb(up=False), urllc()]
        assert [v.name for v in up_views(views)] == ["urllc"]

    def test_up_views_raises_when_all_down(self):
        with pytest.raises(SteeringError):
            up_views([embb(up=False)])

    def test_most_reliable_prefers_flag(self):
        views = [embb(loss_rate=0.0), urllc()]
        assert most_reliable(views).name == "urllc"

    def test_best_delivery_accounts_for_backlog(self):
        # 60 kB backlog on eMBB = 8 ms queueing; URLLC empty wins for small pkts.
        views = [embb(backlog=600_000), urllc()]
        assert best_delivery(views, 100).name == "urllc"


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in list_steerers():
            steerer = make_steerer(name)
            assert steerer is not None

    def test_unknown_name_raises(self):
        with pytest.raises(SteeringError):
            make_steerer("teleport")

    def test_composite_flowprio(self):
        steerer = make_steerer("dchannel+flowprio")
        assert isinstance(steerer, FlowPriorityFilter)
        assert isinstance(steerer.inner, DChannelSteerer)


class TestSingleChannel:
    def test_by_index(self):
        assert SingleChannelSteerer(index=1).choose(data_pkt(), [embb(), urllc()], 0.0) == (1,)

    def test_by_name(self):
        steerer = SingleChannelSteerer(channel_name="embb")
        assert steerer.choose(data_pkt(), [embb(), urllc()], 0.0) == (0,)

    def test_bad_index_raises(self):
        with pytest.raises(SteeringError):
            SingleChannelSteerer(index=7).choose(data_pkt(), [embb()], 0.0)

    def test_bad_name_raises(self):
        with pytest.raises(SteeringError):
            SingleChannelSteerer(channel_name="lte").choose(data_pkt(), [embb()], 0.0)

    def test_both_args_rejected(self):
        with pytest.raises(SteeringError):
            SingleChannelSteerer(index=0, channel_name="embb")

    def test_defaults_to_first(self):
        assert SingleChannelSteerer().choose(data_pkt(), [embb(), urllc()], 0.0) == (0,)


class TestRoundRobin:
    def test_cycles(self):
        steerer = RoundRobinSteerer()
        views = [embb(), urllc()]
        picks = [steerer.choose(data_pkt(), views, 0.0)[0] for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_skips_down_channels(self):
        steerer = RoundRobinSteerer()
        views = [embb(up=False), urllc()]
        picks = {steerer.choose(data_pkt(), views, 0.0)[0] for _ in range(4)}
        assert picks == {1}

    def test_rate_weighted_shares(self):
        steerer = RateWeightedSteerer()
        views = [embb(), urllc()]  # 60 : 2
        picks = [steerer.choose(data_pkt(), views, 0.0)[0] for _ in range(62)]
        assert picks.count(0) == pytest.approx(60, abs=2)
        assert picks.count(1) >= 1


class TestMptcpSchedulers:
    def test_min_rtt_prefers_empty_fast_channel(self):
        steerer = MinRttSteerer()
        assert steerer.choose(data_pkt(), [embb(), urllc()], 0.0) == (1,)

    def test_min_rtt_flips_when_fast_channel_backlogged(self):
        steerer = MinRttSteerer()
        # 10 kB on URLLC at 2 Mbps = 40 ms queueing > eMBB's 25 ms base.
        views = [embb(), urllc(backlog=10_000)]
        assert steerer.choose(data_pkt(), views, 0.0) == (0,)

    def test_ecf_sticks_to_fast_channel_with_hysteresis(self):
        steerer = EcfSteerer(beta=1.5)
        # URLLC slightly backlogged: 7 kB = 28 ms queue + 2.5 base ≈ 36 ms
        # vs eMBB ≈ 25.2 ms. minRTT would flip; ECF (25.2*1.5 > 36) stays.
        views = [embb(), urllc(backlog=7_000)]
        assert steerer.choose(data_pkt(), views, 0.0) == (1,)
        assert MinRttSteerer().choose(data_pkt(), views, 0.0) == (0,)

    def test_ecf_eventually_leaves_fast_channel(self):
        steerer = EcfSteerer(beta=1.5)
        views = [embb(), urllc(backlog=40_000)]  # 160 ms queueing
        assert steerer.choose(data_pkt(), views, 0.0) == (0,)

    def test_ecf_validates_beta(self):
        with pytest.raises(ValueError):
            EcfSteerer(beta=0.5)


class TestDChannel:
    def test_control_packet_accelerated(self):
        steerer = DChannelSteerer()
        assert steerer.choose(ack_pkt(), [embb(), urllc()], 0.0) == (1,)

    def test_data_prefers_ll_when_it_wins(self):
        # Empty queues: URLLC 2.5 + 6 ms ser ≈ 8.5 ms < eMBB 25.2 ms.
        steerer = DChannelSteerer()
        assert steerer.choose(data_pkt(), [embb(), urllc()], 0.0) == (1,)

    def test_data_falls_back_when_ll_backlogged(self):
        steerer = DChannelSteerer()
        views = [embb(), urllc(backlog=12_000)]  # 48 ms queueing
        assert steerer.choose(data_pkt(), views, 0.0) == (0,)

    def test_control_falls_back_when_ll_hopeless(self):
        steerer = DChannelSteerer()
        views = [embb(), urllc(backlog=60_000)]  # 240 ms queueing
        assert steerer.choose(ack_pkt(), views, 0.0) == (0,)

    def test_savings_threshold_biases_to_hb(self):
        # URLLC wins by ~17 ms; a 20 ms threshold keeps data on eMBB.
        steerer = DChannelSteerer(savings_threshold=0.020)
        assert steerer.choose(data_pkt(), [embb(), urllc()], 0.0) == (0,)

    def test_single_channel_passthrough(self):
        steerer = DChannelSteerer()
        assert steerer.choose(data_pkt(), [embb()], 0.0) == (0,)

    def test_application_blind(self):
        """Tags must not change DChannel's choice (it is network-layer)."""
        steerer = DChannelSteerer()
        views = [embb(), urllc(backlog=12_000)]
        tagged = data_pkt(message_priority=0, flow_priority=0)
        plain = data_pkt()
        assert steerer.choose(tagged, views, 0.0) == steerer.choose(plain, views, 0.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            DChannelSteerer(savings_threshold=-1)


class TestFlowPinned:
    def make(self):
        from repro.steering.flow_pinned import FlowPinnedSteerer

        return FlowPinnedSteerer()

    def test_first_packet_pins_best_channel(self):
        steerer = self.make()
        # Empty queues: URLLC's estimate wins for a small packet.
        assert steerer.choose(data_pkt(payload=100), [embb(), urllc()], 0.0) == (1,)
        assert steerer.pinned_channel(1) == 1

    def test_flow_stays_pinned_despite_backlog(self):
        steerer = self.make()
        steerer.choose(data_pkt(payload=100), [embb(), urllc()], 0.0)
        # URLLC now badly backlogged; an unpinned policy would flee.
        views = [embb(), urllc(backlog=60_000)]
        assert steerer.choose(data_pkt(), views, 1.0) == (1,)

    def test_different_flows_pin_independently(self):
        steerer = self.make()
        views = [embb(), urllc()]
        first = steerer.choose(data_pkt(payload=100), views, 0.0)
        loaded = [embb(), urllc(backlog=60_000)]
        second = steerer.choose(
            Packet(flow_id=2, ptype=PacketType.DATA, payload_bytes=100), loaded, 0.0
        )
        assert first == (1,)
        assert second == (0,)

    def test_repins_when_pinned_channel_down(self):
        steerer = self.make()
        steerer.choose(data_pkt(payload=100), [embb(), urllc()], 0.0)
        views = [embb(), urllc(up=False)]
        assert steerer.choose(data_pkt(), views, 1.0) == (0,)


class TestMessagePriority:
    def test_priority_zero_to_ll_regardless_of_backlog(self):
        steerer = MessagePrioritySteerer()
        views = [embb(), urllc(backlog=30_000)]
        assert steerer.choose(data_pkt(message_priority=0), views, 0.0) == (1,)

    def test_low_priority_to_hb_even_when_ll_free(self):
        steerer = MessagePrioritySteerer()
        assert steerer.choose(data_pkt(message_priority=1), [embb(), urllc()], 0.0) == (0,)

    def test_cutoff_configurable(self):
        steerer = MessagePrioritySteerer(cutoff=1)
        assert steerer.choose(data_pkt(message_priority=1), [embb(), urllc()], 0.0) == (1,)

    def test_untagged_falls_back_to_inner(self):
        steerer = MessagePrioritySteerer(fallback=SingleChannelSteerer(index=0))
        assert steerer.choose(data_pkt(), [embb(), urllc()], 0.0) == (0,)

    def test_default_fallback_is_dchannel(self):
        steerer = MessagePrioritySteerer()
        assert isinstance(steerer.fallback, DChannelSteerer)


class TestFlowPriorityFilter:
    def test_background_flow_barred_from_ll(self):
        steerer = FlowPriorityFilter(DChannelSteerer())
        packet = ack_pkt(flow_priority=2)  # even its ACKs stay off URLLC
        assert steerer.choose(packet, [embb(), urllc()], 0.0) == (0,)

    def test_foreground_flow_passes_through(self):
        steerer = FlowPriorityFilter(DChannelSteerer())
        assert steerer.choose(ack_pkt(flow_priority=0), [embb(), urllc()], 0.0) == (1,)

    def test_untagged_passes_through(self):
        steerer = FlowPriorityFilter(DChannelSteerer())
        assert steerer.choose(ack_pkt(), [embb(), urllc()], 0.0) == (1,)

    def test_single_channel_passthrough(self):
        steerer = FlowPriorityFilter(DChannelSteerer())
        assert steerer.choose(data_pkt(flow_priority=2), [urllc()], 0.0) == (1,)


class TestTransportAware:
    def test_pure_ack_always_ll(self):
        steerer = TransportAwareSteerer()
        views = [embb(), urllc(backlog=30_000)]  # even with backlog
        assert steerer.choose(ack_pkt(), views, 0.0) == (1,)

    def test_fat_ack_not_separated(self):
        """Data tacked onto the ACK loses the acceleration (§3.2 point)."""
        steerer = TransportAwareSteerer()
        fat_ack = Packet(flow_id=1, ptype=PacketType.ACK, payload_bytes=1200)
        views = [embb(), urllc(backlog=30_000)]
        assert steerer.choose(fat_ack, views, 0.0) == (0,)

    def test_syn_prefers_reliable_channel(self):
        steerer = TransportAwareSteerer()
        syn = Packet(flow_id=1, ptype=PacketType.SYN)
        assert steerer.choose(syn, [embb(), urllc()], 0.0) == (1,)

    def test_retransmission_prefers_reliable(self):
        steerer = TransportAwareSteerer()
        rtx = data_pkt(is_retransmission=True)
        assert steerer.choose(rtx, [embb(), urllc()], 0.0) == (1,)

    def test_message_tail_accelerated(self):
        steerer = TransportAwareSteerer()
        tail = data_pkt(message_last=True, message_start=0)
        tail.seq, tail.end_seq = 100_000, 101_460
        views = [embb(backlog=100_000), urllc()]
        assert steerer.choose(tail, views, 0.0) == (1,)

    def test_tail_not_accelerated_when_ll_loses(self):
        steerer = TransportAwareSteerer()
        tail = data_pkt(message_last=True)
        views = [embb(), urllc(backlog=60_000)]
        assert steerer.choose(tail, views, 0.0) == (0,)

    def test_bulk_data_uses_inner_policy(self):
        steerer = TransportAwareSteerer(inner=SingleChannelSteerer(index=0))
        bulk = data_pkt()
        bulk.message_last = False
        views = [embb(), urllc(backlog=20_000)]
        assert steerer.choose(bulk, views, 0.0) == (0,)


class TestRedundant:
    def test_replicates_across_two_fastest(self):
        steerer = RedundantSteerer(mode="all")
        views = [
            FakeView(0, "a", base_delay=ms(6)),
            FakeView(1, "b", base_delay=ms(6)),
            FakeView(2, "c", base_delay=ms(50)),
        ]
        assert set(steerer.choose(data_pkt(), views, 0.0)) == {0, 1}

    def test_control_mode_replicates_only_control(self):
        steerer = RedundantSteerer(mode="control")
        views = [FakeView(0, "a"), FakeView(1, "b")]
        assert len(steerer.choose(ack_pkt(), views, 0.0)) == 2
        assert len(steerer.choose(data_pkt(), views, 0.0)) == 1

    def test_priority_mode_replicates_priority_zero(self):
        steerer = RedundantSteerer(mode="priority")
        views = [FakeView(0, "a"), FakeView(1, "b")]
        assert len(steerer.choose(data_pkt(message_priority=0), views, 0.0)) == 2
        assert len(steerer.choose(data_pkt(message_priority=1), views, 0.0)) == 1
        assert len(steerer.choose(data_pkt(), views, 0.0)) == 1

    def test_single_channel_no_copies(self):
        steerer = RedundantSteerer(mode="all")
        assert steerer.choose(data_pkt(), [FakeView(0)], 0.0) == (0,)

    def test_validation(self):
        with pytest.raises(SteeringError):
            RedundantSteerer(mode="sometimes")
        with pytest.raises(SteeringError):
            RedundantSteerer(max_copies=1)


class TestCostAware:
    def views(self):
        fiber = FakeView(0, "fiber", rate_bps=mbps(200), base_delay=ms(20))
        cisp = FakeView(
            1, "cisp", rate_bps=mbps(10), base_delay=ms(4), cost_per_byte=1e-6
        )
        return [fiber, cisp]

    def test_uses_priced_channel_when_worth_it(self):
        steerer = CostAwareSteerer(
            budget_per_s=1.0, burst=1.0, max_price_per_second_saved=1.0
        )
        # Saves ~16 ms for 1500 B costing 0.0015 ≤ 1.0 * 0.016.
        assert steerer.choose(data_pkt(), self.views(), now=0.0) == (1,)
        assert steerer.spent > 0

    def test_respects_willingness_to_pay(self):
        stingy = CostAwareSteerer(
            budget_per_s=1.0, burst=1.0, max_price_per_second_saved=0.01
        )
        assert stingy.choose(data_pkt(), self.views(), now=0.0) == (0,)

    def test_budget_exhaustion_falls_back_to_free(self):
        steerer = CostAwareSteerer(
            budget_per_s=0.0, burst=0.002, max_price_per_second_saved=10.0
        )
        first = steerer.choose(data_pkt(), self.views(), now=0.0)
        second = steerer.choose(data_pkt(), self.views(), now=0.0)
        assert first == (1,)
        assert second == (0,)  # bucket drained

    def test_budget_refills_over_time(self):
        steerer = CostAwareSteerer(
            budget_per_s=0.01, burst=0.002, max_price_per_second_saved=10.0
        )
        assert steerer.choose(data_pkt(), self.views(), now=0.0) == (1,)
        assert steerer.choose(data_pkt(), self.views(), now=0.0) == (0,)
        assert steerer.choose(data_pkt(), self.views(), now=1.0) == (1,)

    def test_no_priced_channels_is_minrtt(self):
        steerer = CostAwareSteerer()
        free = [FakeView(0, "a", base_delay=ms(30)), FakeView(1, "b", base_delay=ms(5))]
        assert steerer.choose(data_pkt(), free, 0.0) == (1,)


class TestTokenBucket:
    def test_spend_within_burst(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=5.0)
        assert bucket.try_spend(5.0, now=0.0)
        assert not bucket.try_spend(0.1, now=0.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=5.0)
        bucket.try_spend(5.0, now=0.0)
        assert bucket.available(now=100.0) == 5.0

    def test_partial_refill(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=10.0)
        bucket.try_spend(10.0, now=0.0)
        assert bucket.available(now=1.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=-1, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1, burst=0)
        with pytest.raises(ValueError):
            TokenBucket(1, 1).try_spend(-1, 0.0)
