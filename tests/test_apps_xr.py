"""Tests for the cloud-gaming / XR frame loop application."""

import pytest

from repro.apps.xr import (
    CLOUD_GAMING_DEADLINE,
    XR_DEADLINE,
    run_xr_session,
)
from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, traced_embb_spec, urllc_spec
from repro.traces.catalog import get_trace
from repro.units import mbps, ms, to_ms


def wide_net(steering="single"):
    # 100 Mbps, 30 ms RTT: comfortably fits the 30 Mbps stream.
    return HvcNetwork(
        [fixed_embb_spec(rate_bps=mbps(100), rtt=ms(30))], steering=steering
    )


class TestXrSession:
    def test_frames_complete_on_clean_network(self):
        result = run_xr_session(wide_net(), duration=5.0)
        assert result.inputs_sent >= 299
        assert len(result.frames) > 0.9 * result.inputs_sent

    def test_latency_above_propagation_floor(self):
        result = run_xr_session(wide_net(), duration=5.0)
        # One RTT (30 ms) plus frame serialization (~5 ms at 100 Mbps).
        assert result.latency_cdf().min >= ms(34)

    def test_on_time_fraction_high_when_capacity_ample(self):
        result = run_xr_session(wide_net(), duration=5.0)
        assert result.on_time_fraction > 0.9

    def test_deadline_scoring(self):
        result = run_xr_session(wide_net(), duration=5.0, deadline=ms(1))
        assert result.on_time_fraction == 0.0  # nothing beats 1 ms

    def test_narrow_channel_misses_deadlines(self):
        # 20 Mbps < 30 Mbps offered: queue growth blows the budget.
        net = HvcNetwork(
            [fixed_embb_spec(rate_bps=mbps(20), rtt=ms(30))], steering="single"
        )
        result = run_xr_session(net, duration=5.0)
        assert result.on_time_fraction < 0.5

    def test_deadlines_exported(self):
        assert XR_DEADLINE == ms(20)
        assert CLOUD_GAMING_DEADLINE == ms(100)

    def test_steering_improves_on_degrading_embb(self):
        """On a driving trace + URLLC, steering beats eMBB-only on-time %."""

        def build(steering):
            trace = get_trace("5g-lowband-driving", seed=5)
            embb = traced_embb_spec(trace)
            embb.name = "embb"
            return HvcNetwork([embb, urllc_spec()], steering=steering, seed=1)

        from repro.steering.single import SingleChannelSteerer

        baseline = run_xr_session(
            build(SingleChannelSteerer(channel_name="embb")), duration=10.0
        )
        steered = run_xr_session(build("transport-aware"), duration=10.0)
        assert steered.on_time_fraction >= baseline.on_time_fraction
        assert (
            steered.latency_cdf().percentile(95)
            <= baseline.latency_cdf().percentile(95)
        )
