"""Unit tests for unit helpers."""

import pytest

from repro import units


def test_time_conversions():
    assert units.ms(250) == 0.25
    assert units.us(500) == 0.0005
    assert units.seconds(3) == 3.0
    assert units.to_ms(0.075) == 75.0


def test_rate_conversions():
    assert units.kbps(400) == 400_000
    assert units.mbps(60) == 60_000_000
    assert units.gbps(2) == 2_000_000_000
    assert units.to_mbps(26_500_000) == 26.5


def test_size_conversions():
    assert units.kib(64) == 65_536
    assert units.kb(5) == 5_000
    assert units.mib(1) == 1_048_576
    assert units.bytes_to_bits(10) == 80
    assert units.bits_to_bytes(80) == 10


def test_transmission_time():
    # 1500 bytes at 12 Mbps = 1 ms.
    assert units.transmission_time(1500, units.mbps(12)) == pytest.approx(0.001)


def test_transmission_time_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        units.transmission_time(1500, 0)
    with pytest.raises(ValueError):
        units.transmission_time(1500, -1)


def test_mss_is_mtu_minus_headers():
    assert units.DEFAULT_MSS == units.DEFAULT_MTU - units.DEFAULT_HEADER_BYTES
