"""Unit tests for random streams and timers."""

from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.sim.timers import PeriodicTimer

import pytest


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_deterministic_across_instances(self):
        first = RandomStreams(seed=42).stream("loss").random()
        second = RandomStreams(seed=42).stream("loss").random()
        assert first == second

    def test_different_names_differ(self):
        streams = RandomStreams(seed=42)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x").random()
        b = RandomStreams(seed=2).stream("x").random()
        assert a != b

    def test_fork_is_independent_of_parent(self):
        parent = RandomStreams(seed=7)
        child = parent.fork("child")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_fork_is_deterministic(self):
        a = RandomStreams(seed=7).fork("c").stream("x").random()
        b = RandomStreams(seed=7).fork("c").stream("x").random()
        assert a == b


class TestPeriodicTimer:
    def test_fires_every_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 0.5, lambda: ticks.append(sim.now))
        sim.run(until=2.0)
        assert ticks == [0.5, 1.0, 1.5, 2.0]

    def test_start_delay_overrides_first_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now), start_delay=0.0)
        sim.run(until=2.0)
        assert ticks == [0.0, 1.0, 2.0]

    def test_stop_prevents_future_firings(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 0.5, lambda: ticks.append(sim.now))
        sim.schedule(1.1, timer.stop)
        sim.run(until=3.0)
        assert ticks == [0.5, 1.0]
        assert not timer.active

    def test_callback_may_stop_timer(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 0.5, lambda: (ticks.append(sim.now), timer.stop()))
        sim.run(until=5.0)
        assert ticks == [0.5]

    def test_callback_may_adjust_interval(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            timer.interval = 1.0

        timer = PeriodicTimer(sim, 0.25, tick)
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_rejects_nonpositive_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)
