"""Determinism tests: parallel/cached execution must match serial exactly.

The acceptance bar from the runner design: an experiment's
``ExperimentResult.values`` and ``events_processed`` are **identical** —
not approximately equal — whether units run inline, through
``ParallelRunner(jobs=1)``, fanned out over worker processes, or replayed
from a warm cache.
"""

from __future__ import annotations

import pytest

from repro.errors import RunnerError
from repro.experiments.fig1 import run_fig1a
from repro.experiments.sensitivity import run_urllc_bandwidth_sweep
from repro.runner import ParallelRunner, ResultCache, RunUnit

PROBE_FN = "repro.runner.units:probe_unit"


def probe_units(count: int = 5):
    return [
        RunUnit.make("probe", PROBE_FN, seed=index, value=float(index))
        for index in range(count)
    ]


class TestParallelRunner:
    def test_rejects_zero_jobs(self):
        with pytest.raises(RunnerError):
            ParallelRunner(jobs=0)

    def test_results_follow_input_order(self):
        runner = ParallelRunner(jobs=4)
        results = runner.run(probe_units())
        assert [r["value"] for r in results] == [0.0, 3.0, 6.0, 9.0, 12.0]
        assert runner.executed == 5

    def test_jobs_one_matches_jobs_four(self):
        serial = ParallelRunner(jobs=1).run(probe_units())
        fanned = ParallelRunner(jobs=4).run(probe_units())
        assert serial == fanned

    def test_failing_unit_raises_runner_error(self):
        bad = RunUnit.make("probe", "repro.runner.units:no_such_fn")
        with pytest.raises(RunnerError):
            ParallelRunner().run([bad])

    def test_cache_hits_skip_execution(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = ParallelRunner(jobs=1, cache=cache)
        warm = ParallelRunner(jobs=1, cache=cache)
        units = probe_units()
        cold = first.run(units)
        hot = warm.run(units)
        assert cold == hot
        assert first.executed == 5 and first.cache_hits == 0
        assert warm.executed == 0 and warm.cache_hits == 5

    def test_partial_cache_mixes_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        units = probe_units()
        ParallelRunner(cache=cache).run(units[:2])
        runner = ParallelRunner(jobs=2, cache=cache)
        results = runner.run(units)
        assert [r["value"] for r in results] == [0.0, 3.0, 6.0, 9.0, 12.0]
        assert runner.cache_hits == 2 and runner.executed == 3


def _snapshot(result):
    return (result.values, result.events_processed)


class TestExperimentDeterminism:
    """Same seed ⇒ identical values and event counts on every path."""

    CCAS = ("vegas", "vivace")
    DURATION = 2.0

    def test_fig1a_identical_across_execution_modes(self, tmp_path):
        reference = _snapshot(
            run_fig1a(duration=self.DURATION, ccas=self.CCAS, seed=7)
        )
        assert reference[1] > 0
        inline = _snapshot(
            run_fig1a(
                duration=self.DURATION, ccas=self.CCAS, seed=7,
                runner=ParallelRunner(jobs=1),
            )
        )
        fanned = _snapshot(
            run_fig1a(
                duration=self.DURATION, ccas=self.CCAS, seed=7,
                runner=ParallelRunner(jobs=4),
            )
        )
        cache = ResultCache(tmp_path)
        cold_runner = ParallelRunner(jobs=1, cache=cache)
        cold = _snapshot(
            run_fig1a(
                duration=self.DURATION, ccas=self.CCAS, seed=7,
                runner=cold_runner,
            )
        )
        warm_runner = ParallelRunner(jobs=1, cache=cache)
        warm = _snapshot(
            run_fig1a(
                duration=self.DURATION, ccas=self.CCAS, seed=7,
                runner=warm_runner,
            )
        )
        assert inline == reference
        assert fanned == reference
        assert cold == reference
        assert warm == reference
        assert warm_runner.cache_hits == len(self.CCAS)
        assert warm_runner.executed == 0

    def test_bandwidth_sweep_identical_across_execution_modes(self, tmp_path):
        kwargs = {"rates_mbps": (1.0, 2.0), "page_count": 1, "seed": 5}
        reference = _snapshot(run_urllc_bandwidth_sweep(**kwargs))
        assert reference[1] > 0
        fanned = _snapshot(
            run_urllc_bandwidth_sweep(**kwargs, runner=ParallelRunner(jobs=4))
        )
        cache = ResultCache(tmp_path)
        cold = _snapshot(
            run_urllc_bandwidth_sweep(
                **kwargs, runner=ParallelRunner(jobs=1, cache=cache)
            )
        )
        warm_runner = ParallelRunner(jobs=4, cache=cache)
        warm = _snapshot(
            run_urllc_bandwidth_sweep(**kwargs, runner=warm_runner)
        )
        assert fanned == reference
        assert cold == reference
        assert warm == reference
        assert warm_runner.cache_hits == 2 and warm_runner.executed == 0

    def test_seed_change_busts_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_fig1a(
            duration=self.DURATION, ccas=("vegas",), seed=1,
            runner=ParallelRunner(cache=cache),
        )
        other_seed = ParallelRunner(cache=cache)
        run_fig1a(
            duration=self.DURATION, ccas=("vegas",), seed=2,
            runner=other_seed,
        )
        assert other_seed.cache_hits == 0 and other_seed.executed == 1
