"""Packet byte fields are fixed at construction.

``size_bytes`` (wire size) and ``is_control`` (steering's control test)
are derived from ``payload_bytes``/``header_bytes`` once, at
construction, because they are read several times per hop. Pre-fix,
the byte fields stayed mutable, so an assignment after construction
silently desynced queue byte accounting and the control test. The
fields are now read-only properties — these tests fail on the old code
(where the assignments succeeded and left the cache stale).
"""

import pytest

from repro.net.packet import Packet, PacketType
from repro.units import DEFAULT_HEADER_BYTES


class TestPacketConstructionContract:
    def test_payload_bytes_is_read_only(self):
        packet = Packet(flow_id=0, ptype=PacketType.DATA, payload_bytes=1000)
        with pytest.raises(AttributeError):
            packet.payload_bytes = 2000
        assert packet.payload_bytes == 1000
        assert packet.size_bytes == 1000 + DEFAULT_HEADER_BYTES

    def test_header_bytes_is_read_only(self):
        packet = Packet(flow_id=0, ptype=PacketType.DATA, payload_bytes=1000)
        with pytest.raises(AttributeError):
            packet.header_bytes = 0
        assert packet.header_bytes == DEFAULT_HEADER_BYTES

    def test_mutation_cannot_desync_control_test(self):
        """An ACK cannot be turned into a fake data packet after the fact."""
        ack = Packet(flow_id=0, ptype=PacketType.ACK)
        assert ack.is_control is True
        with pytest.raises(AttributeError):
            ack.payload_bytes = 1448
        assert ack.is_control is True
        assert ack.size_bytes == DEFAULT_HEADER_BYTES

    def test_derived_fields_consistent_for_all_types(self):
        for ptype in PacketType:
            empty = Packet(flow_id=0, ptype=ptype)
            assert empty.size_bytes == empty.payload_bytes + empty.header_bytes
            assert empty.is_control == (ptype.is_control and empty.payload_bytes == 0)
            loaded = Packet(flow_id=0, ptype=ptype, payload_bytes=512)
            assert loaded.size_bytes == 512 + DEFAULT_HEADER_BYTES
            assert loaded.is_control is False

    def test_no_instance_dict_backdoor(self):
        """Slots: mutation cannot sneak in via a shadowing __dict__ entry."""
        packet = Packet(flow_id=0, ptype=PacketType.DATA)
        with pytest.raises(AttributeError):
            packet.__dict__

    def test_copy_for_redundancy_preserves_bytes(self):
        original = Packet(
            flow_id=3, ptype=PacketType.DATA, payload_bytes=700, header_bytes=40
        )
        clone = original.copy_for_redundancy(2)
        assert clone.payload_bytes == 700
        assert clone.header_bytes == 40
        assert clone.size_bytes == original.size_bytes
        assert clone.is_control is False
        with pytest.raises(AttributeError):
            clone.payload_bytes = 1
