"""Integration tests for the reliable connection over simulated channels."""

import pytest

from repro.net.channel import ChannelSpec, DirectionSpec
from repro.net.loss import BernoulliLoss
from repro.errors import TransportError
from repro.transport.connection import Connection
from repro.units import kib, mbps, ms

from tests.conftest import make_pair


def make_conn_pair(sim, specs=None, cc="cubic", flow_id=1, on_message=None, **kwargs):
    if specs is None:
        specs = [ChannelSpec.symmetric("c", mbps(20), ms(10), queue_bytes=kib(512))]
    client, server, channels = make_pair(sim, specs)
    sender = Connection(sim, client, flow_id, cc=cc, **kwargs)
    receiver = Connection(sim, server, flow_id, cc=cc, on_message=on_message)
    return sender, receiver, channels


class TestReliableDelivery:
    def test_small_message_delivered(self, sim):
        receipts = []
        sender, receiver, _ = make_conn_pair(sim, on_message=receipts.append)
        sender.send_message(10_000, message_id=7)
        sim.run(until=5.0)
        assert len(receipts) == 1
        assert receipts[0].message_id == 7
        assert receipts[0].size == 10_000
        assert receiver.stats.bytes_received == 10_000

    def test_large_transfer_completes(self, sim):
        receipts = []
        sender, receiver, _ = make_conn_pair(sim, on_message=receipts.append)
        sender.send_message(500_000, message_id=1)
        sim.run(until=30.0)
        assert len(receipts) == 1
        assert sender.bytes_in_flight == 0
        assert sender.stats.bytes_acked == 500_000

    def test_sender_ack_callback_fires(self, sim):
        acked = []
        sender, _, _ = make_conn_pair(sim)
        sender.send_message(20_000, message_id=3, on_acked=lambda m, t: acked.append((m.message_id, t)))
        sim.run(until=5.0)
        assert len(acked) == 1
        assert acked[0][0] == 3

    def test_multiple_messages_complete_in_order(self, sim):
        receipts = []
        sender, _, _ = make_conn_pair(sim, on_message=receipts.append)
        for i in range(5):
            sender.send_message(5_000, message_id=i)
        sim.run(until=10.0)
        assert [r.message_id for r in receipts] == [0, 1, 2, 3, 4]
        assert all(r.size == 5_000 for r in receipts)

    def test_message_priorities_propagate(self, sim):
        receipts = []
        sender, _, _ = make_conn_pair(sim, on_message=receipts.append)
        sender.send_message(5_000, message_id=1, priority=2)
        sim.run(until=5.0)
        assert receipts[0].priority == 2

    def test_delivery_under_heavy_loss(self, sim):
        loss_spec = ChannelSpec(
            name="lossy",
            up=DirectionSpec(rate_bps=mbps(20), delay=ms(10), loss=BernoulliLoss(0.1)),
            down=DirectionSpec(rate_bps=mbps(20), delay=ms(10), loss=BernoulliLoss(0.1)),
        )
        receipts = []
        sender, _, _ = make_conn_pair(sim, specs=[loss_spec], on_message=receipts.append)
        sender.send_message(100_000, message_id=1)
        sim.run(until=60.0)
        assert len(receipts) == 1
        assert sender.stats.retransmissions > 0

    def test_throughput_bounded_by_link_rate(self, sim):
        sender, _, _ = make_conn_pair(sim)
        sender.send_message(2_000_000, message_id=1)
        sim.run(until=10.0)
        elapsed = sim.now
        achieved_bps = sender.stats.bytes_acked * 8 / elapsed
        assert achieved_bps <= mbps(20) * 1.05

    def test_cubic_fills_the_pipe(self, sim):
        sender, _, _ = make_conn_pair(sim, cc="cubic")
        sender.send_message(40_000_000, message_id=1)
        sim.run(until=5.0)
        at_5s = sender.stats.bytes_acked
        sim.run(until=15.0)
        steady_bps = (sender.stats.bytes_acked - at_5s) * 8 / 10.0
        assert steady_bps > mbps(20) * 0.90

    def test_bidirectional_data(self, sim):
        a_receipts, b_receipts = [], []
        specs = [ChannelSpec.symmetric("c", mbps(20), ms(10))]
        client, server, _ = make_pair(sim, specs)
        a = Connection(sim, client, 1, on_message=a_receipts.append)
        b = Connection(sim, server, 1, on_message=b_receipts.append)
        a.send_message(30_000, message_id=10)
        b.send_message(40_000, message_id=20)
        sim.run(until=10.0)
        assert [r.message_id for r in b_receipts] == [10]
        assert [r.message_id for r in a_receipts] == [20]

    def test_rtt_records_collected(self, sim):
        sender, _, _ = make_conn_pair(sim)
        sender.send_message(100_000, message_id=1)
        sim.run(until=10.0)
        records = sender.stats.rtt_records
        assert records
        # Propagation RTT is 20 ms; queueing can only add to it.
        assert all(r.rtt >= ms(20) * 0.99 for r in records)
        assert all(r.data_channel == 0 and r.ack_channel == 0 for r in records)

    def test_rejects_bad_message_size(self, sim):
        sender, _, _ = make_conn_pair(sim)
        with pytest.raises(TransportError):
            sender.send_message(0)

    def test_send_after_close_raises(self, sim):
        sender, _, _ = make_conn_pair(sim)
        sender.close()
        with pytest.raises(TransportError):
            sender.send_message(1000)

    def test_close_is_idempotent_and_cancels_timers(self, sim):
        sender, _, _ = make_conn_pair(sim)
        sender.send_message(10_000)
        sender.close()
        sender.close()
        sim.run(until=5.0)  # no RTO explosion after close


class TestHandshake:
    def test_handshake_delays_data_by_one_rtt(self, sim):
        receipts = []
        specs = [ChannelSpec.symmetric("c", mbps(20), ms(10))]
        client, server, _ = make_pair(sim, specs)
        a = Connection(sim, client, 1, handshake=True)
        b = Connection(sim, server, 1, on_message=receipts.append)
        a.send_message(1_000, message_id=1)
        assert not a.established
        sim.run(until=5.0)
        assert a.established
        assert len(receipts) == 1
        # SYN (10ms) + SYN-ACK (10ms) + data (10ms) plus serialization.
        assert receipts[0].completed_at > ms(30)

    def test_handshake_survives_syn_loss(self, sim):
        lossy = ChannelSpec(
            name="lossy",
            up=DirectionSpec(rate_bps=mbps(20), delay=ms(10), loss=BernoulliLoss(0.4)),
            down=DirectionSpec(rate_bps=mbps(20), delay=ms(10), loss=BernoulliLoss(0.4)),
        )
        receipts = []
        client, server, _ = make_pair(sim, [lossy])
        a = Connection(sim, client, 1, handshake=True)
        Connection(sim, server, 1, on_message=receipts.append)
        a.send_message(1_000, message_id=1)
        sim.run(until=60.0)
        assert len(receipts) == 1


class TestRetransmission:
    def test_rto_fires_when_all_acks_lost(self, sim):
        # Downlink fully lossy at first: ACKs never return, RTO must fire.
        spec = ChannelSpec(
            name="deaf",
            up=DirectionSpec(rate_bps=mbps(20), delay=ms(10)),
            down=DirectionSpec(rate_bps=mbps(20), delay=ms(10), loss=BernoulliLoss(0.5)),
        )
        sender, _, _ = make_conn_pair(sim, specs=[spec])
        sender.send_message(3_000, message_id=1)
        sim.run(until=60.0)
        assert sender.stats.timeouts > 0
        assert sender.stats.bytes_acked == 3_000

    def test_fast_retransmit_on_dup_acks(self, sim):
        spec = ChannelSpec(
            name="lossy-up",
            up=DirectionSpec(rate_bps=mbps(20), delay=ms(10), loss=BernoulliLoss(0.03)),
            down=DirectionSpec(rate_bps=mbps(20), delay=ms(10)),
        )
        sender, _, _ = make_conn_pair(sim, specs=[spec])
        sender.send_message(1_000_000, message_id=1)
        sim.run(until=60.0)
        assert sender.stats.fast_retransmits > 0
        assert sender.stats.bytes_acked == 1_000_000

    def test_karn_no_rtt_sample_from_retransmissions(self, sim):
        spec = ChannelSpec(
            name="lossy",
            up=DirectionSpec(rate_bps=mbps(20), delay=ms(10), loss=BernoulliLoss(0.2)),
            down=DirectionSpec(rate_bps=mbps(20), delay=ms(10)),
        )
        sender, _, _ = make_conn_pair(sim, specs=[spec])
        sender.send_message(200_000, message_id=1)
        sim.run(until=60.0)
        # All collected samples must be sane (>= propagation RTT); a sample
        # taken from a retransmitted segment could not be guaranteed so.
        assert all(r.rtt >= ms(20) * 0.99 for r in sender.stats.rtt_records)


class TestMultiChannel:
    def test_rtt_records_tag_channels(self, sim):
        """With a fixed steerer on channel 1, records must say channel 1."""
        from tests.test_net_channel_node import FixedSteerer

        specs = [
            ChannelSpec.symmetric("a", mbps(20), ms(25)),
            ChannelSpec.symmetric("b", mbps(2), ms(2.5)),
        ]
        client, server, _ = make_pair(sim, specs)
        client.set_steerer(FixedSteerer(1))
        server.set_steerer(FixedSteerer(1))
        sender = Connection(sim, client, 1)
        Connection(sim, server, 1)
        sender.send_message(20_000, message_id=1)
        sim.run(until=5.0)
        assert sender.stats.rtt_records
        assert all(r.data_channel == 1 for r in sender.stats.rtt_records)
        assert all(r.ack_channel == 1 for r in sender.stats.rtt_records)
