"""Tests for the HvcNetwork public API."""

import pytest

from repro.core.api import HvcNetwork
from repro.errors import ScenarioError
from repro.net.channel import ChannelSpec
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.steering.single import SingleChannelSteerer
from repro.units import kb, mbps, ms


def dual_channel_net(**kwargs):
    return HvcNetwork([fixed_embb_spec(), urllc_spec()], **kwargs)


class TestHvcNetwork:
    def test_requires_channels(self):
        with pytest.raises(ScenarioError):
            HvcNetwork([])

    def test_reliable_roundtrip(self):
        net = dual_channel_net(steering="dchannel")
        received = []
        pair = net.open_connection(cc="cubic", on_server_message=received.append)
        pair.client.send_message(kb(100), message_id=1)
        net.run(until=5.0)
        assert len(received) == 1
        assert received[0].size == kb(100)

    def test_datagram_roundtrip(self):
        net = dual_channel_net()
        received = []
        pair = net.open_datagram(on_server_message=received.append)
        pair.client.send_message(kb(5), message_id=3, priority=0)
        net.run(until=2.0)
        assert len(received) == 1
        assert received[0].message_id == 3

    def test_steering_by_name_and_instance(self):
        by_name = dual_channel_net(steering="single", steering_kwargs={"index": 1})
        by_instance = dual_channel_net(steering=SingleChannelSteerer(index=1))
        for net in (by_name, by_instance):
            pair = net.open_connection()
            pair.client.send_message(kb(1))
            net.run(until=2.0)
            assert net.channels[1].uplink.stats.delivered > 0
            assert net.channels[0].uplink.stats.delivered == 0

    def test_server_steering_can_differ(self):
        net = dual_channel_net(
            steering=SingleChannelSteerer(index=0),
            server_steering=SingleChannelSteerer(index=1),
        )
        pair = net.open_connection()
        pair.client.send_message(kb(10))
        net.run(until=2.0)
        # Data went over channel 0, ACKs returned over channel 1.
        assert net.channels[0].uplink.stats.delivered > 0
        assert net.channels[1].downlink.stats.delivered > 0

    def test_channel_named(self):
        net = dual_channel_net()
        assert net.channel_named("urllc").spec.reliable
        with pytest.raises(ScenarioError):
            net.channel_named("wifi")

    def test_total_cost(self):
        spec = ChannelSpec.symmetric("paid", mbps(10), ms(5), cost_per_byte=1e-6)
        net = HvcNetwork([spec], steering="single")
        pair = net.open_connection()
        pair.client.send_message(kb(100))
        net.run(until=5.0)
        assert net.total_cost() > 0

    def test_flow_ids_auto_allocated(self):
        net = dual_channel_net()
        a = net.open_connection()
        b = net.open_connection()
        assert a.client.flow_id != b.client.flow_id

    def test_seed_determinism(self):
        def run_once():
            net = dual_channel_net(steering="dchannel", seed=42)
            got = []
            pair = net.open_connection(on_server_message=got.append)
            pair.client.send_message(kb(200), message_id=1)
            net.run(until=5.0)
            return got[0].completed_at

        assert run_once() == run_once()

    def test_now_tracks_clock(self):
        net = dual_channel_net()
        net.run(until=3.5)
        assert net.now == 3.5
