"""Tests for declarative scenario building."""

import json

import pytest

from repro.core.scenario import ChannelConfig, ScenarioSpec
from repro.errors import ScenarioError
from repro.units import kb, mbps


class TestChannelConfig:
    def test_embb_fixed(self):
        specs = ChannelConfig(kind="embb", rate_mbps=40, rtt_ms=30).build(seed=0)
        assert len(specs) == 1
        assert specs[0].up.rate_bps == mbps(40)

    def test_embb_traced(self):
        specs = ChannelConfig(kind="embb", trace="5g-lowband-driving").build(seed=0)
        assert specs[0].up.trace is not None

    def test_wifi_mlo_expands_to_two(self):
        assert len(ChannelConfig(kind="wifi-mlo").build(seed=0)) == 2

    def test_custom_needs_parameters(self):
        with pytest.raises(ScenarioError):
            ChannelConfig(kind="custom").build(seed=0)
        specs = ChannelConfig(kind="custom", rate_mbps=5, rtt_ms=10, name="lab").build(0)
        assert specs[0].name == "lab"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError):
            ChannelConfig(kind="quantum").build(seed=0)

    def test_from_dict_validates_keys(self):
        with pytest.raises(ScenarioError):
            ChannelConfig.from_dict({"kind": "embb", "color": "blue"})
        with pytest.raises(ScenarioError):
            ChannelConfig.from_dict({"trace": "x"})


class TestScenarioSpec:
    def canonical(self):
        return ScenarioSpec(
            channels=[
                ChannelConfig(kind="embb", rate_mbps=60, rtt_ms=50),
                ChannelConfig(kind="urllc"),
            ],
            steering="dchannel",
            seed=3,
        )

    def test_build_and_run(self):
        net = self.canonical().build()
        done = []
        pair = net.open_connection(on_server_message=done.append)
        pair.client.send_message(kb(50), message_id=1)
        net.run(until=5.0)
        assert len(done) == 1

    def test_empty_scenario_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec().build()

    def test_json_round_trip(self):
        spec = self.canonical()
        data = json.loads(json.dumps(spec.to_dict()))
        rebuilt = ScenarioSpec.from_dict(data)
        assert rebuilt.steering == spec.steering
        assert rebuilt.seed == spec.seed
        assert [c.kind for c in rebuilt.channels] == ["embb", "urllc"]
        rebuilt.build()  # still buildable

    def test_from_dict_validates_keys(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict({"channels": [], "mode": "turbo"})

    def test_steering_kwargs_forwarded(self):
        spec = ScenarioSpec(
            channels=[
                ChannelConfig(kind="embb"),
                ChannelConfig(kind="urllc"),
            ],
            steering="single",
            steering_kwargs={"index": 1},
        )
        net = spec.build()
        pair = net.open_connection()
        pair.client.send_message(kb(5))
        net.run(until=2.0)
        assert net.channels[1].uplink.stats.delivered > 0
        assert net.channels[0].uplink.stats.delivered == 0

    def test_determinism_by_seed(self):
        def run(seed):
            spec = ScenarioSpec(
                channels=[
                    ChannelConfig(kind="embb", trace="5g-lowband-driving"),
                    ChannelConfig(kind="urllc"),
                ],
                steering="dchannel",
                seed=seed,
            )
            net = spec.build()
            done = []
            pair = net.open_connection(on_server_message=done.append)
            pair.client.send_message(kb(100), message_id=1)
            net.run(until=10.0)
            return done[0].completed_at

        assert run(5) == run(5)
        assert run(5) != run(6)
