"""Ablation harness tests: planted regressions, rankings, determinism.

The harness's contract is that disabling a load-bearing component shows
up as a positive goodput delta against the intact stack, and that the
resulting ranking is a pure function of (scenarios, components, duration,
seed). The planted-regression tests disable a component on the scenario
engineered for it and assert the degradation is large and the ranking
puts the component above the ``noop`` control.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.ablation_harness import (
    COMPONENTS,
    SCENARIOS,
    ablation_unit,
    harness_units,
    run_ablation_harness,
)
from repro.runner import ParallelRunner, ResultCache


class TestUnits:
    def test_unknown_scenario_and_component_rejected(self):
        with pytest.raises(ExperimentError):
            ablation_unit(scenario="coffee-spill")
        with pytest.raises(ExperimentError):
            ablation_unit(component="flux-capacitor")

    def test_unit_grid_covers_components_x_scenarios(self):
        units = harness_units(tuple(SCENARIOS), COMPONENTS, 1.0, 0)
        assert len(units) == len(SCENARIOS) * len(COMPONENTS)

    def test_every_scenario_runs_intact(self):
        for scenario in SCENARIOS:
            payload = ablation_unit(
                scenario=scenario, component="noop", duration=2.0, seed=0
            )
            assert payload["mbps"] > 0, scenario
            assert payload["events"] > 0


class TestPlantedRegressions:
    def test_disabling_resequencer_degrades_reordering_workload(self):
        baseline = ablation_unit(
            scenario="reorder-bulk", component="noop", duration=4.0, seed=0
        )
        ablated = ablation_unit(
            scenario="reorder-bulk", component="resequencer", duration=4.0, seed=0
        )
        # The reordering workload loses most of its goodput without the
        # resequencer shim (calibrated: ~90% at this scale).
        assert ablated["mbps"] < 0.5 * baseline["mbps"], (baseline, ablated)

    def test_disabling_hysteresis_degrades_sick_recovery_workload(self):
        baseline = ablation_unit(
            scenario="outage-flap", component="noop", duration=8.0, seed=0
        )
        ablated = ablation_unit(
            scenario="outage-flap", component="hysteresis", duration=8.0, seed=0
        )
        assert ablated["mbps"] < baseline["mbps"], (baseline, ablated)

    def test_disabling_pacing_degrades_shallow_burst_workload(self):
        baseline = ablation_unit(
            scenario="paced-bulk", component="noop", duration=8.0, seed=0
        )
        ablated = ablation_unit(
            scenario="paced-bulk", component="pacing", duration=8.0, seed=0
        )
        assert ablated["mbps"] < baseline["mbps"], (baseline, ablated)
        assert ablated["rtx"] > baseline["rtx"], (baseline, ablated)


class TestRanking:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("ablate-cache"))
        return run_ablation_harness(
            duration=8.0,
            scenarios=("reorder-bulk", "outage-flap"),
            components=("noop", "resequencer", "hysteresis"),
            seed=0,
            runner=ParallelRunner(cache=cache),
        )

    def test_resequencer_and_hysteresis_rank_above_noop(self, result):
        assert result.values["rank/resequencer"] < result.values["rank/noop"]
        assert result.values["rank/hysteresis"] < result.values["rank/noop"]

    def test_noop_anchors_zero_delta(self, result):
        assert result.values["importance/noop"] == 0.0
        for scenario in ("reorder-bulk", "outage-flap"):
            assert result.values[f"noop/{scenario}/delta"] == 0.0

    def test_ranking_note_emitted(self, result):
        assert any(note.startswith("ranking:") for note in result.notes)


class TestDeterminism:
    def test_same_seed_same_ranking_and_values(self, tmp_path):
        kwargs = dict(
            duration=2.0,
            scenarios=("reorder-bulk",),
            components=("noop", "resequencer"),
            seed=0,
        )
        first = run_ablation_harness(
            runner=ParallelRunner(cache=ResultCache(tmp_path / "a")), **kwargs
        )
        second = run_ablation_harness(
            runner=ParallelRunner(cache=ResultCache(tmp_path / "b")), **kwargs
        )
        assert first.values == second.values
        assert first.render() == second.render()

    def test_noop_is_injected_when_omitted(self, tmp_path):
        result = run_ablation_harness(
            duration=2.0,
            scenarios=("reorder-bulk",),
            components=("resequencer",),
            seed=0,
            runner=ParallelRunner(cache=ResultCache(tmp_path)),
        )
        assert "rank/noop" in result.values
        assert result.values["rank/resequencer"] < result.values["rank/noop"]
