"""Second wave of property-based tests: higher-level invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.apps.video.svc import SvcEncoderModel
from repro.apps.web.corpus import generate_page
from repro.net.packet import Packet, PacketType
from repro.net.resequencer import Resequencer
from repro.sim.kernel import Simulator
from repro.traces.mahimahi import read_mahimahi, write_mahimahi
from repro.traces.model import NetworkTrace


class TestResequencerProperties:
    @settings(max_examples=60)
    @given(
        st.integers(min_value=1, max_value=60),  # total packets
        st.integers(min_value=1, max_value=3),  # channel count
        st.integers(min_value=0, max_value=2**31),
    )
    def test_physical_interleavings_restore_total_order(self, count, channels, seed):
        """Any per-channel-FIFO arrival order is resequenced into 0..n-1."""
        sim = Simulator()
        delivered = []
        reseq = Resequencer(sim, lambda p: delivered.append(p.shim_seq), timeout=0.05)
        rng = random.Random(seed)
        lanes = {c: [] for c in range(channels)}
        for seq in range(count):
            lanes[rng.randrange(channels)].append(seq)
        live = [c for c in lanes if lanes[c]]
        while live:
            lane = rng.choice(live)
            seq = lanes[lane].pop(0)
            packet = Packet(flow_id=1, ptype=PacketType.DATA, payload_bytes=10)
            packet.shim_seq = seq
            packet.channel_index = lane
            packet.shim_channel_count = channels
            reseq.push(packet)
            if not lanes[lane]:
                live.remove(lane)
        sim.run(until=10.0)
        assert delivered == list(range(count))

    @settings(max_examples=40)
    @given(
        st.integers(min_value=2, max_value=50),
        st.data(),
    )
    def test_losses_never_block_forever(self, count, data):
        """With arbitrary single-channel losses, survivors all deliver."""
        sim = Simulator()
        delivered = []
        reseq = Resequencer(sim, lambda p: delivered.append(p.shim_seq), timeout=0.05)
        lost = set(
            data.draw(
                st.lists(st.integers(0, count - 1), unique=True, max_size=count - 1)
            )
        )
        for seq in range(count):
            if seq in lost:
                continue
            packet = Packet(flow_id=1, ptype=PacketType.DATA, payload_bytes=10)
            packet.shim_seq = seq
            packet.channel_index = 0
            packet.shim_channel_count = 1
            reseq.push(packet)
        sim.run(until=10.0)
        survivors = [s for s in range(count) if s not in lost]
        assert delivered == survivors


class TestSvcProperties:
    @given(st.integers(min_value=0, max_value=10_000), st.integers(0, 1000))
    def test_sizes_positive_and_layered(self, frame, seed):
        encoder = SvcEncoderModel(seed=seed)
        sizes = encoder.frame_layer_sizes(frame)
        assert len(sizes) == 3
        assert all(s >= 64 for s in sizes)
        # Higher layers target higher bitrates, so (statistically) they are
        # larger; allow jitter by comparing against a generous factor.
        assert sizes[2] > sizes[0]

    @given(st.integers(min_value=0, max_value=500))
    def test_keyframe_periodicity(self, frame):
        encoder = SvcEncoderModel()
        assert encoder.is_keyframe(frame) == (frame % encoder.keyframe_interval == 0)


class TestCorpusProperties:
    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=2**31), st.booleans())
    def test_generated_pages_always_valid(self, seed, landing):
        page = generate_page("prop", seed=seed, landing=landing)
        page.validate()  # raises on any structural violation
        assert page.depth() >= 2
        assert page.total_bytes > 0


class TestMahimahiProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1e5, max_value=5e7),
            min_size=1,
            max_size=6,
        )
    )
    def test_round_trip_preserves_mean_rate(self, rates):
        import tempfile, os

        times = [float(i) for i in range(len(rates))]
        trace = NetworkTrace(times, rates, [0.01] * len(rates))
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "t.trace")
            count = write_mahimahi(trace, path, duration=trace.duration)
            loaded = read_mahimahi(path, bucket=trace.duration)
        # The writer's credit accumulator makes the opportunity count exact
        # up to one packet of rounding.
        expected = trace.mean_rate() * trace.duration / (1500 * 8)
        # Slack: one packet of leftover credit plus one millisecond step of
        # the fastest span (float time-stepping at segment boundaries).
        slack = 2.0 + max(rates) * 0.001 / (1500 * 8)
        assert abs(count - expected) <= slack
        # Reading back re-buckets on millisecond-quantized stamps; the mean
        # must survive within quantization slack.
        quantum = 2 * 1500 * 8 / trace.duration
        tolerance = max(quantum, 0.05 * trace.mean_rate())
        assert abs(loaded.mean_rate() - trace.mean_rate()) <= tolerance
