"""Unit tests for the congestion-control algorithms (synthetic ACK streams)."""

import pytest

from repro.errors import TransportError
from repro.transport.cc import list_ccs, make_cc
from repro.transport.cc.base import AckSample, INITIAL_WINDOW_SEGMENTS
from repro.transport.cc.bbr import Bbr
from repro.transport.cc.cubic import Cubic
from repro.transport.cc.hvc_aware import HvcAware
from repro.transport.cc.reno import Reno
from repro.transport.cc.vegas import Vegas
from repro.transport.cc.vivace import Vivace

MSS = 1460


def ack(now, rtt=0.05, newly=MSS, in_flight=10 * MSS, rate=None, delivered=0, **kw):
    return AckSample(
        now=now,
        rtt=rtt,
        newly_acked=newly,
        in_flight=in_flight,
        delivery_rate=rate,
        total_delivered=delivered,
        **kw,
    )


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in list_ccs():
            cc = make_cc(name, mss=MSS)
            assert cc.cwnd_bytes > 0

    def test_unknown_name_raises(self):
        with pytest.raises(TransportError):
            make_cc("hystart++")

    def test_hvc_prefix_wraps(self):
        cc = make_cc("hvc-bbr", mss=MSS)
        assert isinstance(cc, HvcAware)
        assert isinstance(cc.base, Bbr)
        assert cc.name == "hvc-bbr"

    def test_rejects_bad_mss(self):
        with pytest.raises(ValueError):
            make_cc("reno", mss=0)


class TestReno:
    def test_initial_window(self):
        assert Reno(MSS).cwnd_bytes == INITIAL_WINDOW_SEGMENTS * MSS

    def test_slow_start_doubles_per_window(self):
        cc = Reno(MSS)
        start = cc.cwnd_bytes
        acked = 0
        while acked < start:
            cc.on_ack(ack(now=0.05, newly=MSS))
            acked += MSS
        assert cc.cwnd_bytes >= 2 * start * 0.95

    def test_loss_halves_window(self):
        cc = Reno(MSS)
        for i in range(100):
            cc.on_ack(ack(now=i * 0.01))
        before = cc.cwnd_bytes
        cc.on_loss(now=2.0, in_flight=int(before))
        assert cc.cwnd_bytes == pytest.approx(before / 2)

    def test_single_reduction_per_recovery(self):
        cc = Reno(MSS)
        for i in range(100):
            cc.on_ack(ack(now=i * 0.01))
        cc.on_loss(now=2.0, in_flight=10 * MSS)
        after_first = cc.cwnd_bytes
        cc.on_loss(now=2.01, in_flight=10 * MSS)
        assert cc.cwnd_bytes == after_first

    def test_timeout_collapses_to_one_mss(self):
        cc = Reno(MSS)
        for i in range(50):
            cc.on_ack(ack(now=i * 0.01))
        cc.on_timeout(now=1.0)
        assert cc.cwnd_bytes == 2 * MSS  # floor is 2 MSS

    def test_congestion_avoidance_linear(self):
        cc = Reno(MSS)
        cc.on_loss(now=0.0, in_flight=10 * MSS)  # exit slow start
        w0 = cc.cwnd_bytes
        acked = 0
        while acked < w0:  # one window's worth of ACKs ≈ +1 MSS
            cc.on_ack(ack(now=1.0, newly=MSS))
            acked += MSS
        assert cc.cwnd_bytes - w0 == pytest.approx(MSS, rel=0.3)


class TestCubic:
    def test_window_grows_with_time_after_loss(self):
        cc = Cubic(MSS)
        for i in range(200):
            cc.on_ack(ack(now=i * 0.01))
        cc.on_loss(now=2.0, in_flight=20 * MSS)
        w_after_loss = cc.cwnd_bytes
        for i in range(300):
            cc.on_ack(ack(now=2.0 + i * 0.01))
        assert cc.cwnd_bytes > w_after_loss

    def test_beta_reduction(self):
        cc = Cubic(MSS)
        for i in range(100):
            cc.on_ack(ack(now=i * 0.01))
        before = cc.cwnd_bytes
        cc.on_loss(now=5.0, in_flight=int(before))
        assert cc.cwnd_bytes == pytest.approx(before * 0.7)

    def test_cubic_recovers_toward_w_max(self):
        """After a loss the window plateaus near the previous maximum."""
        cc = Cubic(MSS)
        for i in range(400):
            cc.on_ack(ack(now=i * 0.01))
        w_max = cc.cwnd_bytes
        cc.on_loss(now=4.0, in_flight=int(w_max))
        for i in range(2000):
            cc.on_ack(ack(now=4.0 + i * 0.01))
        assert cc.cwnd_bytes >= 0.9 * w_max

    def test_timeout_resets(self):
        cc = Cubic(MSS)
        for i in range(100):
            cc.on_ack(ack(now=i * 0.01))
        cc.on_timeout(now=1.0)
        assert cc.cwnd_bytes == 2 * MSS

    def test_mostly_delay_blind(self):
        """RTT inflation alone must not shrink CUBIC's window."""
        cc = Cubic(MSS)
        for i in range(100):
            cc.on_ack(ack(now=i * 0.01, rtt=0.01))
        before = cc.cwnd_bytes
        for i in range(100):
            cc.on_ack(ack(now=1.0 + i * 0.01, rtt=0.5))
        assert cc.cwnd_bytes >= before


class TestBbr:
    def run_steady(self, cc, bw_bps, rtt, duration, start=0.0, step=0.01):
        now = start
        delivered = 0
        while now < start + duration:
            delivered += MSS
            cc.on_ack(
                ack(
                    now=now,
                    rtt=rtt,
                    rate=bw_bps,
                    in_flight=int(bw_bps / 8 * rtt),
                    delivered=delivered,
                )
            )
            now += step
        return now

    def test_startup_exits_to_probe_bw(self):
        # Startup-exit is evaluated once per round (~one BDP of deliveries),
        # so give the synthetic stream enough acks for several rounds.
        cc = Bbr(MSS)
        self.run_steady(cc, bw_bps=50e6, rtt=0.05, duration=15.0)
        assert cc.state in (Bbr.PROBE_BW, Bbr.DRAIN)

    def test_btlbw_tracks_delivery_rate(self):
        cc = Bbr(MSS)
        self.run_steady(cc, bw_bps=50e6, rtt=0.05, duration=2.0)
        assert cc.btlbw_bytes_per_s == pytest.approx(50e6 / 8, rel=0.01)

    def test_cwnd_is_two_bdp(self):
        cc = Bbr(MSS)
        self.run_steady(cc, bw_bps=50e6, rtt=0.05, duration=3.0)
        bdp = (50e6 / 8) * 0.05
        assert cc.cwnd_bytes == pytest.approx(2 * bdp, rel=0.05)

    def test_min_rtt_poisoning_shrinks_cwnd(self):
        """The Fig. 1 failure: a tiny min-RTT sample caps the BDP estimate."""
        cc = Bbr(MSS)
        self.run_steady(cc, bw_bps=50e6, rtt=0.05, duration=3.0)
        healthy = cc.cwnd_bytes
        cc.on_ack(ack(now=3.0, rtt=0.005, rate=50e6, delivered=10**7))
        assert cc.cwnd_bytes < healthy / 5

    def test_probe_rtt_entered_after_window_expiry(self):
        cc = Bbr(MSS)
        end = self.run_steady(cc, bw_bps=50e6, rtt=0.05, duration=2.0)
        # Now 11 s of samples that never beat the recorded minimum.
        self.run_steady(cc, bw_bps=50e6, rtt=0.08, duration=11.0, start=end)
        # At some point the 10 s window lapsed and PROBE_RTT fired; the
        # controller must have refreshed its min to the new floor.
        assert cc.min_rtt == pytest.approx(0.08, rel=0.01)

    def test_probe_rtt_shrinks_cwnd_then_restores(self):
        cc = Bbr(MSS)
        cc._enter_probe_rtt(now=1.0)
        assert cc.cwnd_bytes == 4 * MSS
        cc.on_ack(ack(now=1.25, rtt=0.05, rate=50e6, delivered=10**6))
        assert cc.state != Bbr.PROBE_RTT

    def test_pacing_rate_cycles_in_probe_bw(self):
        cc = Bbr(MSS)
        self.run_steady(cc, bw_bps=50e6, rtt=0.05, duration=15.0)
        assert cc.state == Bbr.PROBE_BW
        gains = set()
        now = 15.0
        delivered = 10**8
        for i in range(400):
            delivered += MSS
            cc.on_ack(ack(now=now, rtt=0.05, rate=50e6, delivered=delivered))
            gains.add(round(cc.pacing_gain, 2))
            now += 0.005
        assert 1.25 in gains and 0.75 in gains and 1.0 in gains

    def test_loss_is_ignored(self):
        cc = Bbr(MSS)
        self.run_steady(cc, bw_bps=50e6, rtt=0.05, duration=3.0)
        before = cc.cwnd_bytes
        cc.on_loss(now=3.0, in_flight=int(before))
        assert cc.cwnd_bytes == before

    def test_app_limited_samples_do_not_lower_estimate(self):
        cc = Bbr(MSS)
        self.run_steady(cc, bw_bps=50e6, rtt=0.05, duration=2.0)
        est = cc.btlbw_bytes_per_s
        for i in range(200):
            cc.on_ack(ack(now=2.0 + i * 0.01, rate=1e6, app_limited=True, delivered=10**7))
        assert cc.btlbw_bytes_per_s == est


class TestVegas:
    def test_low_delay_grows_window(self):
        cc = Vegas(MSS)
        cc._in_slow_start = False
        w0 = cc.cwnd_bytes
        for i in range(300):
            cc.on_ack(ack(now=i * 0.01, rtt=0.05))
        assert cc.cwnd_bytes > w0

    def test_queueing_delay_shrinks_window(self):
        cc = Vegas(MSS)
        cc._in_slow_start = False
        for i in range(100):
            cc.on_ack(ack(now=i * 0.01, rtt=0.05))
        grown = cc.cwnd_bytes
        # Base RTT poisoned low, then heavy queueing delay.
        cc.on_ack(ack(now=1.0, rtt=0.005))
        for i in range(500):
            cc.on_ack(ack(now=1.01 + i * 0.01, rtt=0.06))
        assert cc.cwnd_bytes < grown

    def test_base_rtt_is_min(self):
        cc = Vegas(MSS)
        for rtt in (0.05, 0.02, 0.08):
            cc.on_ack(ack(now=0.1, rtt=rtt))
        assert cc.base_rtt == 0.02

    def test_equilibrium_between_alpha_beta(self):
        """Vegas settles where the diff is between 2 and 4 segments."""
        cc = Vegas(MSS)
        base = 0.05
        now = 0.0
        for _ in range(3000):
            # Model rtt = base * (1 + queue), queue proportional to cwnd
            # beyond 20 segments on a fixed-BDP path.
            segments = cc.cwnd_bytes / MSS
            rtt = base * max(1.0, segments / 20.0)
            cc.on_ack(ack(now=now, rtt=rtt, newly=MSS))
            now += 0.01
        segments = cc.cwnd_bytes / MSS
        diff = segments * (1 - 20.0 / max(segments, 20.0))
        assert 0 <= diff <= 6

    def test_loss_reduces_window(self):
        cc = Vegas(MSS)
        cc._cwnd = 40 * MSS
        cc.on_loss(now=1.0, in_flight=40 * MSS)
        assert cc.cwnd_bytes == pytest.approx(30 * MSS)


class TestVivace:
    def drive(self, cc, rtt_fn, duration=10.0, step=0.01):
        now = 0.0
        while now < duration:
            cc.on_ack(ack(now=now, rtt=rtt_fn(now), newly=MSS))
            now += step

    def test_stable_rtt_grows_rate(self):
        cc = Vivace(MSS)
        initial = cc.rate_bps
        self.drive(cc, lambda t: 0.05)
        assert cc.rate_bps > initial

    def test_rising_rtt_suppresses_rate(self):
        """Oscillating RTTs (the steering signature) crush the rate."""
        stable = Vivace(MSS)
        self.drive(stable, lambda t: 0.05)
        jittery = Vivace(MSS)
        # Sawtooth between 5 ms and 80 ms — steering-induced bimodality.
        self.drive(jittery, lambda t: 0.005 if (t % 0.2) < 0.1 else 0.08)
        assert jittery.rate_bps < stable.rate_bps / 3

    def test_loss_pressure_lowers_utility(self):
        clean = Vivace(MSS)
        self.drive(clean, lambda t: 0.05, duration=5.0)
        lossy = Vivace(MSS)
        now = 0.0
        while now < 5.0:
            lossy.on_ack(ack(now=now, rtt=0.05, newly=MSS))
            if int(now * 100) % 10 == 0:
                lossy.on_loss(now=now, in_flight=10 * MSS)
            now += 0.01
        assert lossy.rate_bps < clean.rate_bps

    def test_pacing_rate_exposed(self):
        cc = Vivace(MSS)
        assert cc.pacing_rate_bps == cc.rate_bps

    def test_rate_floor(self):
        cc = Vivace(MSS)
        for i in range(100):
            cc.on_timeout(now=float(i))
        assert cc.rate_bps >= 0.2e6


class TestHvcAware:
    def test_passthrough_single_channel(self):
        wrapped = HvcAware(Cubic(MSS))
        plain = Cubic(MSS)
        for i in range(200):
            sample = ack(now=i * 0.01, data_channel=0, ack_channel=0)
            wrapped.on_ack(sample)
            plain.on_ack(ack(now=i * 0.01))
        assert wrapped.cwnd_bytes == pytest.approx(plain.cwnd_bytes)

    def test_normalizes_cross_channel_rtts(self):
        """A URLLC-flavoured sample is re-based onto the primary pair."""
        cc = HvcAware(Vegas(MSS))
        cc.base._in_slow_start = False
        # Bulk data on channel 0 (50 ms), occasional sample via channel 1 (5 ms).
        for i in range(100):
            cc.on_ack(ack(now=i * 0.01, rtt=0.05, data_channel=0, ack_channel=0))
        cc.on_ack(ack(now=1.0, rtt=0.005, newly=10, data_channel=1, ack_channel=1))
        grown = cc.cwnd_bytes
        for i in range(300):
            cc.on_ack(ack(now=1.01 + i * 0.01, rtt=0.05, data_channel=0, ack_channel=0))
        # Without normalization Vegas would collapse (base 5 ms vs 50 ms RTTs).
        assert cc.cwnd_bytes >= grown

    def test_floors_tracked_per_pair(self):
        cc = HvcAware(Cubic(MSS))
        cc.on_ack(ack(now=0.0, rtt=0.05, data_channel=0, ack_channel=0))
        cc.on_ack(ack(now=0.1, rtt=0.005, data_channel=1, ack_channel=1))
        assert cc.channel_floors[(0, 0)] == 0.05
        assert cc.channel_floors[(1, 1)] == 0.005

    def test_delegates_outputs(self):
        base = Cubic(MSS)
        cc = HvcAware(base)
        assert cc.cwnd_bytes == base.cwnd_bytes
        assert cc.pacing_rate_bps == base.pacing_rate_bps
        cc.on_timeout(now=1.0)
        assert base.cwnd_bytes == 2 * MSS
