"""Unit tests for repro.faults: schedules, the injector, recovery metrics."""

import pytest

from repro.core.api import HvcNetwork
from repro.errors import ScenarioError
from repro.faults import (
    FaultInjector,
    FaultLossOverlay,
    FaultSchedule,
    RecoveryTracker,
)
from repro.faults.schedule import Fault
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.net.loss import BernoulliLoss
from repro.units import kb


def make_net(steering="dchannel", seed=0, **kwargs):
    return HvcNetwork(
        [fixed_embb_spec(), urllc_spec()], steering=steering, seed=seed, **kwargs
    )


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fault kind"):
            Fault(0.0, "embb", "meteor", 1.0).validate()

    def test_negative_start_rejected(self):
        with pytest.raises(ScenarioError, match="start"):
            Fault(-1.0, "embb", "outage", 1.0).validate()

    def test_zero_duration_rejected(self):
        with pytest.raises(ScenarioError, match="duration"):
            Fault(0.0, "embb", "outage", 0.0).validate()

    @pytest.mark.parametrize("severity", [0.0, 1.0, 1.5])
    def test_loss_burst_severity_bounds(self, severity):
        with pytest.raises(ScenarioError, match="severity"):
            Fault(0.0, "embb", "loss_burst", 1.0, severity).validate()

    @pytest.mark.parametrize("severity", [0.0, 1.0])
    def test_capacity_severity_bounds(self, severity):
        # A full stall must be expressed as an outage, not capacity 0.
        with pytest.raises(ScenarioError, match="severity"):
            Fault(0.0, "embb", "capacity", 1.0, severity).validate()


class TestFaultSchedule:
    def test_builders_sort_and_compose(self):
        sched = (
            FaultSchedule()
            .loss_burst("urllc", 5.0, 1.0, loss=0.2)
            .outage("embb", 1.0, 2.0)
        )
        assert [f.kind for f in sched] == ["outage", "loss_burst"]
        assert sched.horizon == 6.0
        assert len(sched.for_channel("embb")) == 1

    def test_params_round_trip(self):
        sched = (
            FaultSchedule()
            .outage("embb", 1.0, 2.0)
            .rtt_spike("urllc", 0.5, 1.0, extra_delay=0.05)
        )
        again = FaultSchedule.from_params(sched.to_params())
        assert again.faults == sched.faults

    def test_correlated_stagger(self):
        sched = FaultSchedule().correlated(
            ["embb", "urllc"], 2.0, 1.0, kind="blackout", stagger=0.25
        )
        starts = {f.channel: f.start for f in sched}
        assert starts == {"embb": 2.0, "urllc": 2.25}

    def test_random_is_seed_deterministic(self):
        a = FaultSchedule.random(["embb", "urllc"], duration=60.0, seed=42)
        b = FaultSchedule.random(["embb", "urllc"], duration=60.0, seed=42)
        c = FaultSchedule.random(["embb", "urllc"], duration=60.0, seed=43)
        assert a.faults == b.faults
        assert a.faults != c.faults
        assert len(a) > 0

    def test_merge(self):
        a = FaultSchedule().outage("embb", 1.0, 1.0)
        b = FaultSchedule().outage("urllc", 2.0, 1.0)
        assert len(a.merge(b)) == 2


class TestFaultLossOverlay:
    def test_long_run_rate_combines(self):
        overlay = FaultLossOverlay(BernoulliLoss(0.1))
        overlay.push(0.5)
        assert overlay.long_run_rate == pytest.approx(1 - 0.9 * 0.5)
        overlay.pop(0.5)
        assert overlay.long_run_rate == pytest.approx(0.1)


class TestInjector:
    def test_outage_applies_and_reverts(self):
        net = make_net()
        FaultInjector(net, FaultSchedule().outage("embb", 1.0, 2.0)).arm()
        embb = net.channel_named("embb")
        net.run(until=2.0)
        assert not embb.up
        net.run(until=4.0)
        assert embb.up
        assert embb.outage_count == 1
        assert embb.downtime_total == pytest.approx(2.0)

    def test_unknown_channel_rejected_at_arm(self):
        net = make_net()
        injector = FaultInjector(net, FaultSchedule().outage("wifi", 1.0, 1.0))
        with pytest.raises(ScenarioError, match="wifi"):
            injector.arm()

    def test_past_fault_rejected_at_arm(self):
        net = make_net()
        net.run(until=5.0)
        injector = FaultInjector(net, FaultSchedule().outage("embb", 1.0, 1.0))
        with pytest.raises(ScenarioError, match="past"):
            injector.arm()

    def test_loss_burst_raises_and_restores_loss_rate(self):
        net = make_net()
        FaultInjector(net, FaultSchedule().loss_burst("embb", 1.0, 1.0, loss=0.4)).arm()
        link = net.channel_named("embb").uplink
        base = link.loss.long_run_rate
        net.run(until=1.5)
        assert link.loss.long_run_rate == pytest.approx(1 - (1 - base) * 0.6)
        net.run(until=3.0)
        assert link.loss.long_run_rate == pytest.approx(base)

    def test_rtt_spike_shifts_delay(self):
        net = make_net()
        FaultInjector(net, FaultSchedule().rtt_spike("urllc", 1.0, 1.0, extra_delay=0.05)).arm()
        link = net.channel_named("urllc").uplink
        base = link.current_delay()
        net.run(until=1.5)
        assert link.current_delay() == pytest.approx(base + 0.05)
        net.run(until=3.0)
        assert link.current_delay() == pytest.approx(base)

    def test_capacity_collapse_scales_rate(self):
        net = make_net()
        FaultInjector(
            net, FaultSchedule().capacity_collapse("embb", 1.0, 1.0, factor=0.25)
        ).arm()
        link = net.channel_named("embb").uplink
        base = link.current_rate()
        net.run(until=1.5)
        assert link.current_rate() == pytest.approx(base * 0.25)
        net.run(until=3.0)
        assert link.current_rate() == pytest.approx(base)

    def test_blackout_flushes_queued_packets(self):
        net = make_net(steering="single")
        FaultInjector(net, FaultSchedule().blackout("embb", 0.2, 1.0)).arm()
        pair = net.open_datagram()
        # A burst just before the blackout leaves a standing uplink queue
        # (300 kB needs ~40 ms of serialization at 60 Mbps).
        net.sim.schedule(0.19, lambda: pair.client.send_message(kb(300), message_id=1))
        net.run(until=0.5)
        uplink = net.channel_named("embb").uplink
        assert uplink.stats.flushed > 0
        assert uplink.backlog_bytes == 0


class TestRecoveryTracker:
    def test_single_policy_stalls_and_recovers(self):
        net = make_net(steering="single")
        FaultInjector(net, FaultSchedule().outage("embb", 0.5, 1.0)).arm()
        tracker = RecoveryTracker(net)
        pair = net.open_connection(cc="cubic")
        done = []
        pair.client.send_message(kb(8000), on_acked=lambda m, t: done.append(t))
        net.run(until=20.0)
        summary = tracker.summary()
        assert done, "transfer must complete after the outage"
        assert summary["outages"] == 1
        assert summary["failovers"] == 0
        assert summary["recovery_samples"] >= 1
        assert summary["recovery_max_s"] > 0

    def test_dchannel_fails_over_without_stalling(self):
        net = make_net(steering="dchannel")
        FaultInjector(net, FaultSchedule().outage("embb", 0.5, 1.0)).arm()
        tracker = RecoveryTracker(net)
        pair = net.open_connection(cc="cubic")
        done = []
        pair.client.send_message(kb(8000), on_acked=lambda m, t: done.append(t))
        net.run(until=20.0)
        summary = tracker.summary()
        assert done
        assert summary["failovers"] >= 1
        assert summary["recovery_samples"] == 0

    def test_metrics_reach_registry(self):
        net = make_net(steering="single")
        net.attach_obs()
        FaultInjector(net, FaultSchedule().outage("embb", 0.5, 1.0)).arm()
        RecoveryTracker(net)
        pair = net.open_connection(cc="cubic")
        pair.client.send_message(kb(8000))
        net.run(until=20.0)
        snapshot = net.obs.registry.snapshot()
        assert "faults.injected" in snapshot
        assert "faults.outages" in snapshot
        assert "faults.downtime" in snapshot
        assert "faults.recovery_time" in snapshot


class TestBlackoutDegradation:
    def test_connection_suppresses_rto_and_reprobes(self):
        net = make_net(steering="dchannel")
        FaultInjector(
            net,
            FaultSchedule().correlated(["embb", "urllc"], 0.5, 2.0, kind="blackout"),
        ).arm()
        pair = net.open_connection(cc="cubic")
        done = []
        pair.client.send_message(kb(8000), on_acked=lambda m, t: done.append(t))
        net.run(until=30.0)
        stats = pair.client.stats
        assert done, "transfer must complete after total blackout"
        assert stats.blackout_timeouts >= 1
        assert stats.recovery_probes >= 1
        # The fast re-probe bounds the post-blackout stall: completion lands
        # well before a backed-off RTO (>= 2 s by then) would have fired.
        assert done[0] < 3.0 + 1.0
        assert net.client.stats.blackout_drops >= 0

    def test_datagram_drop_mode(self):
        net = make_net(steering="dchannel")
        FaultInjector(
            net, FaultSchedule().correlated(["embb", "urllc"], 1.0, 1.0)
        ).arm()
        pair = net.open_datagram(blackout="drop")
        net.sim.schedule(1.5, lambda: pair.client.send_message(kb(10), message_id=1))
        net.run(until=5.0)
        assert pair.client.stats.messages_blackout_dropped == 1
        assert pair.server.stats.messages_completed == 0

    def test_datagram_buffer_mode_flushes_on_recovery(self):
        net = make_net(steering="dchannel")
        FaultInjector(
            net, FaultSchedule().correlated(["embb", "urllc"], 1.0, 1.0)
        ).arm()
        pair = net.open_datagram(blackout="buffer")
        net.sim.schedule(1.5, lambda: pair.client.send_message(kb(10), message_id=1))
        net.run(until=5.0)
        assert pair.client.stats.messages_blackout_buffered == 1
        assert pair.server.stats.messages_completed == 1
