"""Unit tests for the link pipeline (serialize → loss → propagate)."""

import pytest

from repro.errors import NetworkError
from repro.net.link import Link, LinkSpec
from repro.net.loss import BernoulliLoss
from repro.net.packet import Packet, PacketType
from repro.sim.kernel import Simulator
from repro.traces.model import NetworkTrace, constant_trace
from repro.units import mbps, ms


def pkt(payload=1460):
    return Packet(flow_id=1, ptype=PacketType.DATA, payload_bytes=payload)


def make_link(sim, rate=mbps(12), delay=ms(10), **kwargs):
    link = Link(sim, LinkSpec(rate_bps=rate, delay=delay, **kwargs), name="test")
    arrivals = []
    link.connect(lambda p: arrivals.append((sim.now, p)))
    return link, arrivals


class TestLinkDelivery:
    def test_single_packet_timing(self):
        """1500 B at 12 Mbps = 1 ms serialization + 10 ms propagation."""
        sim = Simulator()
        link, arrivals = make_link(sim)
        link.send(pkt())
        sim.run()
        assert len(arrivals) == 1
        assert arrivals[0][0] == pytest.approx(0.011)

    def test_back_to_back_packets_serialize_sequentially(self):
        sim = Simulator()
        link, arrivals = make_link(sim)
        link.send(pkt())
        link.send(pkt())
        sim.run()
        times = [t for t, _ in arrivals]
        assert times[0] == pytest.approx(0.011)
        assert times[1] == pytest.approx(0.012)

    def test_fifo_even_when_delay_drops(self):
        """A mid-flight delay drop must not reorder deliveries."""
        sim = Simulator()
        trace = NetworkTrace([0.0, 0.0015], [mbps(12), mbps(12)], [ms(50), ms(1)])
        link = Link(sim, LinkSpec(trace=trace), name="vary")
        arrivals = []
        link.connect(lambda p: arrivals.append(p))
        first, second = pkt(), pkt()
        link.send(first)
        link.send(second)
        sim.run()
        assert arrivals == [first, second]

    def test_overflow_drops_counted(self):
        sim = Simulator()
        link, arrivals = make_link(sim, queue_bytes=1500)
        for _ in range(5):
            link.send(pkt())
        sim.run()
        # One in service immediately + one queued fit; rest dropped.
        assert link.stats.overflow_drops == 3
        assert len(arrivals) == 2

    def test_loss_model_applied(self):
        sim = Simulator()
        link, arrivals = make_link(sim, loss=BernoulliLoss(0.5), queue_bytes=1_000_000)
        for _ in range(400):
            link.send(pkt())
        sim.run()
        assert 120 < len(arrivals) < 280
        assert link.stats.lost == 400 - len(arrivals)

    def test_down_link_rejects(self):
        sim = Simulator()
        link, arrivals = make_link(sim)
        link.up = False
        assert not link.send(pkt())
        sim.run()
        assert arrivals == []

    def test_backlog_includes_in_service_packet(self):
        sim = Simulator()
        link, _ = make_link(sim)
        link.send(pkt())
        link.send(pkt())
        assert link.backlog_bytes == 3000
        sim.run(until=0.0015)
        assert link.backlog_bytes == 1500

    def test_no_receiver_raises(self):
        sim = Simulator()
        link = Link(sim, LinkSpec(rate_bps=mbps(12), delay=ms(1)))
        link.send(pkt())
        with pytest.raises(NetworkError):
            sim.run()

    def test_outage_recovers(self):
        """A zero-rate trace span stalls the packet, then it goes through."""
        sim = Simulator()
        trace = NetworkTrace([0.0, 0.05], [0.0, mbps(12)], [ms(1), ms(1)])
        link = Link(sim, LinkSpec(trace=trace), name="outage")
        arrivals = []
        link.connect(lambda p: arrivals.append(sim.now))
        link.send(pkt())
        sim.run(until=0.2)
        assert len(arrivals) == 1
        assert 0.05 <= arrivals[0] < 0.06

    def test_trace_driven_rate(self):
        """Doubled trace rate halves serialization time."""
        sim = Simulator()
        link = Link(sim, LinkSpec(trace=constant_trace(mbps(24), ms(10))))
        arrivals = []
        link.connect(lambda p: arrivals.append(sim.now))
        link.send(pkt())
        sim.run()
        assert arrivals[0] == pytest.approx(0.0105)

    def test_stats_bytes_delivered(self):
        sim = Simulator()
        link, _ = make_link(sim)
        link.send(pkt())
        sim.run()
        assert link.stats.bytes_delivered == 1500
        assert link.stats.delivered == 1

    def test_spec_validation(self):
        with pytest.raises(NetworkError):
            LinkSpec(rate_bps=0).validate()
        with pytest.raises(NetworkError):
            LinkSpec(rate_bps=1e6, delay=-1).validate()
        with pytest.raises(NetworkError):
            LinkSpec(rate_bps=1e6, queue_bytes=0).validate()

    def test_on_depart_hook_fires(self):
        sim = Simulator()
        link, _ = make_link(sim)
        departures = []
        link.on_depart = lambda p, l: departures.append(sim.now)
        link.send(pkt())
        sim.run()
        assert departures == [pytest.approx(0.001)]
