"""Tests for simulation-time logging."""

import logging

import pytest

from repro.sim.kernel import Simulator
from repro.sim.logging import ROOT_NAME, get_logger, set_level


@pytest.fixture(autouse=True)
def reset_level():
    yield
    logging.getLogger(ROOT_NAME).setLevel(logging.WARNING)


class TestSimLogging:
    def test_records_carry_sim_time(self, caplog):
        sim = Simulator()
        log = get_logger(sim, "test.component")
        set_level("DEBUG")
        sim.schedule(1.5, lambda: log.info("tick"))
        with caplog.at_level(logging.DEBUG, logger=ROOT_NAME):
            sim.run()
        record = next(r for r in caplog.records if r.message == "tick")
        assert record.sim_time == 1.5

    def test_silent_by_default(self, caplog):
        sim = Simulator()
        log = get_logger(sim, "quiet")
        with caplog.at_level(logging.WARNING, logger=ROOT_NAME):
            log.info("should not appear")
        assert not [r for r in caplog.records if r.message == "should not appear"]

    def test_new_simulator_replaces_clock(self, caplog):
        old_sim = Simulator()
        old_sim.run(until=9.0)
        new_sim = Simulator()
        log = get_logger(new_sim, "swap")
        set_level("DEBUG")
        with caplog.at_level(logging.DEBUG, logger=ROOT_NAME):
            log.info("fresh")
        record = next(r for r in caplog.records if r.message == "fresh")
        assert record.sim_time == 0.0

    def test_set_level_validates(self):
        with pytest.raises(ValueError):
            set_level("CHATTY")
