"""Property-based tests (hypothesis) for core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.metrics import Cdf, percentile
from repro.net.channel import ChannelSpec
from repro.net.packet import Packet, PacketType
from repro.net.queue import DropTailQueue
from repro.sim.events import EventQueue
from repro.sim.kernel import Simulator
from repro.steering import make_steerer, list_steerers
from repro.steering.util import TokenBucket
from repro.traces.model import NetworkTrace
from repro.transport.connection import Connection
from repro.units import mbps, ms

from tests.conftest import make_pair
from tests.test_steering import FakeView


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_pops_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(popped)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=100),
        st.data(),
    )
    def test_cancellation_conserves_count(self, times, data):
        queue = EventQueue()
        events = [queue.push(t, lambda: None) for t in times]
        to_cancel = data.draw(
            st.lists(st.integers(0, len(events) - 1), unique=True, max_size=len(events))
        )
        for index in to_cancel:
            events[index].cancel()
            queue.notify_cancelled()
        survivors = 0
        while queue.pop() is not None:
            survivors += 1
        assert survivors == len(events) - len(to_cancel)


class TestQueueProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=3000), min_size=1, max_size=100),
        st.integers(min_value=1500, max_value=20_000),
    )
    def test_conservation(self, sizes, capacity):
        """enqueued == dequeued + still-queued, and backlog matches."""
        queue = DropTailQueue(capacity)
        accepted = 0
        for size in sizes:
            packet = Packet(flow_id=1, ptype=PacketType.DATA, payload_bytes=size, header_bytes=0)
            if queue.try_enqueue(packet):
                accepted += 1
        assert queue.stats.enqueued == accepted
        assert queue.stats.dropped == len(sizes) - accepted
        drained = 0
        total_bytes = 0
        while True:
            packet = queue.dequeue()
            if packet is None:
                break
            drained += 1
            total_bytes += packet.size_bytes
        assert drained == accepted
        assert queue.backlog_bytes == 0
        assert total_bytes <= queue.capacity_bytes or accepted == 1


class TestPercentileProperties:
    @given(
        st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=300),
        st.floats(min_value=0, max_value=100),
    )
    def test_bounded_by_min_max(self, samples, p):
        value = percentile(samples, p)
        assert min(samples) <= value <= max(samples)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
    def test_monotone_in_p(self, samples):
        values = [percentile(samples, p) for p in (0, 25, 50, 75, 100)]
        assert values == sorted(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_cdf_probability_monotone(self, samples):
        cdf = Cdf(samples)
        probes = sorted(samples)[:: max(1, len(samples) // 10)]
        probabilities = [cdf.probability_below(v) for v in probes]
        assert probabilities == sorted(probabilities)


class TestTraceProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=1e9),
                st.floats(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=0, max_value=10_000),
    )
    def test_lookup_matches_some_sample(self, pairs, query):
        times = [float(i) for i in range(len(pairs))]
        rates = [r for r, _ in pairs]
        delays = [d for _, d in pairs]
        trace = NetworkTrace(times, rates, delays)
        assert trace.rate_at(query) in rates
        assert trace.delay_at(query) in delays

    @given(st.integers(min_value=0, max_value=2**31))
    def test_synthetic_trace_always_valid(self, seed):
        from repro.traces.synthetic import lowband_driving

        trace = lowband_driving(seed=seed, duration=10.0)
        assert all(r > 0 for r in trace.rates_bps)
        assert all(d > 0 for d in trace.delays)


class TestSteeringProperties:
    @settings(max_examples=50)
    @given(
        st.sampled_from([n for n in list_steerers()]),
        st.integers(min_value=0, max_value=3),  # which channel is down
        st.sampled_from(list(PacketType)),
        st.integers(min_value=0, max_value=1460),
        st.one_of(st.none(), st.integers(0, 3)),
        st.one_of(st.none(), st.integers(0, 3)),
    )
    def test_never_picks_a_down_channel(
        self, name, down_index, ptype, payload, msg_priority, flow_priority
    ):
        views = [
            FakeView(0, "embb", rate_bps=mbps(60), base_delay=ms(25)),
            FakeView(1, "urllc", rate_bps=mbps(2), base_delay=ms(2.5), reliable=True),
            FakeView(2, "wifi", rate_bps=mbps(100), base_delay=ms(6)),
            FakeView(3, "cisp", rate_bps=mbps(10), base_delay=ms(4), cost_per_byte=1e-6),
        ]
        views[down_index].up = False
        if name == "single":
            steerer = make_steerer(name, index=(down_index + 1) % 4)
        else:
            steerer = make_steerer(name)
        packet = Packet(
            flow_id=1,
            ptype=ptype,
            payload_bytes=payload,
            message_priority=msg_priority,
            flow_priority=flow_priority,
        )
        choice = steerer.choose(packet, views, now=1.0)
        assert choice, "policy returned no channel"
        if name != "single":
            assert down_index not in choice
        for index in choice:
            assert 0 <= index < 4


class TestTokenBucketProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10),  # spend amount
                st.floats(min_value=0, max_value=5),  # time delta
            ),
            max_size=60,
        )
    )
    def test_never_overspends(self, operations):
        bucket = TokenBucket(rate_per_s=1.0, burst=5.0)
        now = 0.0
        spent = 0.0
        for amount, dt in operations:
            now += dt
            if bucket.try_spend(amount, now):
                spent += amount
            assert 0 <= bucket.available(now) <= 5.0
        # Total spend can never exceed refill + initial burst.
        assert spent <= 5.0 + now * 1.0 + 1e-6


class TestTransportProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=30_000), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_messages_always_delivered_in_order(self, sizes, seed):
        """All messages complete, in order, for arbitrary sizes and seeds."""
        sim = Simulator()
        rng = random.Random(seed)
        delay = ms(rng.uniform(1, 40))
        rate = mbps(rng.uniform(2, 50))
        client, server, _ = make_pair(
            sim, [ChannelSpec.symmetric("c", rate, delay, queue_bytes=200_000)]
        )
        receipts = []
        sender = Connection(sim, client, 1)
        Connection(sim, server, 1, on_message=receipts.append)
        for i, size in enumerate(sizes):
            sender.send_message(size, message_id=i)
        sim.run(until=120.0)
        assert [r.message_id for r in receipts] == list(range(len(sizes)))
        assert [r.size for r in receipts] == sizes
