"""Tests for the web application (pages, corpus, loader, background)."""

import pytest

from repro.apps.web.background import BackgroundFlows
from repro.apps.web.browser import load_page
from repro.apps.web.corpus import generate_corpus, generate_page
from repro.apps.web.page import WebObject, WebPage
from repro.core.api import HvcNetwork
from repro.errors import ScenarioError
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.units import mbps, ms


def tiny_page():
    return WebPage(
        name="tiny",
        objects=[
            WebObject(0, 20_000),
            WebObject(1, 30_000, depends_on=[0]),
            WebObject(2, 10_000, depends_on=[0]),
            WebObject(3, 15_000, depends_on=[1]),
        ],
    )


class TestWebPage:
    def test_valid_page(self):
        page = tiny_page()
        page.validate()
        assert page.total_bytes == 75_000
        assert page.object_count == 4
        assert page.depth() == 3

    def test_size_of(self):
        assert tiny_page().size_of(1) == 30_000
        with pytest.raises(ScenarioError):
            tiny_page().size_of(9)

    def test_validation_errors(self):
        with pytest.raises(ScenarioError):
            WebPage("empty", []).validate()
        with pytest.raises(ScenarioError):
            WebPage("root-dep", [WebObject(0, 100, depends_on=[1])]).validate()
        with pytest.raises(ScenarioError):
            WebPage(
                "forward-dep",
                [WebObject(0, 100), WebObject(1, 100, depends_on=[1])],
            ).validate()
        with pytest.raises(ScenarioError):
            WebPage("bad-size", [WebObject(0, 0)]).validate()
        with pytest.raises(ScenarioError):
            WebPage("bad-ids", [WebObject(0, 10), WebObject(5, 10)]).validate()


class TestCorpus:
    def test_corpus_size_and_validity(self):
        pages = generate_corpus(count=30, seed=1)
        assert len(pages) == 30
        for page in pages:
            page.validate()

    def test_pages_look_like_web_pages(self):
        pages = generate_corpus(count=30, seed=1)
        counts = [p.object_count for p in pages]
        sizes = [p.total_bytes for p in pages]
        depths = [p.depth() for p in pages]
        assert 5 <= sum(counts) / len(counts) <= 60  # tens of objects
        assert 100_000 <= sum(sizes) / len(sizes) <= 3_000_000
        assert max(depths) >= 3  # discovery chains exist

    def test_landing_pages_are_heavier(self):
        pages = generate_corpus(count=30, seed=1)
        landing = [p.object_count for p in pages if "landing" in p.name]
        internal = [p.object_count for p in pages if "internal" in p.name]
        assert sum(landing) / len(landing) > sum(internal) / len(internal)

    def test_deterministic(self):
        a = generate_page("p", seed=7)
        b = generate_page("p", seed=7)
        assert [o.size_bytes for o in a.objects] == [o.size_bytes for o in b.objects]

    def test_count_validation(self):
        with pytest.raises(ScenarioError):
            generate_corpus(count=0)


class TestPageLoad:
    def fast_net(self):
        return HvcNetwork(
            [fixed_embb_spec(rate_bps=mbps(60), rtt=ms(50))], steering="single"
        )

    def test_load_completes(self):
        result = load_page(self.fast_net(), tiny_page())
        assert result.complete
        assert result.plt > 0
        assert len(result.object_finish_times) == 4

    def test_dependencies_respected(self):
        result = load_page(self.fast_net(), tiny_page())
        times = result.object_finish_times
        assert times[0] < times[1]
        assert times[0] < times[2]
        assert times[1] < times[3]

    def test_plt_scales_with_rtt(self):
        slow = HvcNetwork(
            [fixed_embb_spec(rate_bps=mbps(60), rtt=ms(200))], steering="single"
        )
        fast_plt = load_page(self.fast_net(), tiny_page()).plt
        slow_plt = load_page(slow, tiny_page()).plt
        # depth-3 page: each extra discovery level costs about one RTT.
        assert slow_plt > fast_plt + 0.3

    def test_dchannel_beats_embb_only_on_chatty_page(self):
        page = generate_page("p", seed=3)
        embb_plt = load_page(
            HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="single"), page
        ).plt
        dchannel_plt = load_page(
            HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel"), page
        ).plt
        assert dchannel_plt < embb_plt

    def test_sequential_loads_on_one_network(self):
        net = self.fast_net()
        first = load_page(net, tiny_page())
        second = load_page(net, tiny_page())
        assert first.complete and second.complete
        assert second.started_at >= first.finished_at


class TestBackgroundFlows:
    def test_loops_make_progress(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        background = BackgroundFlows(net)
        net.run(until=5.0)
        assert background.stats.uploads_completed > 5
        assert background.stats.downloads_completed > 5

    def test_flows_tagged_background(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        priorities = set()
        net.server.on_receive_hooks.append(lambda p: priorities.add(p.flow_priority))
        BackgroundFlows(net)
        net.run(until=2.0)
        assert priorities == {2}

    def test_stop_halts_new_transfers(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        background = BackgroundFlows(net)
        net.run(until=2.0)
        background.stop()
        count = background.stats.uploads_completed
        net.run(until=4.0)
        assert background.stats.uploads_completed <= count + 1

    def test_background_squats_on_urllc_without_priority_filter(self):
        """The Table 1 mechanism: plain DChannel lets background use URLLC."""
        plain = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        BackgroundFlows(plain)
        plain.run(until=3.0)
        urllc_plain = (
            plain.channel_named("urllc").uplink.stats.delivered
            + plain.channel_named("urllc").downlink.stats.delivered
        )

        filtered = HvcNetwork(
            [fixed_embb_spec(), urllc_spec()], steering="dchannel+flowprio"
        )
        BackgroundFlows(filtered)
        filtered.run(until=3.0)
        urllc_filtered = (
            filtered.channel_named("urllc").uplink.stats.delivered
            + filtered.channel_named("urllc").downlink.stats.delivered
        )
        assert urllc_plain > 50
        assert urllc_filtered == 0
