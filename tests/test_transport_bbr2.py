"""BBRv2/BBRv2+ unit and property tests.

The hypothesis suites pin the three v2 contracts the cc-matrix experiment
leans on: the learned ``inflight_hi`` ceiling really ceilings the window
after a lossy round, PROBE_UP gives up (and backs its cadence off) the
moment a round's loss rate crosses 2%, and cwnd/pacing outputs stay
finite and positive under arbitrary ACK/loss/timeout interleavings.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.transport.cc.base import AckSample
from repro.transport.cc.bbr2 import (
    BETA,
    Bbr2,
    LOSS_THRESH,
    MAX_PROBE_INTERVAL,
    MIN_CWND_SEGMENTS,
    PROBE_BACKOFF,
    PROBE_INTERVAL,
)
from repro.transport.cc.windowed import WindowedMax

MSS = 1460


def ack(
    cc,
    now=0.0,
    rtt=0.05,
    newly_acked=MSS,
    in_flight=10 * MSS,
    rate_bps=8_000_000.0,
    total_delivered=0,
    app_limited=False,
):
    cc.on_ack(
        AckSample(
            now=now,
            rtt=rtt,
            newly_acked=newly_acked,
            in_flight=in_flight,
            delivery_rate=rate_bps,
            app_limited=app_limited,
            total_delivered=total_delivered,
        )
    )


def drive_rounds(cc, rounds, now=0.0, rtt=0.05, in_flight=10 * MSS,
                 rate_bps=8_000_000.0, total=0):
    """Feed enough delivered bytes to close ``rounds`` rounds; returns
    (now, total_delivered) for chaining."""
    for _ in range(rounds):
        while True:
            target = cc._round_target
            total += in_flight
            now += rtt
            ack(
                cc, now=now, rtt=rtt, in_flight=in_flight,
                rate_bps=rate_bps, total_delivered=total,
            )
            if total >= target:
                break
    return now, total


class TestStateMachine:
    def test_startup_exits_on_bandwidth_plateau(self):
        cc = Bbr2(mss=MSS)
        assert cc.state == cc.STARTUP
        # Constant-rate rounds: three non-growing rounds end STARTUP.
        drive_rounds(cc, 6)
        assert cc.state != cc.STARTUP

    def test_excessive_loss_exits_startup(self):
        cc = Bbr2(mss=MSS)
        ack(cc, now=0.05, total_delivered=10 * MSS)
        cc.on_lost(0.06, lost_bytes=5 * MSS, in_flight=10 * MSS)
        assert cc.state == cc.DRAIN
        assert math.isfinite(cc.inflight_hi)

    def test_probe_bw_cycle_reaches_cruise(self):
        cc = Bbr2(mss=MSS)
        now, total = drive_rounds(cc, 6)
        # DRAIN exits once in_flight <= BDP; feed a small-flight sample.
        ack(cc, now=now + 0.05, in_flight=2 * MSS, total_delivered=total)
        assert cc.state == cc.CRUISE

    def test_cruise_refills_after_probe_interval(self):
        cc = Bbr2(mss=MSS)
        now, total = drive_rounds(cc, 6)
        ack(cc, now=now + 0.05, in_flight=2 * MSS, total_delivered=total)
        assert cc.state == cc.CRUISE
        ack(
            cc, now=now + 0.1 + PROBE_INTERVAL, in_flight=2 * MSS,
            total_delivered=total + MSS,
        )
        assert cc.state == cc.REFILL

    def test_timeout_preserves_learned_ceiling(self):
        cc = Bbr2(mss=MSS)
        ack(cc, now=0.05, total_delivered=10 * MSS)
        cc.on_lost(0.06, lost_bytes=5 * MSS, in_flight=10 * MSS)
        ceiling = cc.inflight_hi
        cc.on_timeout(1.0)
        assert cc.state == cc.STARTUP
        assert cc.inflight_hi == ceiling

    def test_registry_names(self):
        assert Bbr2(mss=MSS).name == "bbr2"
        assert Bbr2(mss=MSS, delay_aware=True).name == "bbr2+"


class TestDelayAwareProbing:
    def _cc_in_probe_up(self, delay_aware):
        cc = Bbr2(mss=MSS, delay_aware=delay_aware)
        now, total = drive_rounds(cc, 6)
        ack(cc, now=now + 0.05, in_flight=2 * MSS, total_delivered=total)
        assert cc.state == cc.CRUISE
        ack(
            cc, now=now + 0.1 + PROBE_INTERVAL, in_flight=2 * MSS,
            total_delivered=total + MSS,
        )
        assert cc.state == cc.REFILL
        # One full round of refilling enters PROBE_UP.
        now, total = drive_rounds(
            cc, 1, now=now + 0.1 + PROBE_INTERVAL, total=total + MSS
        )
        assert cc.state == cc.PROBE_UP
        return cc, now, total

    def test_inflated_rtt_aborts_probe_only_when_delay_aware(self):
        for delay_aware, expect_abort in ((True, True), (False, False)):
            cc, now, total = self._cc_in_probe_up(delay_aware)
            inflated = cc.min_rtt * 1.5  # > 1 + DELAY_PROBE_TOLERANCE
            ack(
                cc, now=now + 0.01, rtt=inflated, in_flight=2 * MSS,
                total_delivered=total,
            )
            if expect_abort:
                assert cc.state == cc.PROBE_DOWN
                assert cc.delay_probe_aborts == 1
                assert cc._probe_interval == PROBE_INTERVAL * PROBE_BACKOFF
            else:
                assert cc.state == cc.PROBE_UP
                assert cc.delay_probe_aborts == 0

    def test_backoff_saturates_at_max_interval(self):
        cc = Bbr2(mss=MSS, delay_aware=True)
        for _ in range(10):
            cc._finish_probe(success=False, now=None)
        assert cc._probe_interval == MAX_PROBE_INTERVAL
        cc._finish_probe(success=True, now=None)
        assert cc._probe_interval == PROBE_INTERVAL


flight_sizes = st.integers(min_value=MSS, max_value=400 * MSS)


class TestLossResponseProperties:
    @given(
        in_flight=flight_sizes,
        lost_fraction=st.floats(min_value=0.02, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_cwnd_never_exceeds_inflight_hi_after_loss_round(
        self, in_flight, lost_fraction
    ):
        cc = Bbr2(mss=MSS)
        drive_rounds(cc, 4, in_flight=in_flight)
        lost = max(MSS, int(in_flight * lost_fraction))
        cc.on_lost(1.0, lost_bytes=lost, in_flight=in_flight)
        assert math.isfinite(cc.inflight_hi)
        assert cc.inflight_hi >= MIN_CWND_SEGMENTS * MSS
        assert cc.cwnd_bytes <= cc.inflight_hi

    @given(
        in_flight=flight_sizes,
        delivered=st.integers(min_value=MSS, max_value=400 * MSS),
        lost=st.integers(min_value=0, max_value=400 * MSS),
    )
    @settings(max_examples=60, deadline=None)
    def test_loss_threshold_gates_the_response(self, in_flight, delivered, lost):
        cc = Bbr2(mss=MSS)
        ack(cc, now=0.05, newly_acked=delivered, in_flight=in_flight,
            total_delivered=delivered)
        # The gate is per-round: compare against the CC's own round
        # counters (the priming ACK may have just rolled the round over).
        round_total = cc._round_delivered + cc._round_lost + lost
        rate = (cc._round_lost + lost) / round_total if round_total else 0.0
        cc.on_lost(0.06, lost_bytes=lost, in_flight=in_flight)
        if rate >= LOSS_THRESH:
            assert math.isfinite(cc.inflight_hi)
            assert cc.inflight_lo >= BETA * min(in_flight, cc.inflight_hi) or (
                cc.inflight_lo == MIN_CWND_SEGMENTS * MSS
            )
        else:
            assert cc.inflight_hi == float("inf")

    @given(in_flight=flight_sizes)
    @settings(max_examples=30, deadline=None)
    def test_probe_up_backs_off_at_two_percent_loss(self, in_flight):
        cc = Bbr2(mss=MSS, delay_aware=True)
        now, total = drive_rounds(cc, 6, in_flight=in_flight)
        ack(cc, now=now + 0.05, in_flight=MSS, total_delivered=total)
        ack(cc, now=now + 0.1 + PROBE_INTERVAL, in_flight=MSS,
            total_delivered=total + MSS)
        now, total = drive_rounds(
            cc, 1, now=now + 0.1 + PROBE_INTERVAL,
            in_flight=in_flight, total=total + MSS,
        )
        assert cc.state == cc.PROBE_UP
        # A lossy round while probing: >= 2% of the round's transferred
        # bytes declared lost ends the probe and stretches the cadence.
        cc.on_lost(now + 0.2, lost_bytes=in_flight, in_flight=in_flight)
        assert cc.state != cc.PROBE_UP
        assert cc._probe_interval == PROBE_INTERVAL * PROBE_BACKOFF


events = st.lists(
    st.one_of(
        st.tuples(
            st.just("ack"),
            st.floats(min_value=0.001, max_value=0.5),  # rtt
            st.integers(min_value=0, max_value=64 * MSS),  # newly_acked
            flight_sizes,
            st.floats(min_value=1e3, max_value=1e9),  # delivery rate
        ),
        st.tuples(
            st.just("lost"),
            st.integers(min_value=0, max_value=64 * MSS),
            flight_sizes,
        ),
        st.tuples(st.just("sent"), flight_sizes),
        st.tuples(st.just("timeout")),
    ),
    min_size=1,
    max_size=120,
)


class TestChaosInvariants:
    """The transport-cc-bounds laws, driven directly against the CCA."""

    @given(events=events, delay_aware=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_outputs_stay_bounded(self, events, delay_aware):
        cc = Bbr2(mss=MSS, delay_aware=delay_aware)
        now = 0.0
        total = 0
        for event in events:
            now += 0.01
            if event[0] == "ack":
                _, rtt, newly_acked, in_flight, rate = event
                total += newly_acked
                ack(cc, now=now, rtt=rtt, newly_acked=newly_acked,
                    in_flight=in_flight, rate_bps=rate, total_delivered=total)
            elif event[0] == "lost":
                cc.on_lost(now, lost_bytes=event[1], in_flight=event[2])
            elif event[0] == "sent":
                cc.on_sent(now, MSS, event[1])
            else:
                cc.on_timeout(now)
            cwnd = cc.cwnd_bytes
            assert cwnd >= MIN_CWND_SEGMENTS * MSS
            assert math.isfinite(cwnd)
            assert cwnd <= max(cc.inflight_hi, MIN_CWND_SEGMENTS * MSS)
            pacing = cc.pacing_rate_bps
            assert pacing is None or (pacing > 0 and math.isfinite(pacing))
            assert cc.inflight_hi >= MIN_CWND_SEGMENTS * MSS
            assert cc.pacing_gain > 0


class TestWindowedMax:
    @given(
        samples=st.lists(
            st.tuples(st.floats(min_value=0, max_value=1e9)), min_size=1,
            max_size=200,
        ),
        window=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_max(self, samples, window):
        filt = WindowedMax()
        history = []
        for tick, (value,) in enumerate(samples):
            filt.push(tick, value)
            filt.evict(tick - window)
            history.append((tick, value))
            live = [v for t, v in history if t >= tick - window]
            assert filt.value == max(live)

    def test_empty_reads_zero(self):
        filt = WindowedMax()
        assert filt.value == 0.0
        assert not filt
        filt.push(0, 5.0)
        assert filt.value == 5.0
        filt.clear()
        assert len(filt) == 0
