"""Tests for packet taps."""

import json

import pytest

from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.net.tap import PacketTap
from repro.units import kb


def make_net():
    return HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")


class TestPacketTap:
    def test_records_sends_and_receives(self):
        net = make_net()
        tap = PacketTap(net)
        pair = net.open_connection()
        pair.client.send_message(kb(20), message_id=1)
        net.run(until=5.0)
        kinds = {e["event"] for e in tap.events}
        assert kinds == {"send", "receive"}
        assert tap.flows() == [pair.client.flow_id]

    def test_channel_share_reflects_steering(self):
        net = make_net()
        tap = PacketTap(net)
        pair = net.open_connection()
        pair.client.send_message(kb(200), message_id=1)
        net.run(until=10.0)
        share = tap.channel_share("send")
        assert share.get(0, 0) > 0  # bulk on eMBB
        assert share.get(1, 0) > 0  # ACK/control acceleration on URLLC

    def test_predicate_filters(self):
        net = make_net()
        pair = net.open_connection()
        tap = PacketTap(net, predicate=lambda p: p.flow_id == pair.client.flow_id + 1)
        pair.client.send_message(kb(5), message_id=1)
        net.run(until=3.0)
        assert tap.events == []

    def test_max_events_cap(self):
        net = make_net()
        tap = PacketTap(net, max_events=10)
        pair = net.open_connection()
        pair.client.send_message(kb(100), message_id=1)
        net.run(until=10.0)
        assert len(tap.events) == 10
        assert tap.dropped_records > 0

    def test_jsonl_round_trip(self, tmp_path):
        net = make_net()
        tap = PacketTap(net)
        pair = net.open_connection()
        pair.client.send_message(kb(5), message_id=1)
        net.run(until=3.0)
        path = tmp_path / "capture.jsonl"
        count = tap.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count > 0
        parsed = json.loads(lines[0])
        assert {"time", "event", "ptype", "channel"} <= set(parsed)

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketTap(make_net(), max_events=0)
