"""End-to-end: experiments export traces via --trace-dir wiring."""

from repro.experiments.fig1 import run_fig1a
from repro.experiments.table1 import table1_cell_unit
from repro.obs import summarize_file, validate_file


class TestExperimentTraceExport:
    def test_fig1a_exports_valid_traces(self, tmp_path):
        result = run_fig1a(
            duration=3.0, ccas=("cubic",), trace_dir=str(tmp_path)
        )
        path = result.artifacts["trace:cubic"]
        count, errors = validate_file(path)
        assert errors == []
        assert count > 100
        summary = summarize_file(path)
        # The trace alone reproduces per-channel utilization: eMBB carried
        # a cubic bulk flow, so its uplink was busy.
        assert 0.0 < summary.utilization("embb", "up") <= 1.0
        assert "artifacts" in result.render()

    def test_fig1a_without_trace_dir_has_no_artifacts(self):
        result = run_fig1a(duration=2.0, ccas=("cubic",))
        assert result.artifacts == {}

    def test_table1_cell_traces_first_realization_only(self, tmp_path):
        payload = table1_cell_unit(
            condition="stationary",
            policy="dchannel",
            page_count=2,
            page_timeout=10.0,
            trace_dir=str(tmp_path),
        )
        assert len(payload["plts"]) == 2
        _count, errors = validate_file(payload["trace"])
        assert errors == []
        # Only the first realization is traced: exactly one file.
        assert len(list(tmp_path.iterdir())) == 1
