"""Tests for the CLI entry point."""

import pytest

from repro.cli import main


class TestCli:
    def test_runs_quick_fig1a(self, capsys):
        assert main(["fig1a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out
        assert "cubic" in out

    def test_duration_override(self, capsys):
        assert main(["fig1b", "--duration", "5"]) == 0
        assert "fig1b" in capsys.readouterr().out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_table1_pages_flag(self, capsys):
        assert main(["table1", "--pages", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Stati." in out or "Stat" in out
