"""Tests for the CLI entry point."""

import pytest

from repro.cli import main


class TestCli:
    def test_runs_quick_fig1a(self, capsys):
        assert main(["fig1a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out
        assert "cubic" in out

    def test_duration_override(self, capsys):
        assert main(["fig1b", "--duration", "5"]) == 0
        assert "fig1b" in capsys.readouterr().out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_table1_pages_flag(self, capsys):
        assert main(["table1", "--pages", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Stati." in out or "Stat" in out

    def test_jobs_flag_matches_serial_output(self, capsys, tmp_path):
        args = ["fig1b", "--duration", "2", "--cache-dir", str(tmp_path)]
        assert main(args + ["--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2", "--no-cache"]) == 0
        fanned = capsys.readouterr().out
        assert fanned == serial

    def test_cache_dir_flag_populates_and_reuses_cache(self, capsys, tmp_path):
        args = ["fig1b", "--duration", "2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "executed=1" in cold and "cache_hits=0" in cold
        assert any(tmp_path.rglob("*.pkl"))
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "cache_hits=1" in warm and "executed=0" in warm
        # the experiment output itself is identical either way
        assert cold.split("[runner]")[0] == warm.split("[runner]")[0]

    def test_no_cache_flag_disables_caching(self, capsys, tmp_path):
        args = [
            "fig1b", "--duration", "2",
            "--cache-dir", str(tmp_path), "--no-cache",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "[runner]" not in out
        assert not any(tmp_path.rglob("*.pkl"))

    def test_rejects_zero_jobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1b", "--jobs", "0"])
        assert "--jobs must be >= 1" in capsys.readouterr().err
