"""Runner resilience tests: crashes, hangs, retries, checkpoint/resume.

The acceptance bar from the robustness design: a sweep containing one
crashing, one hanging, and one flaky-then-ok unit still returns a
per-unit :class:`~repro.runner.UnitOutcome` for every unit, and a rerun
against the same cache resumes from the checkpoint — only the units that
never completed execute again. Every failure here is produced by a real
worker process running a real probe unit, not by a mock.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import RunnerError
from repro.runner import ParallelRunner, ResultCache, RunUnit

PROBE_FN = "repro.runner.units:probe_unit"
ERROR_FN = "repro.runner.units:error_unit"
CRASH_FN = "repro.runner.units:crash_unit"
SLEEP_FN = "repro.runner.units:sleep_unit"
FLAKY_FN = "repro.runner.units:flaky_unit"


def probe(seed: int = 0) -> RunUnit:
    return RunUnit.make("probe", PROBE_FN, seed=seed, value=float(seed))


def interrupt_unit(marker: str, seed: int = 0) -> dict:
    """First call raises KeyboardInterrupt (the user hit Ctrl-C mid-batch);
    later calls succeed. Inline-only: resolved via the test module itself."""
    from pathlib import Path

    path = Path(marker)
    if not path.exists():
        path.write_text("interrupted")
        raise KeyboardInterrupt
    return {"resumed": 1, "seed": seed}


class TestOutcomeBasics:
    def test_error_unit_records_traceback_siblings_unaffected(self):
        runner = ParallelRunner(jobs=1)
        units = [probe(1), RunUnit.make("probe", ERROR_FN), probe(2)]
        outcomes = runner.run_outcomes(units)
        assert [o.status for o in outcomes] == ["ok", "error", "ok"]
        assert outcomes[0].value == {"value": 3.0, "events": 1}
        assert "ValueError" in outcomes[1].error
        assert "probe failure" in outcomes[1].error
        with pytest.raises(RunnerError):
            outcomes[1].raise_if_failed()
        outcomes[0].raise_if_failed()  # no-op on ok

    def test_flaky_unit_succeeds_within_retry_budget(self, tmp_path):
        unit = RunUnit.make(
            "probe", FLAKY_FN, marker=str(tmp_path / "flaky"), fail_times=1
        )
        runner = ParallelRunner(jobs=1, retries=2)
        (outcome,) = runner.run_outcomes([unit])
        assert outcome.ok
        assert outcome.attempts == 2
        assert runner.retried == 1

    def test_flaky_unit_exhausts_retry_budget(self, tmp_path):
        unit = RunUnit.make(
            "probe", FLAKY_FN, marker=str(tmp_path / "flaky"), fail_times=5
        )
        runner = ParallelRunner(jobs=1)
        (outcome,) = runner.run_outcomes([unit], retries=1)
        assert outcome.status == "error"
        assert outcome.attempts == 2
        assert "flaky failure" in outcome.error


class TestTimeouts:
    def test_hung_unit_times_out_and_pool_is_killed(self):
        unit = RunUnit.make("probe", SLEEP_FN, duration=30.0)
        runner = ParallelRunner(jobs=1)
        start = time.monotonic()
        (outcome,) = runner.run_outcomes([unit], timeout=1.0)
        elapsed = time.monotonic() - start
        assert outcome.status == "timeout"
        assert "1s" in outcome.error
        assert runner.unit_timeouts == 1
        assert elapsed < 15.0  # killed, not slept through

    def test_sibling_of_timed_out_unit_still_completes(self):
        units = [
            RunUnit.make("probe", SLEEP_FN, duration=30.0),
            probe(3),
            probe(4),
        ]
        runner = ParallelRunner(jobs=2)
        outcomes = runner.run_outcomes(units, timeout=2.0)
        assert outcomes[0].status == "timeout"
        assert outcomes[1].ok and outcomes[2].ok


class TestWorkerDeath:
    def test_crash_unit_is_attributed_and_siblings_rerun(self):
        units = [probe(1), RunUnit.make("probe", CRASH_FN), probe(2)]
        runner = ParallelRunner(jobs=2)
        outcomes = runner.run_outcomes(units)
        assert outcomes[0].ok and outcomes[2].ok
        assert outcomes[1].status == "error"
        assert "worker process died" in outcomes[1].error
        assert runner.pool_respawns >= 1

    def test_repeated_crashes_exhaust_respawn_budget(self):
        units = [RunUnit.make("probe", CRASH_FN, seed=s) for s in range(3)]
        runner = ParallelRunner(jobs=2, max_pool_respawns=1)
        outcomes = runner.run_outcomes(units)
        assert all(o.status == "error" for o in outcomes)


class TestStrictCancellation:
    def test_first_failure_cancels_pending_units(self):
        units = [
            RunUnit.make("probe", ERROR_FN),
            RunUnit.make("probe", SLEEP_FN, duration=6.0),
            RunUnit.make("probe", SLEEP_FN, duration=6.0),
        ]
        runner = ParallelRunner(jobs=2)
        start = time.monotonic()
        with pytest.raises(RunnerError):
            runner.run(units)
        # The pending sleep was cancelled and the batch abandoned without
        # waiting out the in-flight one.
        assert time.monotonic() - start < 4.0


class TestCheckpointResume:
    def test_keyboard_interrupt_leaves_cache_consistent(self, tmp_path):
        marker = str(tmp_path / "interrupt")
        units = [
            probe(1),
            RunUnit.make(
                "probe", "tests.test_runner_failures:interrupt_unit", marker=marker
            ),
            probe(2),
        ]
        cache = ResultCache(tmp_path / "cache")
        first = ParallelRunner(jobs=1, cache=cache)
        with pytest.raises(KeyboardInterrupt):
            first.run_outcomes(units)
        # probe(1) finished before the interrupt and was checkpointed.
        assert first.executed == 1

        second = ParallelRunner(jobs=1, cache=cache)
        outcomes = second.run_outcomes(units)
        assert all(o.ok for o in outcomes)
        assert [o.cached for o in outcomes] == [True, False, False]
        assert second.cache_hits == 1 and second.executed == 2

    def test_corrupt_cache_blob_is_quarantined_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = probe(9)
        path = cache.put(unit, {"value": 42.0})
        path.write_bytes(b"garbage, not a cache blob")
        hit, value = cache.get(unit)
        assert not hit and value is None
        assert cache.corrupt == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").read_bytes().startswith(b"garbage")
        # The slot is free again: a recompute stores and reads back cleanly.
        runner = ParallelRunner(jobs=1, cache=cache)
        (outcome,) = runner.run_outcomes([unit])
        assert outcome.ok and not outcome.cached
        hit, value = cache.get(unit)
        assert hit and value == outcome.value

    def test_mixed_sweep_outcomes_and_resume(self, tmp_path):
        """The acceptance sweep: crash + hang + flaky + healthy units."""
        units = [
            probe(1),
            RunUnit.make("probe", CRASH_FN),
            RunUnit.make("probe", SLEEP_FN, duration=30.0),
            RunUnit.make(
                "probe", FLAKY_FN, marker=str(tmp_path / "flaky"), fail_times=1
            ),
            probe(2),
        ]
        cache = ResultCache(tmp_path / "cache")
        first = ParallelRunner(jobs=2, cache=cache, retries=1)
        outcomes = first.run_outcomes(units, timeout=3.0)
        assert [o.status for o in outcomes] == [
            "ok", "error", "timeout", "ok", "ok",
        ]
        assert first.unit_timeouts >= 1

        # Resume: completed units come from the checkpoint, only the crash
        # and the hang execute again.
        second = ParallelRunner(jobs=2, cache=cache, retries=1)
        resumed = second.run_outcomes(units, timeout=2.0)
        assert [o.cached for o in resumed] == [True, False, False, True, True]
        assert second.cache_hits == 3
        assert resumed[1].status == "error"
        assert resumed[2].status == "timeout"
