"""Fairness and coexistence tests for the transport."""

import pytest

from repro.apps.bulk import BulkTransfer
from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec
from repro.units import mbps, to_mbps


class TestFairness:
    def shares(self, cc_a, cc_b, duration=20.0):
        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(40))], steering="single")
        a = BulkTransfer(net, cc=cc_a)
        b = BulkTransfer(net, cc=cc_b)
        net.run(until=duration)
        return (
            to_mbps(a.mean_throughput_bps(start=duration / 2, end=duration)),
            to_mbps(b.mean_throughput_bps(start=duration / 2, end=duration)),
        )

    def test_two_cubic_flows_share_fairly(self):
        # CUBIC's fast-convergence equalizes slowly under synchronized
        # drop-tail losses; judge the last 10 s of a 50 s run.
        a, b = self.shares("cubic", "cubic", duration=50.0)
        assert a + b > 30  # the pair still fills most of the 40 Mbps pipe
        assert max(a, b) < 2.5 * min(a, b)

    def test_two_bbr_flows_share_fairly(self):
        a, b = self.shares("bbr", "bbr")
        assert a + b > 25
        assert max(a, b) < 3 * min(a, b)

    def test_late_joiner_gets_a_share(self):
        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(40))], steering="single")
        first = BulkTransfer(net, cc="cubic")
        net.run(until=5.0)
        second = BulkTransfer(net, cc="cubic")
        net.run(until=25.0)
        second_share = to_mbps(second.mean_throughput_bps(start=15.0, end=25.0))
        assert second_share > 5  # not starved by the incumbent
