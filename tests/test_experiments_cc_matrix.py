"""cc-matrix experiment tests: metrics, golden shapes, warm-cache replay.

The golden-shape class pins the experiment's headline claim at reduced
scale (duration 2.5 s, seed 0): on the WAN preset BBRv2+ coexists with
CUBIC measurably better than BBRv1 does, under both steering policies.
Margins were calibrated against the seeded run; the simulator is
deterministic, so these are exact-repeatability pins, not noise windows.
"""

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments.cc_matrix import (
    POLICIES,
    PRESETS,
    QUICK_CCAS,
    jain_index,
    matrix_cells,
    pair_unit,
    preset_specs,
    rtt_unfairness,
    run_cc_matrix,
)
from repro.runner import ParallelRunner, ResultCache


class TestMetrics:
    def test_jain_index_bounds(self):
        assert jain_index((10.0, 10.0)) == pytest.approx(1.0)
        assert jain_index((10.0, 0.0)) == pytest.approx(0.5)
        assert jain_index((5.0,)) == pytest.approx(1.0)
        assert jain_index((0.0, 0.0)) == pytest.approx(1.0)  # vacuously fair
        assert 0.5 < jain_index((10.0, 5.0)) < 1.0

    def test_rtt_unfairness(self):
        assert rtt_unfairness(50.0, 25.0) == pytest.approx(2.0)
        assert rtt_unfairness(25.0, 50.0) == pytest.approx(2.0)
        assert rtt_unfairness(None, 50.0) is None
        assert rtt_unfairness(50.0, None) is None
        assert rtt_unfairness(0.0, 50.0) is None


class TestCells:
    def test_full_matrix_dimensions(self):
        cells = matrix_cells()
        # 6 CCAs -> 21 unordered pairs, x 3 presets x 2 policies.
        assert len(cells) == 21 * len(PRESETS) * len(POLICIES)

    def test_quick_matrix_dimensions(self):
        cells = matrix_cells(ccas=QUICK_CCAS)
        assert len(cells) == 6 * len(PRESETS) * len(POLICIES)

    def test_pairs_are_unordered(self):
        cells = matrix_cells(ccas=("a", "b"), presets=("paper",), policies=("dchannel",))
        pairs = {(a, b) for _, _, a, b in cells}
        assert pairs == {("a", "a"), ("a", "b"), ("b", "b")}

    def test_unknown_preset_rejected(self):
        with pytest.raises(ExperimentError):
            preset_specs("dialup")


class TestPairUnit:
    def test_paper_preset_smoke(self):
        payload = pair_unit(
            cc_a="cubic", cc_b="bbr", preset="paper", steering="dchannel",
            duration=1.5, seed=0,
        )
        assert payload["mbps_a"] > 0 and payload["mbps_b"] > 0
        assert payload["rtt_a_ms"] > 0 and payload["rtt_b_ms"] > 0
        assert payload["events"] > 0


@pytest.fixture(scope="module")
def wan_jains():
    """Jain index per (policy, versus-cubic CCA) on the WAN preset."""
    out = {}
    for policy in POLICIES:
        for cc in ("bbr", "bbr2+"):
            payload = pair_unit(
                cc_a=cc, cc_b="cubic", preset="wan", steering=policy,
                duration=2.5, seed=0,
            )
            out[(policy, cc)] = jain_index(
                (payload["mbps_a"], payload["mbps_b"])
            )
    return out


class TestGoldenShapes:
    """WAN preset: v2+'s loss-capped, delay-aware probing shares with
    CUBIC where v1's loss-blind PROBE_BW does not."""

    def test_v2_plus_fairer_than_v1_under_min_rtt(self, wan_jains):
        assert wan_jains[("min-rtt", "bbr2+")] > wan_jains[("min-rtt", "bbr")] + 0.1, wan_jains

    def test_v2_plus_fairer_than_v1_under_dchannel(self, wan_jains):
        assert wan_jains[("dchannel", "bbr2+")] > wan_jains[("dchannel", "bbr")], wan_jains

    def test_v2_plus_reaches_working_fairness(self, wan_jains):
        # v1 vs cubic collapses toward one-hog territory on min-rtt;
        # v2+ stays in the sharing regime.
        assert wan_jains[("min-rtt", "bbr2+")] > 0.75, wan_jains
        assert wan_jains[("min-rtt", "bbr")] < 0.75, wan_jains


class TestAggregation:
    def test_result_values_and_notes(self, tmp_path):
        runner = ParallelRunner(cache=ResultCache(tmp_path))
        result = run_cc_matrix(
            duration=1.0, ccas=("cubic", "bbr", "bbr2+"),
            presets=("paper",), policies=("dchannel",),
            seed=0, runner=runner,
        )
        assert result.values["paper/dchannel/cubic|bbr/jain"] > 0
        assert "paper/dchannel/mean_jain" in result.values
        share = result.values["paper/dchannel/cubic|bbr/share_a"]
        assert 0.0 <= share <= 1.0
        # The v1-vs-v2 headline note is emitted when both CCAs are present.
        assert any("bbr2+ vs cubic" in note for note in result.notes)

    def test_warm_cache_replay_is_byte_identical(self, tmp_path):
        kwargs = dict(
            duration=1.0, ccas=("cubic", "bbr2+"),
            presets=("paper",), policies=("dchannel",), seed=0,
        )
        cold_runner = ParallelRunner(cache=ResultCache(tmp_path))
        cold = run_cc_matrix(runner=cold_runner, **kwargs)
        assert cold_runner.executed == 3 and cold_runner.cache_hits == 0
        warm_runner = ParallelRunner(cache=ResultCache(tmp_path))
        warm = run_cc_matrix(runner=warm_runner, **kwargs)
        assert warm_runner.executed == 0 and warm_runner.cache_hits == 3
        assert warm.render() == cold.render()
        assert warm.values == cold.values


class TestCli:
    def test_quick_flag_restricts_to_headline_ccas(self, capsys, tmp_path):
        assert main([
            "cc-matrix", "--quick", "--duration", "0.5",
            "--cache-dir", str(tmp_path), "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "cc-matrix" in out
        assert "bbr2+ vs cubic" in out
        # QUICK_CCAS wiring: the slow tail of the full matrix is skipped.
        assert "reno" not in out and "vegas" not in out
