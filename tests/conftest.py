"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.net.channel import Channel, ChannelSpec
from repro.net.node import Device
from repro.net.packet import Packet, PacketType
from repro.sim.kernel import Simulator
from repro.units import mbps, ms


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the runner's result cache at a per-test directory.

    Keeps tests from reading (or polluting) the developer's real
    ``~/.cache/repro`` — stale cached payloads there could mask
    regressions in the experiment code under test.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def make_channel(sim, rate_bps=mbps(10), one_way_delay=ms(10), index=0, name="ch", **kwargs):
    """A symmetric fixed-rate channel for plumbing tests."""
    spec = ChannelSpec.symmetric(name, rate_bps, one_way_delay, **kwargs)
    return Channel(sim, spec, index=index)


def make_pair(sim, specs):
    """Two devices connected by channels built from ``specs``."""
    channels = [Channel(sim, spec, index=i) for i, spec in enumerate(specs)]
    client = Device(sim, "client")
    server = Device(sim, "server")
    client.attach(channels, end=0)
    server.attach(channels, end=1)
    return client, server, channels


def data_packet(flow_id=1, payload=1000, **kwargs):
    return Packet(flow_id=flow_id, ptype=PacketType.DATA, payload_bytes=payload, **kwargs)


def ack_packet(flow_id=1, **kwargs):
    return Packet(flow_id=flow_id, ptype=PacketType.ACK, payload_bytes=0, **kwargs)
