"""Unit tests for queue disciplines and loss models."""

import random

import pytest

from repro.net.loss import BernoulliLoss, GilbertElliottLoss, NoLoss
from repro.net.packet import Packet, PacketType
from repro.net.queue import DropTailQueue, PriorityDropTailQueue


def pkt(payload=960, ptype=PacketType.DATA):
    return Packet(flow_id=1, ptype=ptype, payload_bytes=payload)


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(10_000)
        first, second = pkt(), pkt()
        queue.try_enqueue(first)
        queue.try_enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_overflow_dropped(self):
        queue = DropTailQueue(1500)
        assert queue.try_enqueue(pkt(960))  # 1000 B on the wire
        assert not queue.try_enqueue(pkt(960))
        assert queue.stats.dropped == 1
        assert queue.backlog_bytes == 1000

    def test_backlog_tracks_bytes(self):
        queue = DropTailQueue(10_000)
        queue.try_enqueue(pkt(960))
        queue.try_enqueue(pkt(460))
        assert queue.backlog_bytes == 1000 + 500
        queue.dequeue()
        assert queue.backlog_bytes == 500

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue(100).dequeue() is None

    def test_peek_does_not_remove(self):
        queue = DropTailQueue(10_000)
        packet = pkt()
        queue.try_enqueue(packet)
        assert queue.peek() is packet
        assert len(queue) == 1

    def test_max_backlog_recorded(self):
        queue = DropTailQueue(10_000)
        queue.try_enqueue(pkt(960))
        queue.try_enqueue(pkt(960))
        queue.dequeue()
        assert queue.stats.max_backlog_bytes == 2000

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestPriorityDropTailQueue:
    def test_control_jumps_ahead_of_data(self):
        queue = PriorityDropTailQueue(10_000)
        data = pkt()
        ack = pkt(payload=0, ptype=PacketType.ACK)
        queue.try_enqueue(data)
        queue.try_enqueue(ack)
        assert queue.dequeue() is ack
        assert queue.dequeue() is data

    def test_shared_byte_bound(self):
        queue = PriorityDropTailQueue(1000)
        assert queue.try_enqueue(pkt(960))
        assert not queue.try_enqueue(pkt(payload=0, ptype=PacketType.ACK))

    def test_len_counts_both_bands(self):
        queue = PriorityDropTailQueue(10_000)
        queue.try_enqueue(pkt())
        queue.try_enqueue(pkt(payload=0, ptype=PacketType.ACK))
        assert len(queue) == 2


class TestLossModels:
    def test_no_loss_never_drops(self):
        model = NoLoss()
        rng = random.Random(1)
        assert not any(model.should_drop(rng, 0.0) for _ in range(1000))
        assert model.long_run_rate == 0.0

    def test_bernoulli_matches_probability(self):
        model = BernoulliLoss(0.2)
        rng = random.Random(7)
        drops = sum(model.should_drop(rng, 0.0) for _ in range(20_000))
        assert 0.18 < drops / 20_000 < 0.22
        assert model.long_run_rate == 0.2

    def test_bernoulli_validates_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.0)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)

    def test_gilbert_elliott_long_run_rate(self):
        model = GilbertElliottLoss(0.05, 0.2, good_loss=0.0, bad_loss=0.5)
        rng = random.Random(3)
        n = 100_000
        drops = sum(model.should_drop(rng, 0.0) for _ in range(n))
        expected = model.long_run_rate
        assert expected == pytest.approx(0.05 / 0.25 * 0.5)
        assert abs(drops / n - expected) < 0.02

    def test_gilbert_elliott_is_bursty(self):
        """Losses cluster: consecutive-loss probability beats independence."""
        model = GilbertElliottLoss(0.01, 0.1, good_loss=0.0, bad_loss=0.8)
        rng = random.Random(5)
        outcomes = [model.should_drop(rng, 0.0) for _ in range(50_000)]
        rate = sum(outcomes) / len(outcomes)
        pairs = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
        pair_rate = pairs / (len(outcomes) - 1)
        assert pair_rate > 2 * rate * rate

    def test_gilbert_elliott_rejects_absorbing_bad_state(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.1, 0.0)

    def test_gilbert_elliott_validates_ranges(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=1.5)
