"""Unit tests for the trace substrate."""

import pytest

from repro.errors import TraceError
from repro.traces.mahimahi import read_mahimahi, write_mahimahi
from repro.traces.model import NetworkTrace, constant_trace
from repro.traces.catalog import get_trace, list_traces
from repro.traces.synthetic import (
    TraceSpec,
    generate_trace,
    lowband_driving,
    lowband_stationary,
    mmwave_driving,
    starlink_leo,
    wifi_5g_handoff,
)
from repro.units import mbps, ms, to_ms


class TestNetworkTrace:
    def test_step_lookup(self):
        trace = NetworkTrace([0.0, 1.0, 2.0], [1e6, 2e6, 3e6], [0.01, 0.02, 0.03])
        assert trace.rate_at(0.5) == 1e6
        assert trace.rate_at(1.0) == 2e6
        assert trace.delay_at(2.9) == 0.03

    def test_wraps_around(self):
        trace = NetworkTrace([0.0, 1.0], [1e6, 2e6], [0.01, 0.02])
        assert trace.duration == 2.0
        assert trace.rate_at(2.5) == 1e6
        assert trace.rate_at(3.5) == 2e6

    def test_constant_trace(self):
        trace = constant_trace(mbps(2), ms(2.5))
        assert trace.rate_at(0) == mbps(2)
        assert trace.rate_at(1234.5) == mbps(2)
        assert trace.delay_at(99.9) == ms(2.5)

    def test_mean_rate_is_time_weighted(self):
        trace = NetworkTrace([0.0, 1.0], [1e6, 3e6], [0.01, 0.01])
        assert trace.mean_rate() == pytest.approx(2e6)

    def test_percentile_delay(self):
        trace = NetworkTrace(
            [float(i) for i in range(5)], [1e6] * 5, [0.01, 0.02, 0.03, 0.04, 0.05]
        )
        assert trace.percentile_delay(0) == 0.01
        assert trace.percentile_delay(100) == 0.05
        assert trace.percentile_delay(50) == pytest.approx(0.03)

    def test_scaled(self):
        trace = constant_trace(1e6, 0.01).scaled(rate_factor=2, delay_factor=0.5)
        assert trace.rate_at(0) == 2e6
        assert trace.delay_at(0) == 0.005

    def test_validation(self):
        with pytest.raises(TraceError):
            NetworkTrace([], [], [])
        with pytest.raises(TraceError):
            NetworkTrace([0.5], [1e6], [0.01])  # must start at 0
        with pytest.raises(TraceError):
            NetworkTrace([0.0, 0.0], [1e6, 1e6], [0.01, 0.01])  # not increasing
        with pytest.raises(TraceError):
            NetworkTrace([0.0], [-1.0], [0.01])
        with pytest.raises(TraceError):
            NetworkTrace([0.0], [1e6], [-0.01])
        with pytest.raises(TraceError):
            NetworkTrace([0.0, 1.0], [1e6], [0.01, 0.01])

    def test_negative_query_rejected(self):
        trace = constant_trace(1e6, 0.01)
        with pytest.raises(TraceError):
            trace.rate_at(-1)


class TestSyntheticCalibration:
    """The generated traces must land near the published statistics."""

    def test_lowband_stationary_rate_and_rtt(self):
        trace = lowband_stationary(seed=1)
        assert 50 <= trace.mean_rate() / 1e6 <= 70
        median_rtt_ms = to_ms(trace.percentile_delay(50)) * 2
        assert 40 <= median_rtt_ms <= 62

    def test_lowband_driving_p98_rtt_near_236ms(self):
        """DChannel reports 98th-pct probing RTT of 236 ms under driving."""
        trace = lowband_driving(seed=2)
        p98_rtt_ms = to_ms(trace.percentile_delay(98)) * 2
        assert 170 <= p98_rtt_ms <= 300

    def test_driving_is_more_variable_than_stationary(self):
        stationary = lowband_stationary(seed=1)
        driving = lowband_driving(seed=2)
        assert driving.percentile_delay(98) > 2 * stationary.percentile_delay(98)
        assert driving.min_rate() < stationary.min_rate()

    def test_mmwave_driving_has_outages_below_video_bitrate(self):
        """Fig. 2 needs blockage periods where rate < 12 Mbps."""
        trace = mmwave_driving(seed=2)
        below = sum(1 for r in trace.rates_bps if r < mbps(12))
        assert below > len(trace.rates_bps) * 0.03
        assert trace.mean_rate() > mbps(200)

    def test_determinism(self):
        a = lowband_driving(seed=9)
        b = lowband_driving(seed=9)
        assert a.rates_bps == b.rates_bps
        assert a.delays == b.delays

    def test_seeds_give_different_realizations(self):
        assert lowband_driving(seed=1).rates_bps != lowband_driving(seed=2).rates_bps

    def test_spec_validation(self):
        with pytest.raises(TraceError):
            generate_trace(TraceSpec(name="bad", duration=0))
        with pytest.raises(TraceError):
            generate_trace(TraceSpec(name="bad", mean_rate_bps=0))
        with pytest.raises(TraceError):
            generate_trace(TraceSpec(name="bad", smoothing=1.0))
        with pytest.raises(TraceError):
            generate_trace(TraceSpec(name="bad", dt=200.0))


class TestDisruptionPresets:
    """The handoff-driven presets must actually contain dead intervals."""

    def test_starlink_periodic_handoffs_are_dead(self):
        trace = starlink_leo(duration=60.0)
        from repro.resilience import dead_intervals

        dead = dead_intervals(trace)
        # One micro-outage per 15 s handoff period, first at t=4.
        assert 3 <= len(dead) <= 5
        assert dead[0].start == pytest.approx(4.0)
        for interval in dead:
            assert 0.05 <= interval.duration <= 1.3
        assert trace.mean_rate() > mbps(80)

    def test_starlink_determinism_and_param_validation(self):
        a = starlink_leo(seed=7, duration=40.0)
        b = starlink_leo(seed=7, duration=40.0)
        assert a.rates_bps == b.rates_bps and a.delays == b.delays
        with pytest.raises(TraceError):
            starlink_leo(duration=0)
        with pytest.raises(TraceError):
            starlink_leo(handoff_period=-1.0)

    def test_wifi_5g_alternates_rate_regimes_with_gaps(self):
        trace = wifi_5g_handoff(duration=60.0)
        rates = trace.rates_bps
        assert 0.0 in rates  # dead switching gaps
        # Bimodal: fat Wi-Fi samples and thin 5G samples both present.
        assert any(r > mbps(180) for r in rates)
        assert any(0 < r < mbps(110) for r in rates)
        # Post-handoff delay spikes exist: some samples well above 5G floor.
        assert max(trace.delays) > ms(40)
        with pytest.raises(TraceError):
            wifi_5g_handoff(dwell_mean=0)


class TestCatalog:
    def test_catalog_names(self):
        names = list_traces()
        assert "5g-lowband-driving" in names
        assert "urllc" in names
        assert "starlink-leo" in names
        assert "wifi-5g-handoff" in names

    def test_get_trace_by_name(self):
        trace = get_trace("urllc")
        assert trace.rate_at(0) == mbps(2)
        assert trace.delay_at(0) == ms(2.5)

    def test_unknown_name_raises(self):
        with pytest.raises(TraceError):
            get_trace("4g-magic")

    def test_seed_passthrough(self):
        assert get_trace("5g-lowband-driving", seed=5).rates_bps != get_trace(
            "5g-lowband-driving", seed=6
        ).rates_bps

    def test_disruption_presets_resolve_with_duration(self):
        trace = get_trace("starlink-leo", duration=30.0)
        assert trace.duration == pytest.approx(30.0)
        assert get_trace("wifi-5g-handoff", duration=20.0).duration == pytest.approx(20.0)


class TestMahimahi:
    def test_round_trip_preserves_mean_rate(self, tmp_path):
        trace = constant_trace(mbps(12), ms(25))
        path = tmp_path / "trace.txt"
        count = write_mahimahi(trace, str(path), duration=5.0)
        assert count == pytest.approx(5.0 * mbps(12) / (1500 * 8), rel=0.01)
        loaded = read_mahimahi(str(path), delay=ms(25))
        assert loaded.mean_rate() == pytest.approx(mbps(12), rel=0.05)
        assert loaded.delay_at(0) == ms(25)

    def test_read_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(TraceError):
            read_mahimahi(str(path))

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\ntwo\n3\n")
        with pytest.raises(TraceError):
            read_mahimahi(str(path))

    def test_read_rejects_unsorted(self, tmp_path):
        path = tmp_path / "unsorted.txt"
        path.write_text("5\n3\n")
        with pytest.raises(TraceError):
            read_mahimahi(str(path))

    def test_read_variable_rate(self, tmp_path):
        path = tmp_path / "var.txt"
        # 10 opportunities in the first 100 ms, none in the second bucket.
        path.write_text("\n".join(str(i * 10) for i in range(10)) + "\n150\n")
        trace = read_mahimahi(str(path), bucket=0.1)
        assert trace.rate_at(0.05) > trace.rate_at(0.15) > 0
