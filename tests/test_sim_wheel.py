"""The timer-wheel queue must be bit-for-bit interchangeable with the heap.

:class:`repro.sim.events.EventQueue` (wheel + overflow) and
:class:`repro.sim.events.HeapEventQueue` (the classic single heap it
replaced) are driven through identical randomized workloads — schedules
at arbitrary times (same-instant collisions and far-beyond-horizon
overflow included), cancels, reschedules, interleaved pops — and must
dispatch exactly the same events in exactly the same order.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.events import COMPACT_MIN_DEAD, EventQueue, HeapEventQueue
from repro.sim.kernel import Simulator
from repro.sim.wheel import DEFAULT_GRANULARITY, DEFAULT_HORIZON, TimerWheel


def _noop():
    return None


# One operation = (kind, payload) chosen by index into the live handles.
_ops = st.lists(
    st.one_of(
        # Schedule at a time drawn from a mix of scales: sub-granularity
        # collisions, normal near-horizon timers, and far-future overflow.
        st.tuples(
            st.just("push"),
            st.one_of(
                st.floats(min_value=0.0, max_value=0.004),
                st.floats(min_value=0.0, max_value=2.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("reschedule"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("pop"), st.just(None)),
        st.tuples(st.just("peek"), st.just(None)),
    ),
    min_size=1,
    max_size=120,
)


def _run_workload(queue, ops):
    """Apply ops; return the (time, seq) dispatch record."""
    clock = 0.0
    handles = []
    record = []
    for kind, payload in ops:
        if kind == "push":
            handles.append(queue.push(clock + payload, _noop))
        elif kind == "cancel" and handles:
            handles[payload % len(handles)].cancel()
        elif kind == "reschedule" and handles:
            old = handles[payload % len(handles)]
            if not old.cancelled:
                old.cancel()
                handles.append(queue.push(old.time + 0.5, _noop))
        elif kind == "pop":
            event = queue.pop_next(None)
            if event is not None:
                clock = event.time
                record.append((event.time, event.seq))
        elif kind == "peek":
            record.append(("peek", queue.peek_time()))
    while True:
        event = queue.pop_next(None)
        if event is None:
            break
        record.append((event.time, event.seq))
    return record


class TestWheelMatchesHeap:
    @settings(max_examples=200, deadline=None)
    @given(_ops)
    def test_identical_dispatch_order(self, ops):
        wheel_record = _run_workload(EventQueue(), ops)
        heap_record = _run_workload(HeapEventQueue(), ops)
        assert wheel_record == heap_record

    @settings(max_examples=50, deadline=None)
    @given(_ops)
    def test_identical_dispatch_order_tiny_horizon(self, ops):
        """A 10 ms horizon forces constant overflow/wheel hand-offs."""
        wheel_record = _run_workload(
            EventQueue(granularity=1e-3, horizon=10e-3), ops
        )
        heap_record = _run_workload(HeapEventQueue(), ops)
        assert wheel_record == heap_record

    def test_same_instant_fifo(self):
        queue = EventQueue()
        events = [queue.push(1.0, _noop) for _ in range(50)]
        popped = [queue.pop_next(None) for _ in range(50)]
        assert popped == events

    def test_mid_drain_insert_keeps_order(self):
        """Scheduling for 'now' while its bucket drains stays FIFO."""
        sim = Simulator()
        order = []

        def chain(n):
            order.append(n)
            if n < 5:
                sim.schedule(0.0, chain, n + 1)  # same instant, same bucket

        sim.schedule(0.0001, chain, 0)
        sim.run()
        assert order == [0, 1, 2, 3, 4, 5]


# Per-fire actions for the simulator-level equivalence suite: each
# dispatched event consumes the next action and mutates the pending set
# mid-run — schedules into the currently draining bucket, same-tick
# cancels, reschedules — exactly the reentrancy the batch loop must get
# right. Delays mix three scales: sub-granularity (same-bucket merges),
# near-horizon, and beyond-horizon (overflow interleavings).
_actions = st.lists(
    st.one_of(
        st.tuples(
            st.just("sched"),
            st.one_of(
                st.floats(min_value=0.0, max_value=0.004),
                st.floats(min_value=0.0, max_value=2.0),
                st.floats(min_value=0.0, max_value=50.0),
            ),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("resched"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("noop"), st.just(None)),
    ),
    min_size=1,
    max_size=80,
)


class _Script:
    """Replays one action list through a Simulator, recording dispatch."""

    def __init__(self, sim, actions):
        self.sim = sim
        self.actions = list(actions)
        self.cursor = 0
        self.label = 0
        self.handles = []
        self.record = []

    def seed(self):
        # Same three scales as the actions, landing in distinct buckets.
        for delay in (0.0003, 0.0009, 0.25, 7.0):
            self.spawn(delay)

    def spawn(self, delay):
        label = self.label
        self.label += 1
        self.handles.append(self.sim.schedule(delay, self.fire, label))

    def fire(self, label):
        self.record.append((round(self.sim.now, 9), label))
        if self.cursor >= len(self.actions):
            return
        kind, payload = self.actions[self.cursor]
        self.cursor += 1
        if kind == "sched":
            self.spawn(payload)
        elif kind == "cancel" and self.handles:
            self.handles[payload % len(self.handles)].cancel()
        elif kind == "resched" and self.handles:
            old = self.handles[payload % len(self.handles)]
            if not old.cancelled:
                old.cancel()
                self.spawn(0.0007)


def _dispatch_record(actions, make_sim, run):
    sim = make_sim()
    script = _Script(sim, actions)
    script.seed()
    run(sim)
    return script.record


def _heap_sim():
    sim = Simulator()
    sim._queue = HeapEventQueue()
    return sim


class TestSimulatorLoopEquivalence:
    """run() (batch), run_per_event(), and a heap-backed sim must agree."""

    @settings(max_examples=120, deadline=None)
    @given(_actions)
    def test_three_way_identical_dispatch(self, actions):
        batch = _dispatch_record(actions, Simulator, lambda s: s.run())
        per_event = _dispatch_record(
            actions, Simulator, lambda s: s.run_per_event()
        )
        heap = _dispatch_record(actions, _heap_sim, lambda s: s.run())
        assert batch == per_event == heap

    @settings(max_examples=40, deadline=None)
    @given(_actions)
    def test_batch_equivalence_tiny_horizon(self, actions):
        """Constant wheel/overflow hand-offs mid-batch."""

        def tiny():
            sim = Simulator()
            sim._queue = EventQueue(granularity=1e-3, horizon=10e-3)
            return sim

        batch = _dispatch_record(actions, tiny, lambda s: s.run())
        heap = _dispatch_record(actions, _heap_sim, lambda s: s.run())
        assert batch == heap

    @settings(max_examples=40, deadline=None)
    @given(_actions, st.floats(min_value=0.0005, max_value=3.0))
    def test_epoch_runs_match(self, actions, epoch):
        """Repeated run(until=...) epochs agree with one full drain."""

        def run_epochs(sim):
            until = epoch
            for _ in range(30):
                sim.run(until=until)
                until += epoch
            sim.run()

        chunked = _dispatch_record(actions, Simulator, run_epochs)
        whole = _dispatch_record(actions, Simulator, lambda s: s.run())
        assert chunked == whole


class TestWheelMechanics:
    def test_beyond_horizon_rejected(self):
        wheel = TimerWheel()
        tick = int((DEFAULT_HORIZON + 1.0) / DEFAULT_GRANULARITY)
        assert wheel.insert((DEFAULT_HORIZON + 1.0, 0, object()), tick) is False
        assert wheel.entry_count() == 0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            TimerWheel(granularity=0.0)
        with pytest.raises(ValueError):
            TimerWheel(granularity=1.0, horizon=0.5)

    def test_overflow_pop_advances_base(self):
        """Far-future pops move the wheel's position so the horizon tracks."""
        queue = EventQueue(granularity=1e-3, horizon=1.0)
        queue.push(50.0, _noop)
        assert queue.pop_next(None).time == 50.0
        # The wheel's base moved to ~50s: a 50.5s push is near-horizon now.
        queue.push(50.5, _noop)
        assert queue._wheel.entry_count() == 1
        assert len(queue._overflow) == 0


class TestCompaction:
    def test_cancel_heavy_queue_stays_bounded(self):
        """Pacing-style churn must not retain corpses until their deadline."""
        sim = Simulator()
        state = {"pacing": None, "rto": None, "fires": 0}

        def fire():
            state["fires"] += 1
            if state["pacing"] is not None:
                state["pacing"].cancel()
            if state["rto"] is not None:
                state["rto"].cancel()
            state["pacing"] = sim.schedule(0.002, _noop)
            state["rto"] = sim.schedule(0.25, _noop)  # cancelled 0.0001s later
            if state["fires"] < 20_000:
                sim.schedule(0.0001, fire)

        sim.schedule(0.0001, fire)
        sim.run()
        queue = sim._queue
        assert queue.compactions > 0
        # Without compaction ~2500 cancelled RTO entries would be retained
        # (0.25s deadline / 0.0001s churn); bounded means O(threshold).
        assert queue.entry_count() <= 2 * COMPACT_MIN_DEAD + 2
        assert queue.dead_events <= 2 * COMPACT_MIN_DEAD

    def test_compaction_preserves_order(self):
        rng = random.Random(7)
        queue = EventQueue()
        queue.compact_min_dead = 16  # make compaction easy to trigger
        reference = HeapEventQueue()
        live = []
        for _ in range(500):
            t = rng.random() * 8.0
            a = queue.push(t, _noop)
            b = reference.push(t, _noop)
            if rng.random() < 0.7:
                a.cancel()
                b.cancel()
            else:
                live.append((a, b))
        assert queue.compactions > 0
        got = []
        expected = []
        while True:
            x = queue.pop_next(None)
            y = reference.pop_next(None)
            assert (x is None) == (y is None)
            if x is None:
                break
            got.append((x.time, x.seq))
            expected.append((y.time, y.seq))
        assert got == expected

    def test_len_counts_live_only(self):
        queue = EventQueue()
        events = [queue.push(float(i), _noop) for i in range(10)]
        assert len(queue) == 10
        for event in events[:4]:
            event.cancel()
        assert len(queue) == 6
        assert queue.dead_events == 4
        events[0].cancel()  # idempotent: no double-count
        assert len(queue) == 6


class TestPeekReclaims:
    def test_peek_discards_and_detaches_cancelled_heads(self):
        """Satellite fix: peek must clear ``_queue`` like pop does."""
        for cls in (EventQueue, HeapEventQueue):
            queue = cls()
            dead = queue.push(1.0, _noop)
            keep = queue.push(2.0, _noop)
            dead.cancel()
            assert queue.dead_events == 1
            assert queue.peek_time() == 2.0
            # The corpse physically left the structure and was detached,
            # so cancelling it again cannot corrupt the dead count.
            assert dead._queue is None
            assert queue.dead_events == 0
            dead.cancel()
            assert queue.dead_events == 0
            assert queue.pop_next(None) is keep
