"""Unit tests for metrics and result containers."""

import pytest

from repro.core.metrics import Cdf, mean_throughput_bps, percentile, throughput_series
from repro.core.results import ExperimentResult, PaperComparison, SeriesSet, Table


class TestPercentile:
    def test_endpoints(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_single_sample(self):
        assert percentile([7.0], 95) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestCdf:
    def test_summary_stats(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0, 5.0])
        assert cdf.mean == 3.0
        assert cdf.median == 3.0
        assert cdf.min == 1.0
        assert cdf.max == 5.0
        assert len(cdf) == 5

    def test_probability_below(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_below(2.0) == 0.5
        assert cdf.probability_below(0.5) == 0.0
        assert cdf.probability_below(10.0) == 1.0

    def test_points_monotonic(self):
        cdf = Cdf(range(100))
        points = cdf.points(count=10)
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        assert values == sorted(values)
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_points_count_validation(self):
        with pytest.raises(ValueError):
            Cdf([1.0, 2.0]).points(count=1)


class TestThroughputSeries:
    def test_uniform_rate(self):
        # 1000 bytes every 0.1 s = 80 kbit/s.
        timeline = [(0.1 * (i + 1), 1000 * (i + 1)) for i in range(30)]
        series = throughput_series(timeline, interval=1.0, end_time=3.0)
        assert len(series) == 3
        # Bin 0 misses the point landing exactly on the boundary (72 kbit/s);
        # interior bins see the full 80 kbit/s.
        assert series[0][1] == pytest.approx(72_000)
        assert series[1][1] == pytest.approx(80_000)
        assert series[2][1] == pytest.approx(80_000)

    def test_idle_interval_is_zero(self):
        timeline = [(0.5, 1000), (2.5, 2000)]
        series = throughput_series(timeline, interval=1.0, end_time=3.0)
        assert series[1][1] == 0.0

    def test_empty_timeline(self):
        assert throughput_series([], interval=1.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_series([(1.0, 100)], interval=0)

    def test_mean_throughput_window(self):
        timeline = [(1.0, 1000), (2.0, 2000), (3.0, 5000)]
        assert mean_throughput_bps(timeline, start=2.0, end=3.0) == pytest.approx(
            3000 * 8
        )

    def test_mean_throughput_validation(self):
        with pytest.raises(ValueError):
            mean_throughput_bps([(1.0, 100)], start=2.0, end=2.0)


class TestTable:
    def test_render_aligns_columns(self):
        table = Table(["Traces", "eMBB-only"], title="Web PLT")
        table.add_row("Stat.", 1697.3)
        table.add_row("Drv.", 2334.3)
        text = table.render()
        assert "Web PLT" in text
        assert "1697.3" in text
        assert text.splitlines()[1].index("|") == text.splitlines()[3].index("|")

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)


class TestSeriesSetAndResult:
    def test_series_render_samples_long_series(self):
        series = SeriesSet(title="rtt", x_label="t", y_label="ms")
        series.add("bbr", [(float(i), float(i)) for i in range(1000)])
        text = series.render(max_points=5)
        bbr_line = next(line for line in text.splitlines() if "bbr" in line)
        assert bbr_line.count("(") == 5

    def test_paper_comparison_ratio(self):
        comparison = PaperComparison("PLT", paper_value=100.0, measured_value=110.0, unit="ms")
        assert comparison.ratio == pytest.approx(1.1)
        assert "1.10x" in comparison.render()

    def test_experiment_result_render(self):
        result = ExperimentResult(name="fig1a", description="CCA throughputs")
        table = Table(["cca", "mbps"])
        table.add_row("cubic", 60.0)
        result.tables.append(table)
        result.comparisons.append(PaperComparison("cubic", 60.0, 58.0, " Mbps"))
        result.notes.append("shape holds")
        text = result.render()
        assert "fig1a" in text and "cubic" in text and "shape holds" in text
