"""Edge-case tests for the reliable connection."""

import pytest

from repro.net.channel import ChannelSpec, DirectionSpec
from repro.net.loss import BernoulliLoss
from repro.net.packet import PacketType
from repro.transport.connection import Connection
from repro.units import kb, kib, mbps, ms

from tests.conftest import make_pair
from tests.test_transport_connection import make_conn_pair


class TestFatAcks:
    def test_ack_bytes_makes_acks_data_sized(self, sim):
        """ack_bytes>0 models data tacked onto ACKs (§3.2's anti-pattern)."""
        specs = [ChannelSpec.symmetric("c", mbps(20), ms(10))]
        client, server, _ = make_pair(sim, specs)
        fat_acks = []
        client.on_receive_hooks.append(
            lambda p: fat_acks.append(p.payload_bytes)
            if p.ptype == PacketType.ACK
            else None
        )
        sender = Connection(sim, client, 1, ack_bytes=0)
        receiver = Connection(sim, server, 1, ack_bytes=600)
        sender.send_message(kb(30), message_id=1)
        sim.run(until=5.0)
        assert fat_acks and all(size == 600 for size in fat_acks)

    def test_fat_acks_lose_is_control_status(self, sim):
        specs = [ChannelSpec.symmetric("c", mbps(20), ms(10))]
        client, server, _ = make_pair(sim, specs)
        flags = []
        client.on_receive_hooks.append(
            lambda p: flags.append(p.is_control) if p.ptype == PacketType.ACK else None
        )
        Connection(sim, client, 1).send_message(kb(10), message_id=1)
        Connection(sim, server, 1, ack_bytes=600)
        sim.run(until=5.0)
        assert flags and not any(flags)


class TestMessageBoundaries:
    def test_one_byte_messages(self, sim):
        receipts = []
        sender, _, _ = make_conn_pair(sim, on_message=receipts.append)
        for i in range(10):
            sender.send_message(1, message_id=i)
        sim.run(until=5.0)
        assert [r.size for r in receipts] == [1] * 10

    def test_message_exactly_mss_sized(self, sim):
        receipts = []
        sender, _, _ = make_conn_pair(sim, on_message=receipts.append)
        sender.send_message(sender.mss, message_id=1)
        sim.run(until=5.0)
        assert receipts[0].size == sender.mss
        assert sender.stats.segments_sent == 1

    def test_segments_never_straddle_messages(self, sim):
        """Every data packet belongs to exactly one message."""
        specs = [ChannelSpec.symmetric("c", mbps(20), ms(10))]
        client, server, _ = make_pair(sim, specs)
        owners = []
        server.on_receive_hooks.append(
            lambda p: owners.append((p.message_id, p.seq, p.end_seq, p.message_start))
            if p.ptype == PacketType.DATA
            else None
        )
        sender = Connection(sim, client, 1)
        Connection(sim, server, 1)
        sender.send_message(3000, message_id=100)
        sender.send_message(2000, message_id=200)
        sim.run(until=5.0)
        for message_id, seq, end_seq, start in owners:
            if message_id == 100:
                assert start == 0 and end_seq <= 3000
            else:
                assert start == 3000 and seq >= 3000

    def test_interleaved_priorities_preserved_per_message(self, sim):
        receipts = []
        sender, _, _ = make_conn_pair(sim, on_message=receipts.append)
        sender.send_message(kb(5), message_id=1, priority=2)
        sender.send_message(kb(5), message_id=2, priority=0)
        sim.run(until=5.0)
        priorities = {r.message_id: r.priority for r in receipts}
        assert priorities == {1: 2, 2: 0}


class TestLifecycle:
    def test_close_mid_transfer_stops_quietly(self, sim):
        sender, receiver, _ = make_conn_pair(sim)
        sender.send_message(kb(500), message_id=1)
        sim.run(until=0.05)
        sender.close()
        receiver.close()
        sim.run(until=10.0)  # no exceptions, no infinite retransmit loop
        assert sim.pending_events == 0

    def test_reuse_flow_id_after_close(self, sim):
        specs = [ChannelSpec.symmetric("c", mbps(20), ms(10))]
        client, server, _ = make_pair(sim, specs)
        first = Connection(sim, client, 7)
        first.close()
        second = Connection(sim, client, 7)  # no duplicate-registration error
        assert second.flow_id == 7

    def test_late_packets_after_close_ignored(self, sim):
        receipts = []
        specs = [ChannelSpec.symmetric("c", mbps(20), ms(50))]
        client, server, _ = make_pair(sim, specs)
        sender = Connection(sim, client, 1)
        receiver = Connection(sim, server, 1, on_message=receipts.append)
        sender.send_message(kb(10), message_id=1)
        sim.run(until=0.03)  # packets still in flight (one-way delay 50 ms)
        receiver.close()
        sim.run(until=5.0)
        assert receipts == []


class TestRecoveryDetails:
    def test_out_of_order_message_completion_order(self, sim):
        """Even with loss, message completion callbacks fire in order."""
        lossy = ChannelSpec(
            name="lossy",
            up=DirectionSpec(
                rate_bps=mbps(20), delay=ms(10), loss=BernoulliLoss(0.08)
            ),
            down=DirectionSpec(rate_bps=mbps(20), delay=ms(10)),
        )
        receipts = []
        sender, _, _ = make_conn_pair(sim, specs=[lossy], on_message=receipts.append)
        for i in range(8):
            sender.send_message(kb(20), message_id=i)
        sim.run(until=60.0)
        assert [r.message_id for r in receipts] == list(range(8))

    def test_stale_acks_do_not_trigger_recovery(self, sim):
        """Dual channels reorder ACKs; no spurious fast retransmits."""
        specs = [
            ChannelSpec.symmetric("embb", mbps(60), ms(25), queue_bytes=kib(2048)),
            ChannelSpec.symmetric("urllc", mbps(2), ms(2.5), queue_bytes=kib(64)),
        ]
        client, server, _ = make_pair(sim, specs)
        from repro.steering.dchannel import DChannelSteerer

        client.set_steerer(DChannelSteerer())
        server.set_steerer(DChannelSteerer())
        sender = Connection(sim, client, 1, cc="cubic")
        Connection(sim, server, 1, cc="cubic")
        sender.send_message(kb(800), message_id=1)
        sim.run(until=20.0)
        assert sender.stats.bytes_acked == kb(800)
        # Loss-free network: any retransmission would be spurious.
        assert sender.stats.retransmissions == 0

    def test_delivery_timeline_monotone(self, sim):
        sender, _, _ = make_conn_pair(sim)
        sender.send_message(kb(300), message_id=1)
        sim.run(until=10.0)
        timeline = sender.stats.delivered_timeline
        assert all(a[0] <= b[0] and a[1] <= b[1] for a, b in zip(timeline, timeline[1:]))
