"""Tests for the HTTP/1.1-style parallel-connection loader."""

import pytest

from repro.apps.web.browser import load_page
from repro.apps.web.corpus import generate_page
from repro.apps.web.h1 import H1Loader, load_page_h1
from repro.apps.web.page import WebObject, WebPage
from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.units import mbps, ms


def fast_net(steering="single"):
    return HvcNetwork(
        [fixed_embb_spec(rate_bps=mbps(60), rtt=ms(50))], steering=steering
    )


def fan_out_page(width=12):
    """One root, then ``width`` independent objects — H1's best case."""
    objects = [WebObject(0, 30_000)]
    for i in range(1, width + 1):
        objects.append(WebObject(i, 40_000, depends_on=[0]))
    return WebPage("fanout", objects)


class TestH1Loader:
    def test_load_completes(self):
        result = load_page_h1(fast_net(), fan_out_page())
        assert result.complete
        assert len(result.object_finish_times) == 13

    def test_dependencies_respected(self):
        result = load_page_h1(fast_net(), fan_out_page())
        times = result.object_finish_times
        assert all(times[0] < times[i] for i in range(1, 13))

    def test_parallelism_bounded_by_connection_count(self):
        """With 1 connection the fan-out serializes; with 6 it overlaps."""
        serial = load_page_h1(fast_net(), fan_out_page(), max_connections=1).plt
        parallel = load_page_h1(fast_net(), fan_out_page(), max_connections=6).plt
        assert parallel < serial * 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            H1Loader(fast_net(), fan_out_page(), max_connections=0)

    def test_h1_vs_h2_same_page_both_complete(self):
        page = generate_page("compare", seed=5)
        h2 = load_page(fast_net(), page)
        h1 = load_page_h1(fast_net(), page)
        assert h2.complete and h1.complete
        # Both land in a sane band; neither pathologically slow.
        assert h1.plt < 5.0 and h2.plt < 5.0

    def test_h1_over_hvcs_with_steering(self):
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        result = load_page_h1(net, fan_out_page())
        assert result.complete
        # Request/handshake traffic reached URLLC.
        assert net.channel_named("urllc").uplink.stats.delivered > 0
