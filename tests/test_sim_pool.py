"""Event-pool recycling: transient events are reused, regular ones never.

The recycle contract (``docs/PERFORMANCE.md``): only events scheduled via
``schedule_transient``/``schedule_at_transient`` return to the pool, and
only after their callback ran. ``cancel()`` demotes a transient to a
regular event (the caller proved it kept a handle), so cancelled corpses
are shed but never recycled. Pooled events must not pin callbacks or
packets, and the free list is bounded.
"""

from repro.sim.events import EventQueue
from repro.sim.kernel import Simulator
from repro.sim.pool import EventPool


def _noop():
    return None


class TestPoolRecycling:
    def test_transient_events_are_reused(self):
        sim = Simulator()
        state = {"fires": 0}

        def fire():
            state["fires"] += 1
            if state["fires"] < 1000:
                sim.schedule_transient(0.001, fire)

        sim.schedule_transient(0.001, fire)
        sim.run()
        pool = sim._queue.pool
        assert state["fires"] == 1000
        # Steady-state churn runs on recycled objects: ~1 allocation.
        assert pool.created <= 2
        assert pool.reused >= 998

    def test_regular_events_never_pooled(self):
        sim = Simulator()
        for _ in range(100):
            sim.schedule(0.001, _noop)
        sim.run()
        pool = sim._queue.pool
        assert pool.released == 0
        assert len(pool) == 0

    def test_pooled_event_releases_references(self):
        """A recycled event must not pin its callback or arguments."""
        sim = Simulator()
        payload = object()
        sim.schedule_transient(0.001, lambda _p: None, payload)
        sim.run()
        free = sim._queue.pool._free
        assert len(free) == 1
        recycled = free[0]
        assert recycled.callback is None
        assert recycled.args == ()
        assert recycled._queue is None

    def test_free_list_is_bounded(self):
        pool = EventPool(max_free=4)
        queue = EventQueue(pool=pool)
        events = [
            queue.push(float(i), _noop, (), True) for i in range(10)
        ]
        for event in events:
            queue.pop_next(None)
            pool.release(event)
        assert len(pool) == 4
        assert pool.released == 4

    def test_cancelled_transient_never_pooled(self):
        """cancel() demotes a transient: the handle must stay unaliased.

        The caller proved it kept the handle by cancelling, so recycling
        the object would alias that handle onto a future unrelated event.
        The corpse is shed from the queue but NOT returned to the pool.
        """
        sim = Simulator()
        doomed = sim.schedule_transient(0.001, _noop)
        sim.schedule(0.002, _noop)
        doomed.cancel()
        assert doomed.transient is False
        sim.run()
        pool = sim._queue.pool
        assert pool.released == 0
        assert doomed not in pool._free
        # The handle still describes the event the caller cancelled.
        assert doomed.cancelled is True
        assert doomed.callback is _noop

    def test_cancel_transient_mid_batch_does_not_alias(self):
        """Regression: cancelling a transient from within the same dispatch
        batch (same wheel bucket) must neither fire it nor recycle it.

        Pre-fix, the batch loop pooled the cancelled corpse inline, so the
        next transient push returned the *same object* as the retained
        handle — cancel() on the handle would then kill the new event.
        """
        sim = Simulator()
        fired = []
        handles = {}

        def canceller():
            handles["doomed"].cancel()

        # Same 1ms wheel bucket: canceller dispatches first (earlier seq),
        # then the loop walks over the now-cancelled transient corpse.
        sim.schedule(0.0005, canceller)
        handles["doomed"] = sim.schedule_transient(0.0006, fired.append, "doomed")
        sim.schedule(0.0007, fired.append, "survivor")
        sim.run(until=0.001)
        assert fired == ["survivor"]
        assert sim._queue.pool.released == 0
        # A fresh transient must be a distinct object from the handle.
        fresh = sim.schedule_transient(0.001, _noop)
        assert fresh is not handles["doomed"]
        # Cancelling the stale handle again must not touch the new event.
        handles["doomed"].cancel()
        assert fresh.cancelled is False
        sim.run()
        assert fresh.cancelled is False

    def test_reuse_resets_all_fields(self):
        queue = EventQueue()
        stale = queue.push(1.0, _noop, (), True)
        queue.pop_next(None)  # dispatch-style pop; caller pools it
        queue.pool.release(stale)
        fresh = queue.push(2.0, _noop, ("x",), False)
        assert fresh is stale  # recycled object
        assert fresh.time == 2.0
        assert fresh.cancelled is False
        assert fresh.transient is False
        assert fresh.args == ("x",)

    def test_schedule_transient_rejects_past(self):
        import pytest

        from repro.errors import SimulationError

        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_transient(-0.1, _noop)
        with pytest.raises(SimulationError):
            sim.schedule_at_transient(-0.1, _noop)


class TestReschedule:
    def test_reschedule_cancels_previous(self):
        sim = Simulator()
        fired = []
        first = sim.reschedule(None, 0.5, fired.append, "first")
        second = sim.reschedule(first, 0.2, fired.append, "second")
        sim.run()
        assert fired == ["second"]
        assert first.cancelled
        assert not second.cancelled

    def test_reschedule_accepts_fired_event(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(0.1, fired.append, "first")
        sim.run()
        again = sim.reschedule(first, 0.1, fired.append, "again")
        sim.run()
        assert fired == ["first", "again"]
        assert again is not first

    def test_reschedule_rejects_negative_delay(self):
        import pytest

        from repro.errors import SimulationError

        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.reschedule(None, -1.0, _noop)


class TestLinkUsesTransients:
    def test_link_traffic_recycles_events(self):
        """The per-packet serialize/deliver path must ride the pool."""
        from repro.net.link import Link, LinkSpec
        from repro.net.packet import Packet, PacketType

        sim = Simulator()
        link = Link(sim, LinkSpec(rate_bps=8_000_000, delay=0.01))
        delivered = []
        link.connect(delivered.append)
        for i in range(200):
            sim.schedule(
                i * 0.0005,
                lambda: link.send(Packet(flow_id=0, ptype=PacketType.DATA, payload_bytes=1000)),
            )
        sim.run()
        assert len(delivered) == 200
        pool = sim._queue.pool
        # 2 transient events per packet (serialize-done + deliver), served
        # from a handful of allocations once the pipeline is warm.
        assert pool.released >= 300
        assert pool.reused >= 300
