"""Event-pool recycling: transient events are reused, regular ones never.

The recycle contract (``docs/PERFORMANCE.md``): only events scheduled via
``schedule_transient``/``schedule_at_transient`` return to the pool, and
only after their callback ran (or their cancelled corpse was discarded).
Pooled events must not pin callbacks or packets, and the free list is
bounded.
"""

from repro.sim.events import EventQueue
from repro.sim.kernel import Simulator
from repro.sim.pool import EventPool


def _noop():
    return None


class TestPoolRecycling:
    def test_transient_events_are_reused(self):
        sim = Simulator()
        state = {"fires": 0}

        def fire():
            state["fires"] += 1
            if state["fires"] < 1000:
                sim.schedule_transient(0.001, fire)

        sim.schedule_transient(0.001, fire)
        sim.run()
        pool = sim._queue.pool
        assert state["fires"] == 1000
        # Steady-state churn runs on recycled objects: ~1 allocation.
        assert pool.created <= 2
        assert pool.reused >= 998

    def test_regular_events_never_pooled(self):
        sim = Simulator()
        for _ in range(100):
            sim.schedule(0.001, _noop)
        sim.run()
        pool = sim._queue.pool
        assert pool.released == 0
        assert len(pool) == 0

    def test_pooled_event_releases_references(self):
        """A recycled event must not pin its callback or arguments."""
        sim = Simulator()
        payload = object()
        sim.schedule_transient(0.001, lambda _p: None, payload)
        sim.run()
        free = sim._queue.pool._free
        assert len(free) == 1
        recycled = free[0]
        assert recycled.callback is None
        assert recycled.args == ()
        assert recycled._queue is None

    def test_free_list_is_bounded(self):
        pool = EventPool(max_free=4)
        queue = EventQueue(pool=pool)
        events = [
            queue.push(float(i), _noop, (), True) for i in range(10)
        ]
        for event in events:
            queue.pop_next(None)
            pool.release(event)
        assert len(pool) == 4
        assert pool.released == 4

    def test_cancelled_transient_reclaimed_on_discard(self):
        """A cancelled transient corpse returns to the pool when shed."""
        sim = Simulator()
        doomed = sim.schedule_transient(0.001, _noop)
        sim.schedule(0.002, _noop)
        doomed.cancel()
        sim.run()
        pool = sim._queue.pool
        assert pool.released >= 1
        assert doomed.callback is None

    def test_reuse_resets_all_fields(self):
        queue = EventQueue()
        stale = queue.push(1.0, _noop, (), True)
        stale.cancel()
        queue.peek_time()  # discards + pools the corpse
        fresh = queue.push(2.0, _noop, ("x",), False)
        assert fresh is stale  # recycled object
        assert fresh.time == 2.0
        assert fresh.cancelled is False
        assert fresh.transient is False
        assert fresh.args == ("x",)

    def test_schedule_transient_rejects_past(self):
        import pytest

        from repro.errors import SimulationError

        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_transient(-0.1, _noop)
        with pytest.raises(SimulationError):
            sim.schedule_at_transient(-0.1, _noop)


class TestReschedule:
    def test_reschedule_cancels_previous(self):
        sim = Simulator()
        fired = []
        first = sim.reschedule(None, 0.5, fired.append, "first")
        second = sim.reschedule(first, 0.2, fired.append, "second")
        sim.run()
        assert fired == ["second"]
        assert first.cancelled
        assert not second.cancelled

    def test_reschedule_accepts_fired_event(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(0.1, fired.append, "first")
        sim.run()
        again = sim.reschedule(first, 0.1, fired.append, "again")
        sim.run()
        assert fired == ["first", "again"]
        assert again is not first

    def test_reschedule_rejects_negative_delay(self):
        import pytest

        from repro.errors import SimulationError

        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.reschedule(None, -1.0, _noop)


class TestLinkUsesTransients:
    def test_link_traffic_recycles_events(self):
        """The per-packet serialize/deliver path must ride the pool."""
        from repro.net.link import Link, LinkSpec
        from repro.net.packet import Packet, PacketType

        sim = Simulator()
        link = Link(sim, LinkSpec(rate_bps=8_000_000, delay=0.01))
        delivered = []
        link.connect(delivered.append)
        for i in range(200):
            sim.schedule(
                i * 0.0005,
                lambda: link.send(Packet(flow_id=0, ptype=PacketType.DATA, payload_bytes=1000)),
            )
        sim.run()
        assert len(delivered) == 200
        pool = sim._queue.pool
        # 2 transient events per packet (serialize-done + deliver), served
        # from a handful of allocations once the pipeline is warm.
        assert pool.released >= 300
        assert pool.reused >= 300
