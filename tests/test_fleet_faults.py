"""Fault-aware fluid fleet: event-time load shedding, stall accounting,
and slow-start re-ramp after restore."""

import math

import pytest

from repro.core.api import HvcNetwork
from repro.fleet import PopulationSpec, TenantPopulation
from repro.fleet.fluid import INITIAL_PACKETS, MSS_BITS, FluidBackground
from repro.net.hvc import fixed_embb_spec, urllc_spec

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

BACKENDS = [False] + ([True] if HAVE_NUMPY else [])


def build(use_numpy, tenants=40, duration=6.0, seed=2, tick=0.01):
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], seed=seed)
    # Large transfers so the population stays active across the injected
    # outages instead of draining in the first ticks.
    pop = TenantPopulation.generate(
        PopulationSpec(
            tenants=tenants,
            duration=duration,
            seed=seed,
            mean_size=2_000_000,
            max_size=20_000_000,
        )
    )
    fluid = FluidBackground(
        net.sim, net.channels, pop, tick=tick, horizon=duration, use_numpy=use_numpy
    )
    fluid.start()
    return net, fluid


@pytest.mark.parametrize("use_numpy", BACKENDS)
class TestEventTimeShedding:
    def test_fail_clears_background_load_immediately(self, use_numpy):
        net, fluid = build(use_numpy)
        embb = net.channel_named("embb")
        net.run(until=2.0)
        assert embb.uplink.background_bps > 0.0
        embb.fail()
        # No tick has run since fail(): the transition hook alone must
        # have shed the load from both directions.
        assert embb.uplink.background_bps == 0.0
        assert embb.downlink.background_bps == 0.0
        embb.restore()

    def test_micro_outage_between_ticks_charges_no_bytes(self, use_numpy):
        # Regression: a fail()/restore() pair shorter than one tick used
        # to be invisible — rates stayed up and background_bytes kept
        # growing through the dead window.
        net, fluid = build(use_numpy, tick=0.1)
        embb = net.channel_named("embb")
        net.run(until=2.0)
        before = embb.uplink.stats.background_bytes
        embb.fail()
        # Mid-outage, between ticks: no residual load installed.
        net.run(until=net.sim.now + 0.04)
        assert embb.uplink.background_bps == 0.0
        embb.restore()
        after = embb.uplink.stats.background_bytes
        assert after == before
        net.run(until=net.sim.now + 1.0)
        # Traffic resumes after restore.
        assert embb.uplink.stats.background_bytes > after

    def test_restore_reramps_via_slow_start(self, use_numpy):
        net, fluid = build(use_numpy, tick=0.01)
        net.run(until=2.0)
        for ch in net.channels:
            ch.fail()
        net.run(until=net.sim.now + 0.5)
        for ch in net.channels:
            ch.restore()
        # One tick after restore, every re-homed tenant restarts from its
        # channel's initial-window rate (at most a growth step or two in).
        net.run(until=net.sim.now + 2 * fluid.tick)
        iw_rate = [
            INITIAL_PACKETS * MSS_BITS / max(ch.base_rtt(), 1e-4)
            for ch in net.channels
        ]
        rates = [
            (fluid._rate[i], fluid._channel[i])
            for i in range(len(fluid._rate))
            if fluid._active[i] and fluid._channel[i] >= 0
        ]
        assert rates, "expected tenants back on the restored channels"
        for rate, c in rates:
            assert rate <= iw_rate[c] * 4.0

    def test_stalls_accounted_per_class(self, use_numpy):
        net, fluid = build(use_numpy)
        embb = net.channel_named("embb")
        net.run(until=2.0)
        embb.fail()
        net.run(until=3.0)
        embb.restore()
        net.run(until=5.0)
        # embb tenants re-steered to urllc (or stalled then re-steered):
        # either way stall events were recorded and all closed.
        assert fluid.stall_events > 0
        assert fluid.stall_time_total > 0.0
        assert fluid.stalled_count() == 0
        assert sum(fluid.stall_events_by_class.values()) == fluid.stall_events
        total = sum(fluid.stall_time_by_class.values())
        assert math.isclose(total, fluid.stall_time_total, rel_tol=1e-9)
        stalls = fluid.results()["stalls"]
        assert stalls["events"] == fluid.stall_events
        assert stalls["stalled_at_end"] == 0

    def test_total_blackout_stalls_everyone_then_recovers(self, use_numpy):
        net, fluid = build(use_numpy, duration=8.0)
        net.run(until=2.0)
        for ch in net.channels:
            ch.fail()
        net.run(until=3.0)
        assert fluid.stalled_count() == fluid.active_count()
        assert all(ch.uplink.background_bps == 0.0 for ch in net.channels)
        for ch in net.channels:
            ch.restore()
        net.run(until=8.0)
        assert fluid.stalled_count() == 0
        assert fluid.completed_count() > 0

    def test_digest_reflects_stall_state(self, use_numpy):
        net, fluid = build(use_numpy)
        net.run(until=2.0)
        before = fluid.digest()
        for ch in net.channels:
            ch.fail()
        # The hook zeroes rates and marks stalls without any tick.
        assert fluid.digest() != before
        for ch in net.channels:
            ch.restore()
