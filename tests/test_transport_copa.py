"""Tests for the Copa congestion controller."""

import pytest

from repro.apps.bulk import BulkTransfer
from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.transport.cc import make_cc
from repro.transport.cc.base import AckSample
from repro.transport.cc.copa import Copa
from repro.units import mbps, to_mbps

MSS = 1460


def ack(now, rtt, newly=MSS):
    return AckSample(
        now=now, rtt=rtt, newly_acked=newly, in_flight=10 * MSS,
        delivery_rate=None, total_delivered=0,
    )


class TestCopaUnit:
    def test_registered(self):
        assert isinstance(make_cc("copa", mss=MSS), Copa)
        assert make_cc("hvc-copa", mss=MSS).name == "hvc-copa"

    def test_low_queue_delay_grows_window(self):
        cc = Copa(MSS)
        start = cc.cwnd_bytes
        now = 0.0
        for _ in range(500):
            cc.on_ack(ack(now, rtt=0.0501))  # ~0.1 ms standing queue
            now += 0.005
        assert cc.cwnd_bytes > 2 * start

    def test_large_standing_queue_shrinks_window(self):
        cc = Copa(MSS)
        now = 0.0
        for _ in range(200):
            cc.on_ack(ack(now, rtt=0.050))
            now += 0.005
        grown = cc.cwnd_bytes
        # Poisoned floor then persistent 45 ms of "queueing".
        cc.on_ack(ack(now, rtt=0.005))
        for _ in range(500):
            now += 0.005
            cc.on_ack(ack(now, rtt=0.050))
        assert cc.cwnd_bytes < grown

    def test_velocity_resets_on_direction_change(self):
        cc = Copa(MSS)
        now = 0.0
        for _ in range(100):
            cc.on_ack(ack(now, rtt=0.0501))
            now += 0.005
        velocity = cc._velocity
        assert velocity > 1.0
        cc._rtt_min = 0.005  # poisoned floor: queueing now looks huge
        for _ in range(10):
            now += 0.005
            cc.on_ack(ack(now, rtt=0.060))
        assert cc._velocity < velocity
        assert cc._direction == -1

    def test_timeout_collapses(self):
        cc = Copa(MSS)
        cc._cwnd = 100 * MSS
        cc.on_timeout(now=1.0)
        assert cc.cwnd_bytes == 2 * MSS

    def test_paced(self):
        assert Copa(MSS).pacing_rate_bps > 0

    def test_delta_validated(self):
        with pytest.raises(ValueError):
            Copa(MSS, delta=0)


class TestCopaEndToEnd:
    def test_fills_clean_single_channel_reasonably(self):
        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(20))], steering="single")
        bulk = BulkTransfer(net, cc="copa")
        net.run(until=15.0)
        achieved = to_mbps(bulk.mean_throughput_bps(start=5.0))
        assert achieved > 10.0  # > 10 of the 20 Mbps

    def test_collapses_under_dchannel_steering(self):
        """Copa joins the Fig. 1 victims: poisoned RTT floor, tiny target."""
        steered = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        bulk = BulkTransfer(steered, cc="copa")
        steered.run(until=20.0)
        steered_mbps = to_mbps(bulk.mean_throughput_bps(start=5.0))
        assert steered_mbps < 15  # far below the 60 Mbps channel
