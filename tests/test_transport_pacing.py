"""Tests for transport pacing behaviour."""

import pytest

from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec
from repro.net.packet import PacketType
from repro.units import mbps, ms


def departure_times(net, cc, message_bytes=20_000_000, until=5.0):
    times = []
    net.channels[0].uplink.on_depart = lambda p, link: times.append(net.now) if (
        p.ptype == PacketType.DATA
    ) else None
    sends = []
    net.client.on_send_hooks.append(
        lambda p, ch: sends.append(net.now) if p.ptype == PacketType.DATA else None
    )
    pair = net.open_connection(cc=cc)
    pair.client.send_message(message_bytes, message_id=1)
    net.run(until=until)
    return sends


class TestPacing:
    def test_bbr_spreads_sends(self):
        """Once BBR has a rate estimate, sends are spaced, not bursty."""
        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(20))], steering="single")
        sends = departure_times(net, cc="bbr")
        late = [t for t in sends if t > 2.0]
        gaps = [b - a for a, b in zip(late, late[1:])]
        assert gaps, "no steady-state sends observed"
        # Median inter-send gap near one MSS at the estimated rate; far
        # from zero (which window-based bursts would show).
        gaps.sort()
        median_gap = gaps[len(gaps) // 2]
        assert median_gap > 0.0002

    def test_cubic_bursts_more_than_bbr(self):
        """CUBIC (ACK-clocked) emits far more back-to-back sends than a
        paced sender; BBR's pacer smooths them out."""

        def zero_gap_fraction(cc):
            net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(20))], steering="single")
            sends = departure_times(net, cc=cc)
            late = [t for t in sends if t > 2.0]
            gaps = [b - a for a, b in zip(late, late[1:])]
            return sum(1 for g in gaps if g < 1e-6) / max(len(gaps), 1)

        cubic = zero_gap_fraction("cubic")
        bbr = zero_gap_fraction("bbr")
        assert cubic > 0.05
        assert cubic > 3 * bbr

    def test_paced_sender_does_not_burst_into_queue(self):
        """BBR's standing queue stays far smaller than CUBIC's."""
        from repro.net.monitor import ChannelMonitor

        def peak_backlog(cc):
            net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(20))], steering="single")
            monitor = ChannelMonitor(net.sim, net.channels, period=0.05)
            pair = net.open_connection(cc=cc)
            pair.client.send_message(10_000_000, message_id=1)
            net.run(until=8.0)
            return monitor["embb"].peak_backlog_bytes("up")

        assert peak_backlog("bbr") < peak_backlog("cubic") / 3
