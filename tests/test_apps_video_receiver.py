"""Unit tests for the video receiver's decode rules (fake socket, no net)."""

import pytest

from repro.apps.video.receiver import VideoReceiver
from repro.apps.video.sender import message_id_for
from repro.apps.video.svc import SvcEncoderModel
from repro.sim.kernel import Simulator
from repro.transport.datagram import DatagramMessage
from repro.units import ms


class FakeSocket:
    """Just enough of DatagramSocket for the receiver."""

    def __init__(self):
        self.on_message = None
        self.discarded = []

    def discard_before(self, message_id):
        self.discarded.append(message_id)


def make_receiver(keyframe_interval=30):
    sim = Simulator()
    socket = FakeSocket()
    encoder = SvcEncoderModel(keyframe_interval=keyframe_interval)
    receiver = VideoReceiver(sim, socket, encoder)
    return sim, socket, receiver


def deliver(socket, frame, layer, sent_at=0.0, at=None):
    message = DatagramMessage(
        message_id=message_id_for(frame, layer),
        priority=layer,
        first_packet_at=at if at is not None else sent_at,
        bytes_received=1000,
        total_bytes=1000,
        sent_at=sent_at,
    )
    message.completed_at = at
    socket.on_message(message)


class TestDecodeRules:
    def test_decode_fires_after_wait(self):
        sim, socket, receiver = make_receiver()
        deliver(socket, frame=0, layer=0, sent_at=0.0)
        sim.run(until=1.0)
        assert len(receiver.frames) == 1
        frame = receiver.frames[0]
        assert frame.decoded_at == pytest.approx(ms(60))
        assert frame.decoded_layer == 0  # only layer 0 arrived

    def test_all_layers_decodes_top(self):
        sim, socket, receiver = make_receiver()
        for layer in (0, 1, 2):
            deliver(socket, frame=0, layer=layer)
        sim.run(until=1.0)
        assert receiver.frames[0].decoded_layer == 2

    def test_early_decode_on_lookahead(self):
        """Layer 0 of frames i+1 and i+2 release frame i before 60 ms."""
        sim, socket, receiver = make_receiver()
        deliver(socket, frame=0, layer=0, sent_at=0.0)

        def later_frames():
            deliver(socket, frame=1, layer=0, sent_at=sim.now)
            deliver(socket, frame=2, layer=0, sent_at=sim.now)

        sim.schedule(ms(10), later_frames)
        sim.run(until=1.0)
        frame0 = next(f for f in receiver.frames if f.frame_index == 0)
        assert frame0.decoded_at == pytest.approx(ms(10))

    def test_missing_middle_layer_caps_decode(self):
        """Layers must be contiguous: 0 and 2 without 1 decodes at 0."""
        sim, socket, receiver = make_receiver()
        deliver(socket, frame=0, layer=0)
        deliver(socket, frame=0, layer=2)
        sim.run(until=1.0)
        assert receiver.frames[0].decoded_layer == 0

    def test_temporal_dependency_limits_next_frame(self):
        """Frame i at layer L needs frame i-1 decoded at >= L (non-key)."""
        sim, socket, receiver = make_receiver()
        deliver(socket, frame=0, layer=0)  # frame 0 decodes at layer 0
        sim.run(until=0.08)

        for layer in (0, 1, 2):
            deliver(socket, frame=1, layer=layer, sent_at=sim.now)
        sim.run(until=0.3)
        frame1 = next(f for f in receiver.frames if f.frame_index == 1)
        assert frame1.decoded_layer == 0  # capped by frame 0's decode

    def test_keyframe_resets_dependency(self):
        """At a keyframe, full quality returns regardless of history."""
        sim, socket, receiver = make_receiver(keyframe_interval=2)
        deliver(socket, frame=1, layer=0)  # non-key frame, layer 0 only
        sim.run(until=0.08)
        for layer in (0, 1, 2):
            deliver(socket, frame=2, layer=layer, sent_at=sim.now)  # keyframe
        sim.run(until=0.3)
        frame2 = next(f for f in receiver.frames if f.frame_index == 2)
        assert frame2.decoded_layer == 2

    def test_frame_without_base_layer_never_decodes(self):
        sim, socket, receiver = make_receiver()
        deliver(socket, frame=0, layer=1)
        deliver(socket, frame=0, layer=2)
        sim.run(until=1.0)
        assert receiver.frames == []

    def test_latency_uses_sender_timestamp(self):
        sim, socket, receiver = make_receiver()
        sim.run(until=0.2)
        deliver(socket, frame=0, layer=0, sent_at=0.05, at=sim.now)
        sim.run(until=1.0)
        frame = receiver.frames[0]
        assert frame.latency == pytest.approx(0.2 + ms(60) - 0.05)

    def test_reassembly_state_discarded(self):
        sim, socket, receiver = make_receiver()
        for index in range(6):
            deliver(socket, frame=index, layer=0, sent_at=sim.now)
            sim.run(until=sim.now + 0.1)
        assert socket.discarded  # old frames dropped from the socket
