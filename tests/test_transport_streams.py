"""Tests for stream multiplexing with priorities."""

import pytest

from repro.core.api import HvcNetwork
from repro.errors import TransportError
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.transport import next_flow_id
from repro.transport.connection import Connection
from repro.transport.streams import StreamMux
from repro.units import kb, mbps, ms


def make_mux_pair(net, chunk_bytes=16_384, cc="cubic"):
    flow_id = next_flow_id()
    sender_conn = Connection(net.sim, net.client, flow_id, cc=cc)
    receiver_conn = Connection(net.sim, net.server, flow_id, cc=cc)
    received = []
    tx = StreamMux(sender_conn, chunk_bytes=chunk_bytes)
    rx = StreamMux(receiver_conn, on_stream_message=received.append)
    return tx, rx, received


def slow_net():
    # A single slow channel so scheduling decisions are visible.
    return HvcNetwork([fixed_embb_spec(rate_bps=mbps(8), rtt=ms(20))], steering="single")


class TestStreamMux:
    def test_single_stream_roundtrip(self):
        net = slow_net()
        tx, _, received = make_mux_pair(net)
        stream = tx.open_stream(priority=0)
        stream.send_message(kb(40))
        net.run(until=5.0)
        assert len(received) == 1
        assert received[0].stream_id == stream.stream_id
        assert received[0].size == kb(40)

    def test_messages_within_stream_in_order(self):
        net = slow_net()
        tx, _, received = make_mux_pair(net)
        stream = tx.open_stream()
        for _ in range(4):
            stream.send_message(kb(10))
        net.run(until=5.0)
        mine = [m.message_index for m in received if m.stream_id == stream.stream_id]
        assert mine == [0, 1, 2, 3]

    def test_priority_stream_preempts_queued_bulk(self):
        """A later high-priority message beats queued low-priority bulk."""
        net = slow_net()
        tx, _, received = make_mux_pair(net, chunk_bytes=8_192)
        bulk = tx.open_stream(priority=2)
        urgent = tx.open_stream(priority=0)
        bulk.send_message(kb(400))  # ~400 ms of queued data at 8 Mbps
        urgent.send_message(kb(4))
        net.run(until=10.0)
        urgent_done = next(m for m in received if m.stream_id == urgent.stream_id)
        bulk_done = next(m for m in received if m.stream_id == bulk.stream_id)
        assert urgent_done.completed_at < bulk_done.completed_at

    def test_equal_priority_round_robin_shares(self):
        net = slow_net()
        tx, _, received = make_mux_pair(net, chunk_bytes=8_192)
        a = tx.open_stream(priority=1)
        b = tx.open_stream(priority=1)
        a.send_message(kb(100))
        b.send_message(kb(100))
        net.run(until=10.0)
        done = {m.stream_id: m.completed_at for m in received}
        # Interleaved service: completions land close together, not serial.
        assert abs(done[a.stream_id] - done[b.stream_id]) < 0.15

    def test_priority_tags_reach_packets(self):
        """Chunks carry the stream priority, visible to steering."""
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="priority")
        tx, _, received = make_mux_pair(net)
        urgent = tx.open_stream(priority=0)
        bulk = tx.open_stream(priority=2)
        urgent.send_message(kb(2))
        bulk.send_message(kb(2))
        net.run(until=3.0)
        # priority steering maps priority-0 messages to URLLC.
        assert net.channel_named("urllc").uplink.stats.delivered > 0
        assert net.channel_named("embb").uplink.stats.delivered > 0

    def test_on_acked_callback(self):
        net = slow_net()
        tx, _, _ = make_mux_pair(net)
        acked = []
        stream = tx.open_stream()
        stream.send_message(kb(20), on_acked=lambda index, t: acked.append(index))
        net.run(until=5.0)
        assert acked == [0]

    def test_validation(self):
        net = slow_net()
        tx, _, _ = make_mux_pair(net)
        stream = tx.open_stream()
        with pytest.raises(TransportError):
            stream.send_message(0)
        flow_id = next_flow_id()
        conn = Connection(net.sim, net.client, flow_id)
        with pytest.raises(TransportError):
            StreamMux(conn, chunk_bytes=0)

    def test_bidirectional_streams_do_not_collide(self):
        """Both endpoints sending stream data concurrently stay distinct."""
        net = slow_net()
        flow_id = next_flow_id()
        a_conn = Connection(net.sim, net.client, flow_id)
        b_conn = Connection(net.sim, net.server, flow_id)
        a_received, b_received = [], []
        a_mux = StreamMux(a_conn, on_stream_message=a_received.append)
        b_mux = StreamMux(b_conn, on_stream_message=b_received.append)
        a_stream = a_mux.open_stream(priority=0)
        b_stream = b_mux.open_stream(priority=0)
        a_stream.send_message(kb(30))
        b_stream.send_message(kb(40))
        net.run(until=10.0)
        assert [m.size for m in b_received] == [kb(30)]
        assert [m.size for m in a_received] == [kb(40)]

    def test_works_over_multipath(self):
        from repro.transport.multipath import MultipathConnection

        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="single")
        flow_id = next_flow_id()
        sender_conn = MultipathConnection(net.sim, net.client, flow_id)
        receiver_conn = MultipathConnection(net.sim, net.server, flow_id)
        received = []
        tx = StreamMux(sender_conn)
        StreamMux(receiver_conn, on_stream_message=received.append)
        stream = tx.open_stream(priority=0)
        stream.send_message(kb(30))
        net.run(until=5.0)
        assert len(received) == 1
        assert received[0].size == kb(30)
