"""Unit tests for multipath scheduling decisions (no network needed)."""

import pytest

from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.transport import next_flow_id
from repro.transport.connection import Segment
from repro.transport.multipath import MultipathConnection, SMALL_MESSAGE_BYTES


def make_conn(scheduler="hvc"):
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="single")
    conn = MultipathConnection(
        net.sim, net.client, next_flow_id(), scheduler=scheduler
    )
    return net, conn


def segment(size=1460, last=False, retx=False, message_size=10**9):
    seg = Segment(
        seq=0,
        end_seq=size,
        sent_at=0.0,
        delivered_at_send=0,
        message_last=last,
        message_start=0,
        message_size=message_size,
    )
    seg.retransmitted = retx
    return seg


class TestHvcScheduler:
    def test_bulk_goes_to_hb(self):
        net, conn = make_conn()
        chosen = conn._pick_subflow(segment())
        assert chosen.channel_index == 0  # eMBB

    def test_message_tail_goes_to_ll(self):
        net, conn = make_conn()
        chosen = conn._pick_subflow(segment(last=True))
        assert chosen.channel_index == 1  # URLLC

    def test_small_message_goes_to_ll_from_first_segment(self):
        net, conn = make_conn()
        chosen = conn._pick_subflow(segment(message_size=SMALL_MESSAGE_BYTES))
        assert chosen.channel_index == 1

    def test_retransmission_goes_to_ll(self):
        net, conn = make_conn()
        chosen = conn._pick_subflow(segment(retx=True))
        assert chosen.channel_index == 1

    def test_urgent_falls_back_to_hb_when_ll_window_full(self):
        net, conn = make_conn()
        ll = conn.subflows[1]
        ll.in_flight = int(ll.cc.cwnd_bytes)  # no room
        chosen = conn._pick_subflow(segment(last=True))
        assert chosen.channel_index == 0

    def test_bulk_waits_when_hb_window_full(self):
        net, conn = make_conn()
        hb = conn.subflows[0]
        hb.in_flight = int(hb.cc.cwnd_bytes)
        assert conn._pick_subflow(segment()) is None

    def test_single_channel_everything_on_it(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        conn = MultipathConnection(net.sim, net.client, next_flow_id())
        assert conn._pick_subflow(segment(last=True)).channel_index == 0
        assert conn._pick_subflow(segment()).channel_index == 0


class TestMinRttScheduler:
    def test_prefers_lowest_srtt_with_room(self):
        net, conn = make_conn(scheduler="minrtt")
        conn.subflows[0].rtt.on_sample(0.050)
        conn.subflows[1].rtt.on_sample(0.005)
        assert conn._pick_subflow(segment()).channel_index == 1

    def test_spills_when_preferred_full(self):
        net, conn = make_conn(scheduler="minrtt")
        conn.subflows[0].rtt.on_sample(0.050)
        conn.subflows[1].rtt.on_sample(0.005)
        conn.subflows[1].in_flight = int(conn.subflows[1].cc.cwnd_bytes)
        assert conn._pick_subflow(segment()).channel_index == 0

    def test_none_when_all_full(self):
        net, conn = make_conn(scheduler="minrtt")
        for subflow in conn.subflows:
            subflow.in_flight = int(subflow.cc.cwnd_bytes)
        assert conn._pick_subflow(segment()) is None
