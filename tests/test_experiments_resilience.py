"""The recovery-SLO scorecard: grid completeness, determinism, caching,
and the fleet cell's blackout-survival contract."""

import pytest

from repro.experiments.resilience import (
    fleet_regime_rows,
    regime_rows,
    resilience_fleet_unit,
    resilience_unit,
    run_resilience,
)
from repro.faults import FaultSchedule
from repro.runner import ParallelRunner, ResultCache

QUICK = dict(
    duration=6.0,
    regimes=("handover", "starlink-leo"),
    policies=("single", "dchannel"),
    ccas=("cubic",),
    fleet_tenants=800,
    fleet_duration=4.0,
)


class TestRegimeRows:
    def test_handover_is_scripted_blackout(self):
        rows = regime_rows("handover", 8.0)
        schedule = FaultSchedule.from_params(rows)
        assert len(schedule) == 1
        assert schedule.faults[0].kind == "blackout"
        assert schedule.faults[0].channel == "embb"

    def test_trace_regimes_derive_from_catalog(self):
        rows = regime_rows("starlink-leo", 8.0)
        schedule = FaultSchedule.from_params(rows)
        assert len(schedule) >= 1
        assert all(f.channel == "embb" for f in schedule)
        assert schedule.horizon <= 8.0

    def test_fleet_handover_blacks_out_every_channel(self):
        rows = fleet_regime_rows("handover", 8.0, ("embb", "urllc"))
        schedule = FaultSchedule.from_params(rows)
        assert {f.channel for f in schedule} == {"embb", "urllc"}
        assert all(f.kind == "blackout" for f in schedule)


class TestPacketCell:
    def test_cell_reports_full_metric_set(self):
        rows = regime_rows("handover", 6.0)
        payload = resilience_unit(
            regime="handover", steering="dchannel", cc="cubic",
            fault_rows=rows, duration=6.0,
        )
        for key in (
            "ttr_p50_s", "ttr_p99_s", "failovers", "slo_violation_rates",
            "goodput_mbps", "goodput_during_outage_mbps", "outage_window_s",
        ):
            assert key in payload
        assert set(payload["slo_violation_rates"]) == {
            "latency", "deadline", "throughput", "background",
        }
        assert payload["outages"] == 1
        assert payload["ttr_p50_s"] <= payload["ttr_p99_s"] + 1e-12

    def test_single_stalls_dchannel_fails_over(self):
        rows = regime_rows("handover", 8.0)
        single = resilience_unit(
            regime="handover", steering="single", cc="cubic",
            fault_rows=rows, duration=8.0,
        )
        dchannel = resilience_unit(
            regime="handover", steering="dchannel", cc="cubic",
            fault_rows=rows, duration=8.0,
        )
        assert single["failovers"] == 0
        assert dchannel["failovers"] > 0
        assert single["ttr_p99_s"] > 0.0


class TestFleetCell:
    def test_full_blackout_survived_with_invariants(self):
        rows = fleet_regime_rows("handover", 4.0, ("embb", "urllc"))
        payload = resilience_fleet_unit(
            regime="handover", fault_rows=rows, tenants=800, duration=4.0,
        )
        # The blackout stalled tenants; every stall closed after restore
        # and the invariant catalogue stayed silent (no raise).
        assert payload["stall_events"] > 0
        assert payload["stalled_at_end"] == 0
        assert payload["outages"] == 2
        assert payload["invariant_checks"] > 0
        assert payload["completed"] > 0


class TestScorecard:
    def test_every_cell_reports_ttr_p99(self):
        result = run_resilience(**QUICK)
        for regime in QUICK["regimes"]:
            for policy in QUICK["policies"]:
                for cc in QUICK["ccas"]:
                    assert f"{regime}/{policy}/{cc}/ttr_p99_s" in result.values
            assert f"fleet/{regime}/stalled_at_end" in result.values
            assert result.values[f"fleet/{regime}/stalled_at_end"] == 0
        assert len(result.tables) == 2

    def test_deterministic_and_cache_stable(self, tmp_path):
        runner1 = ParallelRunner(cache=ResultCache(tmp_path / "cache"))
        cold = run_resilience(runner=runner1, **QUICK)
        assert runner1.executed > 0 and runner1.cache_hits == 0
        runner2 = ParallelRunner(cache=ResultCache(tmp_path / "cache"))
        warm = run_resilience(runner=runner2, **QUICK)
        assert runner2.executed == 0
        assert runner2.cache_hits == runner1.executed
        assert warm.render() == cold.render()
        assert warm.values == cold.values

    def test_unknown_regime_rejected(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            run_resilience(
                duration=2.0, regimes=("no-such-regime",),
                policies=("single",), ccas=("cubic",),
                fleet_tenants=10, fleet_duration=1.0,
            )
