"""The benchmark trajectory harness: storage, gate math, CLI exit codes.

The regression gate must fail (exit 1) on an injected >10% normalized
slowdown, pass (exit 0) on improvements, within-tolerance noise, or a
missing baseline (a fresh branch has nothing to gate against yet), and
exit 2 on real errors (explicit --current entry absent, unsupported
file version) — the CI bench job relies on exactly these codes.
"""

import json

import pytest

from repro.bench.trajectory import (
    append_entry,
    compare_entries,
    find_entry,
    load_trajectory,
    save_trajectory,
)
from repro.bench.workloads import WORKLOADS, run_workload
from repro.cli import main as repro_main


def _entry(label, eps_by_name, calib=1_000_000.0, extra=None):
    results = {
        name: {"events": 1000, "wall_seconds": 0.1, "events_per_second": eps}
        for name, eps in eps_by_name.items()
    }
    if extra:
        results.update(extra)
    return {
        "label": label,
        "calibration_ops_per_second": calib,
        "results": results,
    }


class TestCompareEntries:
    def test_flags_regression_beyond_gate(self):
        base = _entry("base", {"kernel": 100_000.0})
        cur = _entry("cur", {"kernel": 85_000.0})  # -15%
        rows = compare_entries(base, cur, max_regress_pct=10.0)
        assert len(rows) == 1
        assert rows[0].regressed
        assert rows[0].delta_pct == pytest.approx(-15.0)

    def test_within_tolerance_passes(self):
        base = _entry("base", {"kernel": 100_000.0})
        cur = _entry("cur", {"kernel": 95_000.0})  # -5%
        rows = compare_entries(base, cur, max_regress_pct=10.0)
        assert not rows[0].regressed

    def test_improvement_passes(self):
        base = _entry("base", {"kernel": 100_000.0})
        cur = _entry("cur", {"kernel": 220_000.0})
        rows = compare_entries(base, cur, max_regress_pct=10.0)
        assert not rows[0].regressed
        assert rows[0].delta_pct == pytest.approx(120.0)

    def test_calibration_normalizes_machine_speed(self):
        """Half the raw events/s on a half-speed box is not a regression."""
        base = _entry("base", {"kernel": 100_000.0}, calib=2_000_000.0)
        cur = _entry("cur", {"kernel": 50_000.0}, calib=1_000_000.0)
        rows = compare_entries(base, cur, max_regress_pct=10.0)
        assert not rows[0].regressed
        assert rows[0].delta_pct == pytest.approx(0.0)

    def test_workloads_missing_on_either_side_are_skipped(self):
        base = _entry("base", {"kernel": 100_000.0, "cancel": 50_000.0})
        cur = _entry("cur", {"kernel": 100_000.0})
        rows = compare_entries(base, cur)
        assert [row.name for row in rows] == ["kernel"]

    def test_render_mentions_verdict(self):
        base = _entry("base", {"kernel": 100_000.0})
        cur = _entry("cur", {"kernel": 10_000.0})
        row = compare_entries(base, cur)[0]
        assert "REGRESSED" in row.render()


class TestTrajectoryStorage:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "TRAJECTORY.json"
        trajectory = load_trajectory(path)
        assert trajectory["entries"] == []
        append_entry(trajectory, "a", {"kernel": {"events_per_second": 1.0}}, 10.0)
        save_trajectory(trajectory, path)
        again = load_trajectory(path)
        assert [e["label"] for e in again["entries"]] == ["a"]
        assert again["entries"][0]["calibration_ops_per_second"] == 10.0

    def test_find_entry_by_label_and_default_last(self, tmp_path):
        trajectory = {"entries": []}
        append_entry(trajectory, "a", {}, 1.0)
        append_entry(trajectory, "b", {}, 1.0)
        append_entry(trajectory, "a", {}, 2.0)  # later duplicate label wins
        assert find_entry(trajectory, None)["calibration_ops_per_second"] == 2.0
        assert find_entry(trajectory, "a")["calibration_ops_per_second"] == 2.0
        assert find_entry(trajectory, "b")["label"] == "b"
        with pytest.raises(LookupError):
            find_entry(trajectory, "missing")
        with pytest.raises(LookupError):
            find_entry({"entries": []}, None)

    def test_load_rejects_non_trajectory_file(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_trajectory(path)


class TestBenchCliExitCodes:
    """End-to-end through ``repro bench ...`` with stored entries only
    (``--current`` avoids re-measuring, keeping the test fast)."""

    def _write(self, tmp_path, entries):
        path = tmp_path / "TRAJECTORY.json"
        save_trajectory({"version": 1, "entries": entries}, path)
        return path

    def test_injected_regression_exits_1(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            [
                _entry("pre-pr", {"kernel": 100_000.0, "fig1a": 20_000.0}),
                _entry("post-pr", {"kernel": 88_000.0, "fig1a": 21_000.0}),
            ],
        )
        code = repro_main(
            [
                "bench", "compare",
                "--trajectory", str(path),
                "--baseline", "pre-pr",
                "--current", "post-pr",
                "--max-regress", "10",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "kernel" in out

    def test_improvement_exits_0(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            [
                _entry("pre-pr", {"kernel": 100_000.0}),
                _entry("post-pr", {"kernel": 150_000.0}),
            ],
        )
        code = repro_main(
            [
                "bench", "compare",
                "--trajectory", str(path),
                "--baseline", "pre-pr",
                "--current", "post-pr",
            ]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_missing_baseline_passes_with_message(self, tmp_path, capsys):
        """No baseline yet is not a perf failure: exit 0, actionable hint.

        First-run CI on a fresh branch hits exactly this; pre-fix it
        exited 2 with a bare LookupError and looked like a regression.
        """
        path = self._write(tmp_path, [_entry("only", {"kernel": 1.0})])
        code = repro_main(
            [
                "bench", "compare",
                "--trajectory", str(path),
                "--baseline", "nope",
                "--current", "only",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no baseline entry" in out
        assert "bench run --label" in out

    def test_empty_trajectory_compare_passes(self, tmp_path, capsys):
        path = self._write(tmp_path, [])
        code = repro_main(
            ["bench", "compare", "--trajectory", str(path), "--baseline", "post-pr"]
        )
        assert code == 0
        assert "nothing to gate against yet" in capsys.readouterr().out

    def test_missing_current_entry_still_exits_2(self, tmp_path, capsys):
        """--current names a stored entry explicitly; its absence is an error."""
        path = self._write(tmp_path, [_entry("base", {"kernel": 1.0})])
        code = repro_main(
            [
                "bench", "compare",
                "--trajectory", str(path),
                "--baseline", "base",
                "--current", "nope",
            ]
        )
        assert code == 2

    def test_unsupported_version_exits_2(self, tmp_path, capsys):
        path = tmp_path / "TRAJECTORY.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        code = repro_main(
            ["bench", "compare", "--trajectory", str(path), "--baseline", "a"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unsupported trajectory version" in err
        assert "bench run" in err

    def test_load_rejects_unsupported_version(self, tmp_path):
        path = tmp_path / "TRAJECTORY.json"
        path.write_text(json.dumps({"version": 2, "entries": []}))
        with pytest.raises(ValueError, match="unsupported trajectory version"):
            load_trajectory(path)

    def test_no_comparable_workloads_exits_2(self, tmp_path):
        path = self._write(
            tmp_path,
            [_entry("a", {"kernel": 1.0}), _entry("b", {"cancel": 1.0})],
        )
        code = repro_main(
            ["bench", "compare", "--trajectory", str(path), "--baseline", "a", "--current", "b"]
        )
        assert code == 2

    def test_unknown_workload_name_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            repro_main(["bench", "run", "--workloads", "nonsense", "--no-append"])


class TestBenchRunQuick:
    def test_run_appends_quick_entry(self, tmp_path, capsys):
        """One real quick measurement end-to-end (kernel only: fast)."""
        path = tmp_path / "TRAJECTORY.json"
        code = repro_main(
            [
                "bench", "run",
                "--quick",
                "--workloads", "kernel",
                "--label", "smoke",
                "--trajectory", str(path),
            ]
        )
        assert code == 0
        trajectory = load_trajectory(path)
        entry = find_entry(trajectory, "smoke")
        assert entry["quick"] is True
        record = entry["results"]["kernel"]
        assert record["events"] > 0
        assert record["events_per_second"] > 0
        assert record["alloc_peak_kb"] > 0


class TestWorkloadRegistry:
    def test_all_workloads_registered(self):
        assert set(WORKLOADS) == {
            "kernel", "cancel", "fig1a", "fleet", "cc_matrix", "resilience",
        }

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            run_workload("bogus")

    def test_cancel_workload_reports_bounded_entries(self):
        record = run_workload("cancel", quick=True)
        assert record["max_queue_entries"] > 0
        # The bounded-memory acceptance: compaction keeps retained entries
        # far below the ~2500 corpses the seed kernel accumulated.
        assert record["max_queue_entries"] < 1000
