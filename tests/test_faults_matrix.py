"""Resilience matrix: every CCA x every steering policy survives faults.

The contract under test is graceful degradation, not performance: with an
eMBB outage and a URLLC loss burst mid-transfer, no (CCA, policy)
combination may raise, and every reliable transfer must complete once the
weather clears. Transfers are deliberately small — redundant/round-robin
policies push half their packets through the 2 Mbps URLLC channel, and the
point here is surviving faults, not filling pipes.
"""

import pytest

from repro.core.api import HvcNetwork
from repro.faults import FaultInjector, FaultSchedule, RecoveryTracker
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.steering import list_steerers
from repro.transport.cc import list_ccs
from repro.units import kb

#: Transfer small enough that even URLLC-pinned policies finish in seconds.
TRANSFER_KB = 200
DEADLINE = 60.0


def fault_weather() -> FaultSchedule:
    """The matrix's storm: fat channel dies, thin channel gets lossy."""
    return (
        FaultSchedule()
        .outage("embb", 0.5, 1.0)
        .loss_burst("urllc", 0.5, 1.5, loss=0.2)
    )


@pytest.mark.parametrize("cc", list_ccs())
@pytest.mark.parametrize("policy", list_steerers())
def test_reliable_delivery_through_faults(cc, policy):
    net = HvcNetwork(
        [fixed_embb_spec(), urllc_spec()], steering=policy, seed=3
    )
    FaultInjector(net, fault_weather()).arm()
    tracker = RecoveryTracker(net)
    pair = net.open_connection(cc=cc)
    done = []
    pair.client.send_message(kb(TRANSFER_KB), on_acked=lambda m, t: done.append(t))
    net.run(until=DEADLINE)
    assert done, (
        f"{cc} x {policy}: transfer incomplete after {DEADLINE}s "
        f"(acked {pair.client.stats.bytes_acked} of {kb(TRANSFER_KB)} bytes)"
    )
    assert pair.client.stats.bytes_acked == kb(TRANSFER_KB)
    assert tracker.summary()["outages"] == 1


@pytest.mark.parametrize("policy", ["single", "dchannel", "transport-aware", "redundant"])
def test_total_blackout_then_delivery(policy):
    """Even with every channel down for a stretch, reliable data arrives."""
    net = HvcNetwork(
        [fixed_embb_spec(), urllc_spec()], steering=policy, seed=3
    )
    FaultInjector(
        net, FaultSchedule().correlated(["embb", "urllc"], 0.5, 1.0, kind="blackout")
    ).arm()
    pair = net.open_connection(cc="cubic")
    done = []
    pair.client.send_message(kb(TRANSFER_KB), on_acked=lambda m, t: done.append(t))
    net.run(until=DEADLINE)
    assert done
    assert pair.client.stats.bytes_acked == kb(TRANSFER_KB)
