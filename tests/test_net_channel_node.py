"""Unit tests for channels and the multi-channel device."""

import pytest

from repro.errors import NetworkError, SteeringError
from repro.net.channel import Channel, ChannelSpec, END_A, END_B
from repro.net.node import ChannelView, Device
from repro.sim.kernel import Simulator
from repro.units import mbps, ms

from tests.conftest import ack_packet, data_packet, make_pair


class TestChannel:
    def test_symmetric_spec_builds_two_links(self, sim):
        channel = Channel(sim, ChannelSpec.symmetric("c", mbps(10), ms(5)))
        assert channel.uplink.current_rate() == mbps(10)
        assert channel.downlink.current_delay() == ms(5)

    def test_base_rtt_sums_directions(self, sim):
        channel = Channel(sim, ChannelSpec.symmetric("c", mbps(10), ms(5)))
        assert channel.base_rtt() == pytest.approx(ms(10))

    def test_out_and_in_links_mirror(self, sim):
        channel = Channel(sim, ChannelSpec.symmetric("c", mbps(10), ms(5)))
        assert channel.out_link(END_A) is channel.in_link(END_B)
        assert channel.out_link(END_B) is channel.in_link(END_A)

    def test_invalid_end_rejected(self, sim):
        channel = Channel(sim, ChannelSpec.symmetric("c", mbps(10), ms(5)))
        with pytest.raises(NetworkError):
            channel.out_link(2)

    def test_set_up_disables_both_links(self, sim):
        channel = Channel(sim, ChannelSpec.symmetric("c", mbps(10), ms(5)))
        channel.set_up(False)
        assert not channel.uplink.up and not channel.downlink.up
        channel.set_up(True)
        assert channel.uplink.up and channel.downlink.up


class FixedSteerer:
    """Test helper: always picks the given channel indices."""

    def __init__(self, *indices):
        self.indices = indices

    def choose(self, packet, views, now):
        return self.indices


class TestDevice:
    def test_packet_travels_client_to_server(self, sim):
        client, server, _ = make_pair(sim, [ChannelSpec.symmetric("c", mbps(10), ms(5))])
        got = []
        server.register_flow(1, got.append)
        client.send(data_packet(flow_id=1, payload=1460))
        sim.run()
        assert len(got) == 1
        assert got[0].delivered_at == pytest.approx(ms(5) + 1500 * 8 / mbps(10))

    def test_reverse_direction_works(self, sim):
        client, server, _ = make_pair(sim, [ChannelSpec.symmetric("c", mbps(10), ms(5))])
        got = []
        client.register_flow(1, got.append)
        server.send(data_packet(flow_id=1))
        sim.run()
        assert len(got) == 1

    def test_steerer_selects_channel(self, sim):
        specs = [
            ChannelSpec.symmetric("slow", mbps(10), ms(50)),
            ChannelSpec.symmetric("fast", mbps(10), ms(1)),
        ]
        client, server, channels = make_pair(sim, specs)
        client.set_steerer(FixedSteerer(1))
        got = []
        server.register_flow(1, got.append)
        client.send(data_packet(flow_id=1))
        sim.run()
        assert got[0].channel_index == 1
        assert channels[1].uplink.stats.delivered == 1
        assert channels[0].uplink.stats.delivered == 0

    def test_redundant_send_is_deduplicated(self, sim):
        specs = [
            ChannelSpec.symmetric("a", mbps(10), ms(5)),
            ChannelSpec.symmetric("b", mbps(10), ms(10)),
        ]
        client, server, _ = make_pair(sim, specs)
        client.set_steerer(FixedSteerer(0, 1))
        got = []
        server.register_flow(1, got.append)
        client.send(data_packet(flow_id=1))
        sim.run()
        assert len(got) == 1
        assert server.stats.duplicates_discarded == 1

    def test_unknown_flow_goes_to_default_handler(self, sim):
        client, server, _ = make_pair(sim, [ChannelSpec.symmetric("c", mbps(10), ms(5))])
        fallback = []
        server.set_default_handler(fallback.append)
        client.send(data_packet(flow_id=99))
        sim.run()
        assert len(fallback) == 1

    def test_duplicate_flow_registration_rejected(self, sim):
        client, _, _ = make_pair(sim, [ChannelSpec.symmetric("c", mbps(10), ms(5))])
        client.register_flow(1, lambda p: None)
        with pytest.raises(NetworkError):
            client.register_flow(1, lambda p: None)

    def test_unregister_then_reregister(self, sim):
        client, _, _ = make_pair(sim, [ChannelSpec.symmetric("c", mbps(10), ms(5))])
        client.register_flow(1, lambda p: None)
        client.unregister_flow(1)
        client.register_flow(1, lambda p: None)  # no error

    def test_send_without_channels_raises(self, sim):
        device = Device(sim, "lonely")
        with pytest.raises(NetworkError):
            device.send(data_packet())

    def test_out_of_range_channel_choice_raises(self, sim):
        client, _, _ = make_pair(sim, [ChannelSpec.symmetric("c", mbps(10), ms(5))])
        client.set_steerer(FixedSteerer(3))
        with pytest.raises(SteeringError):
            client.send(data_packet())

    def test_empty_channel_choice_raises(self, sim):
        client, _, _ = make_pair(sim, [ChannelSpec.symmetric("c", mbps(10), ms(5))])
        client.set_steerer(FixedSteerer())
        with pytest.raises(SteeringError):
            client.send(data_packet())

    def test_hooks_fire(self, sim):
        client, server, _ = make_pair(sim, [ChannelSpec.symmetric("c", mbps(10), ms(5))])
        sends, receives = [], []
        client.on_send_hooks.append(lambda p, ch: sends.append(ch))
        server.on_receive_hooks.append(lambda p: receives.append(p.packet_id))
        client.send(data_packet(flow_id=1))
        sim.run()
        assert sends == [0]
        assert len(receives) == 1

    def test_cost_accounting(self, sim):
        spec = ChannelSpec.symmetric("paid", mbps(10), ms(5), cost_per_byte=2.0)
        client, server, channels = make_pair(sim, [spec])
        client.send(data_packet(flow_id=1, payload=960))
        sim.run()
        assert channels[0].cost_bytes == 1000


class TestChannelView:
    def test_view_exposes_channel_properties(self, sim):
        spec = ChannelSpec.symmetric("c", mbps(2), ms(2.5), cost_per_byte=0.5, reliable=True)
        channel = Channel(sim, spec, index=3)
        view = ChannelView(channel, END_A)
        assert view.index == 3
        assert view.name == "c"
        assert view.rate_bps == mbps(2)
        assert view.base_delay == ms(2.5)
        assert view.cost_per_byte == 0.5
        assert view.reliable
        assert view.up

    def test_estimated_delivery_delay_counts_backlog(self, sim):
        channel = Channel(sim, ChannelSpec.symmetric("c", mbps(8), ms(10)))
        view = ChannelView(channel, END_A)
        empty = view.estimated_delivery_delay(1000)
        channel.uplink.send(data_packet(payload=9960))  # 10 kB backlog
        loaded = view.estimated_delivery_delay(1000)
        assert empty == pytest.approx(ms(10) + 1000 * 8 / mbps(8))
        assert loaded == pytest.approx(empty + 10_000 * 8 / mbps(8))

    def test_queueing_delay_infinite_during_outage(self, sim):
        from repro.net.link import LinkSpec
        from repro.net.channel import DirectionSpec
        from repro.traces.model import NetworkTrace

        trace = NetworkTrace([0.0], [0.0], [ms(1)])
        spec = ChannelSpec(
            name="dead",
            up=DirectionSpec(trace=trace),
            down=DirectionSpec(trace=trace),
        )
        view = ChannelView(Channel(sim, spec), END_A)
        assert view.queueing_delay(100) == float("inf")
