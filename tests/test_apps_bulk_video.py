"""Tests for the bulk and video applications."""

import pytest

from repro.apps.bulk import BulkTransfer
from repro.apps.video.quality import SsimModel
from repro.apps.video.receiver import VideoReceiver
from repro.apps.video.sender import (
    VideoSender,
    frame_of_message,
    layer_of_message,
    message_id_for,
)
from repro.apps.video.session import run_video_session
from repro.apps.video.svc import SvcEncoderModel
from repro.core.api import HvcNetwork
from repro.errors import ReproError
from repro.net.channel import ChannelSpec
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.units import mbps, ms, to_mbps


class TestBulkTransfer:
    def test_saturates_single_channel(self):
        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(20))], steering="single")
        bulk = BulkTransfer(net, cc="cubic")
        net.run(until=10.0)
        assert to_mbps(bulk.mean_throughput_bps(start=3.0)) > 15

    def test_throughput_series_shape(self):
        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(20))], steering="single")
        bulk = BulkTransfer(net, cc="cubic")
        net.run(until=5.0)
        series = bulk.throughput_series(interval=1.0)
        assert len(series) == 5
        assert series[-1][1] > 0

    def test_finite_transfer_stops(self):
        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(20))], steering="single")
        bulk = BulkTransfer(net, cc="cubic", total_bytes=100_000)
        net.run(until=10.0)
        assert bulk.bytes_acked == 100_000

    def test_rtt_records_available(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        bulk = BulkTransfer(net, cc="bbr")
        net.run(until=3.0)
        assert len(bulk.rtt_records()) > 10


class TestSvcEncoder:
    def test_layer_rates_match_targets(self):
        encoder = SvcEncoderModel(seed=1)
        seconds = 30
        totals = [0, 0, 0]
        for frame in range(int(seconds * encoder.fps)):
            for layer, size in enumerate(encoder.frame_layer_sizes(frame)):
                totals[layer] += size
        rates = [total * 8 / seconds for total in totals]
        assert rates[0] == pytest.approx(400e3, rel=0.15)
        assert rates[1] == pytest.approx(4100e3, rel=0.15)
        assert rates[2] == pytest.approx(7500e3, rel=0.15)

    def test_keyframes_are_larger(self):
        encoder = SvcEncoderModel(seed=1)
        key = sum(encoder.frame_layer_sizes(0))
        predicted = sum(encoder.frame_layer_sizes(1))
        assert key > 1.5 * predicted

    def test_deterministic_random_access(self):
        a = SvcEncoderModel(seed=5)
        b = SvcEncoderModel(seed=5)
        assert a.frame_layer_sizes(17) == b.frame_layer_sizes(17)

    def test_validation(self):
        with pytest.raises(ReproError):
            SvcEncoderModel(layer_rates_bps=())
        with pytest.raises(ReproError):
            SvcEncoderModel(layer_rates_bps=(100, -5))
        with pytest.raises(ReproError):
            SvcEncoderModel(fps=0)
        with pytest.raises(ReproError):
            SvcEncoderModel().frame_layer_sizes(-1)

    def test_message_id_codec(self):
        mid = message_id_for(123, 2)
        assert frame_of_message(mid) == 123
        assert layer_of_message(mid) == 2


class TestSsimModel:
    def test_higher_layer_higher_ssim(self):
        model = SsimModel(seed=1)
        assert model.ssim(5, 2) > model.ssim(5, 0)

    def test_undecoded_frame_zero(self):
        assert SsimModel().ssim(1, -1) == 0.0

    def test_deterministic(self):
        assert SsimModel(seed=2).ssim(9, 1) == SsimModel(seed=2).ssim(9, 1)

    def test_validation(self):
        with pytest.raises(ReproError):
            SsimModel(layer_ssim=())
        with pytest.raises(ReproError):
            SsimModel(layer_ssim=(0.9, 0.5))
        with pytest.raises(ReproError):
            SsimModel(layer_ssim=(0.5, 1.5))


class TestVideoSession:
    def wide_net(self):
        # A channel comfortably wider than the 12 Mbps stream.
        return HvcNetwork(
            [fixed_embb_spec(rate_bps=mbps(50), rtt=ms(20))], steering="single"
        )

    def test_clean_network_decodes_everything_at_top_layer(self):
        result = run_video_session(self.wide_net(), duration=5.0)
        assert result.frames_sent in (150, 151)  # boundary tick may land
        assert result.frames_missing <= 2  # tail frames may be in flight
        top = sum(1 for f in result.frames if f.decoded_layer == 2)
        assert top / len(result.frames) > 0.95

    def test_latency_bounded_by_decode_wait(self):
        result = run_video_session(self.wide_net(), duration=5.0)
        cdf = result.latency_cdf()
        # Frames wait for lookahead/60 ms; latency ≈ network + wait bound.
        assert cdf.max <= 0.08 + 0.01
        assert cdf.min >= ms(10)

    def test_ssim_high_on_clean_network(self):
        result = run_video_session(self.wide_net(), duration=5.0)
        assert result.ssim_cdf().median > 0.97

    def test_narrow_channel_degrades_latency(self):
        # 8 Mbps < 12 Mbps offered: queue grows, frames arrive late.
        net = HvcNetwork(
            [fixed_embb_spec(rate_bps=mbps(8), rtt=ms(20))], steering="single"
        )
        result = run_video_session(net, duration=5.0)
        assert result.latency_cdf().percentile(95) > 0.2

    def test_priority_steering_protects_base_layer(self):
        """With eMBB squeezed, priority steering keeps base-layer latency low."""
        squeezed = [fixed_embb_spec(rate_bps=mbps(8), rtt=ms(20)), urllc_spec()]
        priority_net = HvcNetwork(squeezed, steering="priority")
        priority_result = run_video_session(priority_net, duration=5.0)
        embb_net = HvcNetwork(squeezed, steering="single")
        embb_result = run_video_session(embb_net, duration=5.0)
        assert (
            priority_result.latency_cdf().percentile(95)
            < embb_result.latency_cdf().percentile(95) / 2
        )
        # The cost: fewer top-layer decodes than a clean network would give.
        assert priority_result.ssim_cdf().mean <= 1.0
