"""Trace-to-schedule derivation and the recovery-SLO catalogue.

The load-bearing contract: derived outage intervals equal the trace's
dead intervals *exactly* (endpoints on the sample grid), and a derived
schedule survives a JSON round trip unchanged — that is what lets a
bundle or cache key carry "the weather from this trace" as primitives.
"""

import pytest

from repro.errors import ScenarioError
from repro.faults.schedule import FaultSchedule
from repro.resilience import (
    DeadInterval,
    collapse_intervals,
    dead_intervals,
    delay_spike_intervals,
    slo_for_class,
    violation_rate,
)
from repro.resilience.slo import RECOVERY_SLOS
from repro.traces.catalog import get_trace
from repro.traces.model import NetworkTrace
from repro.units import mbps, ms


def trace_with(rates, delays=None, step=1.0, name="t"):
    times = [i * step for i in range(len(rates))]
    if delays is None:
        delays = [ms(10)] * len(rates)
    return NetworkTrace(times, rates, delays, name=name)


class TestDeadIntervals:
    def test_endpoints_on_sample_grid(self):
        trace = trace_with([mbps(10), 0.0, 0.0, mbps(10), 0.0])
        dead = dead_intervals(trace)
        assert dead == [DeadInterval(1.0, 3.0), DeadInterval(4.0, 5.0)]
        assert dead[0].duration == pytest.approx(2.0)

    def test_trailing_run_ends_at_duration(self):
        trace = trace_with([mbps(10), 0.0])
        assert dead_intervals(trace) == [DeadInterval(1.0, trace.duration)]

    def test_threshold_and_validation(self):
        trace = trace_with([mbps(10), mbps(0.5), mbps(10)])
        assert dead_intervals(trace) == []
        assert dead_intervals(trace, dead_rate_bps=mbps(1)) == [
            DeadInterval(1.0, 2.0)
        ]
        with pytest.raises(ScenarioError):
            dead_intervals(trace, dead_rate_bps=-1.0)


class TestCollapseAndSpikes:
    def test_collapse_excludes_dead_and_reports_ratio(self):
        trace = trace_with([mbps(100)] * 6 + [mbps(10)] * 2 + [0.0, mbps(100)])
        collapses = collapse_intervals(trace)
        assert len(collapses) == 1
        interval, severity = collapses[0]
        assert interval == DeadInterval(6.0, 8.0)
        assert severity == pytest.approx(0.1)
        # The dead sample at t=8 belongs to dead_intervals, not collapses.
        assert dead_intervals(trace) == [DeadInterval(8.0, 9.0)]

    def test_spike_needs_factor_and_absolute_floor(self):
        delays = [ms(10)] * 6 + [ms(40), ms(40)] + [ms(10)] * 2
        trace = trace_with([mbps(50)] * 10, delays)
        spikes = delay_spike_intervals(trace)
        assert len(spikes) == 1
        interval, excess = spikes[0]
        assert interval == DeadInterval(6.0, 8.0)
        assert excess == pytest.approx(ms(30))
        # A 3x excursion on a tiny baseline is filtered by min_spike_s.
        tiny = trace_with([mbps(50)] * 4, [ms(1), ms(4), ms(1), ms(1)])
        assert delay_spike_intervals(tiny) == []

    def test_parameter_validation(self):
        trace = trace_with([mbps(10)] * 3)
        with pytest.raises(ScenarioError):
            collapse_intervals(trace, collapse_frac=1.5)
        with pytest.raises(ScenarioError):
            delay_spike_intervals(trace, delay_spike_factor=1.0)
        with pytest.raises(ScenarioError):
            delay_spike_intervals(trace, min_spike_s=0.0)


class TestFromTrace:
    def test_starlink_outages_match_dead_intervals_exactly(self):
        trace = get_trace("starlink-leo", duration=60.0)
        schedule = FaultSchedule.from_trace(trace)
        outages = [f for f in schedule if f.kind == "outage"]
        dead = dead_intervals(trace)
        assert len(outages) == len(dead) >= 3
        for fault, interval in zip(outages, dead):
            assert fault.start == interval.start
            assert fault.start + fault.duration == interval.end
            assert fault.channel == "starlink-leo"

    def test_channel_override_and_wifi_kinds(self):
        trace = get_trace("wifi-5g-handoff", duration=30.0)
        schedule = FaultSchedule.from_trace(trace, channel="embb")
        kinds = {f.kind for f in schedule}
        assert "outage" in kinds and "rtt_spike" in kinds
        assert all(f.channel == "embb" for f in schedule)

    def test_json_round_trip_is_exact(self):
        trace = get_trace("starlink-leo", duration=60.0)
        schedule = FaultSchedule.from_trace(trace)
        clone = FaultSchedule.from_json(schedule.to_json())
        assert clone.to_params() == schedule.to_params()
        assert clone.to_json() == schedule.to_json()

    def test_from_json_rejects_junk(self):
        with pytest.raises(ScenarioError):
            FaultSchedule.from_json("not json {{{")
        with pytest.raises(ScenarioError):
            FaultSchedule.from_json('{"faults": "nope"}')

    def test_clipped_drops_overhanging_faults(self):
        schedule = FaultSchedule().outage("embb", 1.0, 1.0).outage("embb", 5.0, 2.0)
        clipped = schedule.clipped(4.0)
        assert len(clipped) == 1 and clipped.faults[0].start == 1.0
        with pytest.raises(ScenarioError):
            schedule.clipped(0.0)


class TestRecoverySLOs:
    def test_catalogue_covers_every_requirement_class(self):
        from repro.steering.requirements import REQUIREMENT_CLASSES

        assert set(RECOVERY_SLOS) == set(REQUIREMENT_CLASSES)
        assert slo_for_class("latency").ttr_target_s < slo_for_class(
            "background"
        ).ttr_target_s
        with pytest.raises(ScenarioError):
            slo_for_class("best-effort-ish")

    def test_violation_rate(self):
        assert violation_rate([], 1.0) == 0.0
        assert violation_rate([0.5, 1.5, 2.5, 0.1], 1.0) == pytest.approx(0.5)
        with pytest.raises(ScenarioError):
            violation_rate([0.5], 0.0)
