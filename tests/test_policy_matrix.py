"""Safety net: every registered policy × transport actually moves bytes.

Catches registry entries that crash on real traffic (rather than only on
the synthetic views the unit tests use).
"""

import pytest

from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.steering import list_steerers
from repro.transport import next_flow_id
from repro.transport.multipath import MultipathConnection
from repro.units import kb


@pytest.mark.parametrize("policy", [p for p in list_steerers()])
def test_policy_delivers_reliable_message(policy):
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering=policy)
    done = []
    pair = net.open_connection(on_server_message=done.append)
    pair.client.send_message(kb(80), message_id=1)
    net.run(until=30.0)
    assert len(done) == 1, f"policy {policy} failed to deliver"
    assert done[0].size == kb(80)


@pytest.mark.parametrize("policy", [p for p in list_steerers()])
def test_policy_delivers_datagrams(policy):
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering=policy)
    done = []
    pair = net.open_datagram(on_server_message=done.append)
    for i in range(5):
        pair.client.send_message(kb(3), message_id=i, priority=i % 3)
    net.run(until=10.0)
    assert len(done) == 5, f"policy {policy} lost datagrams"


@pytest.mark.parametrize("scheduler", ["hvc", "minrtt"])
@pytest.mark.parametrize("cc", ["cubic", "bbr", "copa", "vegas", "vivace", "reno"])
def test_multipath_cc_matrix(scheduler, cc):
    """Every CCA runs under both multipath schedulers."""
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="single")
    done = []
    flow_id = next_flow_id()
    sender = MultipathConnection(
        net.sim, net.client, flow_id, cc=cc, scheduler=scheduler
    )
    MultipathConnection(
        net.sim, net.server, flow_id, cc=cc, scheduler=scheduler,
        on_message=done.append,
    )
    sender.send_message(kb(120), message_id=1)
    net.run(until=30.0)
    assert len(done) == 1, f"{cc}/{scheduler} failed to deliver"
