"""End-to-end steering behaviour over real channels under load."""

import pytest

from repro.apps.bulk import BulkTransfer
from repro.core.api import HvcNetwork
from repro.net.channel import ChannelSpec, DirectionSpec
from repro.net.hvc import fixed_embb_spec, urllc_spec, wifi_mlo_specs
from repro.net.loss import GilbertElliottLoss
from repro.net.tap import PacketTap
from repro.steering.redundant import RedundantSteerer
from repro.units import kb, mbps, ms


class TestDChannelShares:
    def test_bulk_bytes_dominated_by_embb(self):
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        tap = PacketTap(net)
        BulkTransfer(net, cc="cubic")
        net.run(until=10.0)
        share = tap.channel_share("send")
        assert share[0] > 10 * share.get(1, 1)

    def test_acks_dominated_by_urllc(self):
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        ack_channels = []
        net.client.on_receive_hooks.append(
            lambda p: ack_channels.append(p.channel_index)
            if p.ptype.value == "ack"
            else None
        )
        BulkTransfer(net, cc="cubic")
        net.run(until=5.0)
        urllc_fraction = ack_channels.count(1) / len(ack_channels)
        assert urllc_fraction > 0.6

    def test_urllc_queue_bounded_by_cap(self):
        """DChannel's cost rule keeps URLLC's standing queue small."""
        from repro.net.monitor import ChannelMonitor

        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        monitor = ChannelMonitor(net.sim, net.channels, period=0.05)
        BulkTransfer(net, cc="cubic")
        net.run(until=10.0)
        # Cap: ~3x base-gap of control traffic = 67 ms at 2 Mbps ≈ 17 kB,
        # plus one in-service packet.
        assert monitor["urllc"].peak_backlog_bytes("up") < 25_000


class TestRedundantEndToEnd:
    def test_replication_survives_burst_loss(self):
        a, b = wifi_mlo_specs(bad_loss=0.6)
        done_single, done_redundant = [], []
        for steering, done in (
            ("single", done_single),
            (RedundantSteerer(mode="all"), done_redundant),
        ):
            net = HvcNetwork([a, b], steering=steering, seed=3)
            pair = net.open_datagram(on_server_message=done.append)
            for i in range(200):
                pair.client.send_message(1200, message_id=i)
            net.run(until=10.0)
        assert len(done_redundant) > len(done_single)
        assert len(done_redundant) > 195


class TestPriorityUnderCompetition:
    def test_video_layer0_unharmed_by_bulk(self):
        """Priority steering: a bulk flow cannot delay layer-0 messages."""
        from repro.apps.video.session import run_video_session
        from repro.units import to_ms

        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(14)), urllc_spec()],
                         steering="priority")
        BulkTransfer(net, cc="cubic", flow_priority=1)
        result = run_video_session(net, duration=8.0)
        assert to_ms(result.latency_cdf().percentile(95)) < 150
