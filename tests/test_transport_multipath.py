"""Tests for the multipath (per-channel subflow) transport."""

import pytest

from repro.core.api import HvcNetwork
from repro.errors import TransportError
from repro.net.channel import ChannelSpec, DirectionSpec
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.net.loss import BernoulliLoss
from repro.transport import next_flow_id
from repro.transport.multipath import MultipathConnection
from repro.units import kb, mbps, ms, to_mbps


def make_mp_pair(net, scheduler="hvc", cc="cubic", on_message=None):
    flow_id = next_flow_id()
    sender = MultipathConnection(
        net.sim, net.client, flow_id, cc=cc, scheduler=scheduler
    )
    receiver = MultipathConnection(
        net.sim, net.server, flow_id, cc=cc, scheduler=scheduler, on_message=on_message
    )
    return sender, receiver


def dual_net(**kwargs):
    return HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="single", **kwargs)


class TestMultipathBasics:
    def test_message_delivered(self):
        net = dual_net()
        receipts = []
        sender, _ = make_mp_pair(net, on_message=receipts.append)
        sender.send_message(kb(50), message_id=1)
        net.run(until=5.0)
        assert len(receipts) == 1
        assert receipts[0].size == kb(50)

    def test_multiple_messages_in_order(self):
        net = dual_net()
        receipts = []
        sender, _ = make_mp_pair(net, on_message=receipts.append)
        for i in range(5):
            sender.send_message(kb(10), message_id=i)
        net.run(until=5.0)
        assert [r.message_id for r in receipts] == list(range(5))

    def test_sender_ack_callback(self):
        net = dual_net()
        acked = []
        sender, _ = make_mp_pair(net)
        sender.send_message(kb(20), message_id=7, on_acked=lambda m, t: acked.append(m.message_id))
        net.run(until=5.0)
        assert acked == [7]

    def test_rejects_unknown_scheduler(self):
        net = dual_net()
        with pytest.raises(TransportError):
            MultipathConnection(net.sim, net.client, 99, scheduler="blest")

    def test_rejects_bad_message(self):
        net = dual_net()
        sender, _ = make_mp_pair(net)
        with pytest.raises(TransportError):
            sender.send_message(0)

    def test_send_after_close_raises(self):
        net = dual_net()
        sender, _ = make_mp_pair(net)
        sender.close()
        with pytest.raises(TransportError):
            sender.send_message(100)


class TestSubflowIsolation:
    def test_rtt_samples_attributed_per_channel(self):
        """The §4 property: each subflow's RTT floor reflects its own path.

        eMBB data samples sit at or above eMBB's one-way delay plus the ACK
        return path (≥ ~27.5 ms when the ACK rides URLLC); URLLC data
        samples reach far below that floor. No cross-channel poisoning of a
        subflow's estimator is possible by construction.
        """
        net = dual_net()
        sender, _ = make_mp_pair(net, scheduler="hvc")
        sender.send_message(5_000_000, message_id=1)
        net.run(until=10.0)
        per_channel = {}
        for record in sender.stats_rtt_records:
            per_channel.setdefault(record.data_channel, []).append(record.rtt)
        assert all(rtt >= 0.027 for rtt in per_channel.get(0, []))
        if 1 in per_channel:
            assert min(per_channel[1]) < 0.025

    def test_hvc_scheduler_fills_hb_channel(self):
        net = dual_net()
        sender, _ = make_mp_pair(net, scheduler="hvc")
        sender.send_message(200_000_000, message_id=1)
        net.run(until=5.0)
        at_5s = sender.delivered_timeline[-1][1]
        net.run(until=15.0)
        achieved = (sender.delivered_timeline[-1][1] - at_5s) * 8 / 10.0
        assert to_mbps(achieved) > 50  # no Fig. 1-style collapse

    def test_minrtt_scheduler_congests_urllc(self):
        """The heterogeneity-blind baseline drives the 2 Mbps channel hard."""
        net = dual_net()
        sender, _ = make_mp_pair(net, scheduler="minrtt")
        sender.send_message(5_000_000, message_id=1)
        net.run(until=5.0)
        urllc = net.channel_named("urllc")
        assert urllc.uplink.stats.delivered > 100

    def test_hvc_reserves_urllc_for_tails(self):
        """Bulk rides eMBB; only tail/small segments use URLLC."""
        net = dual_net()
        sender, _ = make_mp_pair(net, scheduler="hvc")
        sender.send_message(2_000_000, message_id=1)
        net.run(until=10.0)
        embb = net.channel_named("embb").uplink.stats.delivered
        urllc = net.channel_named("urllc").uplink.stats.delivered
        assert embb > 20 * max(urllc, 1)


class TestMultipathRecovery:
    def test_survives_loss_on_hb_channel(self):
        lossy_embb = ChannelSpec(
            name="embb",
            up=DirectionSpec(rate_bps=mbps(60), delay=ms(25), loss=BernoulliLoss(0.05)),
            down=DirectionSpec(rate_bps=mbps(60), delay=ms(25)),
        )
        net = HvcNetwork([lossy_embb, urllc_spec()], steering="single")
        receipts = []
        sender, _ = make_mp_pair(net, on_message=receipts.append)
        sender.send_message(kb(500), message_id=1)
        net.run(until=30.0)
        assert len(receipts) == 1
        assert sender.retransmissions > 0

    def test_reinjection_can_switch_channels(self):
        """Loss repair may go out on a different subflow than the original."""
        lossy_embb = ChannelSpec(
            name="embb",
            up=DirectionSpec(rate_bps=mbps(60), delay=ms(25), loss=BernoulliLoss(0.08)),
            down=DirectionSpec(rate_bps=mbps(60), delay=ms(25)),
        )
        net = HvcNetwork([lossy_embb, urllc_spec()], steering="single")
        sender, _ = make_mp_pair(net, scheduler="hvc")
        sender.send_message(kb(800), message_id=1)
        net.run(until=30.0)
        # Retransmissions are "urgent" for the hvc scheduler → URLLC traffic.
        assert net.channel_named("urllc").uplink.stats.delivered > 0

    def test_handover_to_surviving_channel(self):
        """eMBB dies mid-transfer; the flow migrates to URLLC and finishes."""
        net = dual_net()
        receipts = []
        sender, _ = make_mp_pair(net, on_message=receipts.append)
        sender.send_message(kb(300), message_id=1)
        net.sim.schedule(0.05, lambda: net.channel_named("embb").set_up(False))
        net.run(until=40.0)
        assert len(receipts) == 1
        # Post-outage traffic rode URLLC.
        assert net.channel_named("urllc").uplink.stats.delivered > 50

    def test_channel_restored_after_handover(self):
        """eMBB flaps; throughput returns to it once it is back."""
        net = dual_net()
        sender, _ = make_mp_pair(net)
        sender.send_message(50_000_000, message_id=1)
        net.sim.schedule(1.0, lambda: net.channel_named("embb").set_up(False))
        net.sim.schedule(2.0, lambda: net.channel_named("embb").set_up(True))
        net.run(until=3.0)
        before = net.channel_named("embb").uplink.stats.delivered
        net.run(until=6.0)
        assert net.channel_named("embb").uplink.stats.delivered > before + 500

    def test_rto_recovers_total_ack_blackout(self):
        deaf = ChannelSpec(
            name="embb",
            up=DirectionSpec(rate_bps=mbps(60), delay=ms(25)),
            down=DirectionSpec(rate_bps=mbps(60), delay=ms(25), loss=BernoulliLoss(0.5)),
        )
        # Only one channel: even ACKs are lossy; RTO must save the transfer.
        net = HvcNetwork([deaf], steering="single")
        receipts = []
        sender, _ = make_mp_pair(net, on_message=receipts.append)
        sender.send_message(kb(5), message_id=1)
        net.run(until=60.0)
        assert len(receipts) == 1
