"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.kernel import Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, fired.append, (2,))
        queue.push(1.0, fired.append, (1,))
        queue.push(3.0, fired.append, (3,))
        order = [queue.pop().time for _ in range(3)]
        assert order == [1.0, 2.0, 3.0]

    def test_fifo_among_simultaneous_events(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(1.0, lambda: None)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        doomed = queue.push(1.0, lambda: None)
        survivor = queue.push(2.0, lambda: None)
        doomed.cancel()
        queue.notify_cancelled()
        assert queue.pop() is survivor

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        queue.notify_cancelled()
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        doomed = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        doomed.cancel()
        queue.notify_cancelled()
        assert queue.peek_time() == 5.0

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_cancel_without_notify_updates_len(self):
        # cancel() does its own bookkeeping; notify_cancelled() is optional.
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_len(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop() is event
        event.cancel()  # already delivered; must not decrement again
        assert len(queue) == 1

    def test_pop_next_returns_due_event(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        assert queue.pop_next(until=2.0) is event
        assert len(queue) == 0

    def test_pop_next_leaves_future_events_queued(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        assert queue.pop_next(until=2.0) is None
        assert len(queue) == 1
        assert queue.peek_time() == 5.0

    def test_pop_next_boundary_is_inclusive(self):
        queue = EventQueue()
        event = queue.push(2.0, lambda: None)
        assert queue.pop_next(until=2.0) is event

    def test_pop_next_without_bound_pops_everything(self):
        queue = EventQueue()
        queue.push(3.0, lambda: None)
        queue.push(1.0, lambda: None)
        times = [queue.pop_next().time for _ in range(2)]
        assert times == [1.0, 3.0]
        assert queue.pop_next() is None

    def test_pop_next_skips_cancelled_before_bound_check(self):
        queue = EventQueue()
        doomed = queue.push(1.0, lambda: None)
        survivor = queue.push(1.5, lambda: None)
        doomed.cancel()
        assert queue.pop_next(until=2.0) is survivor
        assert len(queue) == 0


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_at_their_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_does_not_fire_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append("late"))
        sim.run(until=2.0)
        assert seen == []
        assert sim.now == 2.0
        sim.run(until=6.0)
        assert seen == ["late"]

    def test_schedule_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append(1))
        sim.cancel(event)
        sim.run()
        assert seen == []
        assert sim.pending_events == 0

    def test_double_cancel_is_safe(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending_events == 0

    def test_stop_halts_processing(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    # -- regression: run(until=..., max_events=...) used to fast-forward the
    # clock to `until` even when the max_events break left events pending,
    # so the next run() moved the clock backwards. ------------------------

    def test_max_events_break_does_not_fast_forward_clock(self):
        sim = Simulator()
        for i in range(1, 11):
            sim.schedule(float(i), lambda: None)
        sim.run(until=20.0, max_events=3)
        # Events at t=4..10 are still pending: the clock must sit at the
        # last processed event, not jump to the bound.
        assert sim.now == 3.0
        assert sim.pending_events == 7

    def test_clock_is_monotonic_across_resumptions(self):
        sim = Simulator()
        fired = []
        for i in range(1, 11):
            sim.schedule(float(i), fired.append, float(i))
        observed = []
        while sim.pending_events:
            sim.run(until=20.0, max_events=3)
            observed.append(sim.now)
        assert observed == sorted(observed)
        assert fired == [float(i) for i in range(1, 11)]
        # Only the final, fully-drained run may fast-forward to the bound.
        assert sim.now == 20.0

    def test_callbacks_never_observe_backwards_clock(self):
        sim = Simulator()
        stamps = []
        for i in range(1, 6):
            sim.schedule(float(i), lambda: stamps.append(sim.now))
        sim.run(until=50.0, max_events=2)
        sim.run(until=50.0)
        assert stamps == sorted(stamps)
        assert stamps == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_does_not_fast_forward_clock(self):
        sim = Simulator()
        sim.schedule(1.0, sim.stop)
        sim.schedule(5.0, lambda: None)
        sim.run(until=20.0)
        assert sim.now == 1.0
        sim.run(until=20.0)
        assert sim.now == 20.0

    def test_args_are_passed(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.1, lambda a, b: seen.append((a, b)), 1, 2)
        sim.run()
        assert seen == [(1, 2)]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(1.0, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b"]
