"""Smoke-scale tests for the experiment harness (full scale runs in benchmarks/)."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.fig1 import run_fig1a, run_fig1b, run_single_cca
from repro.experiments.fig2 import run_fig2_cell, video_network
from repro.experiments.table1 import run_table1_cell, web_network
from repro.units import to_mbps


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1a",
            "fig1b",
            "fig2",
            "table1",
            "ab-cc",
            "ab-ack",
            "ab-mlo",
            "ab-cost",
            "ab-mp",
            "ab-reseq",
            "ab-tsn",
            "baselines",
            "cc-matrix",
            "ablate",
            "faults",
            "resilience",
            "fleet",
            "sweep-urllc-bw",
            "sweep-threshold",
            "sweep-urllc-rtt",
            "sweep-decode-wait",
        }


class TestFig1Harness:
    def test_single_cca_runs(self):
        bulk = run_single_cca("cubic", duration=3.0)
        assert bulk.bytes_acked > 0

    def test_fig1a_smoke(self):
        result = run_fig1a(duration=5.0, ccas=("cubic", "vegas"))
        assert "cubic" in result.values and "vegas" in result.values
        assert result.values["cubic"] > result.values["vegas"]
        text = result.render()
        assert "Fig. 1a" in text

    def test_fig1b_smoke(self):
        result = run_fig1b(duration=8.0)
        assert result.values["samples"] > 50
        assert result.values["min_rtt_ms"] < result.values["max_rtt_ms"]
        assert result.series[0].series["rtt"]

    def test_steering_hurts_delay_based_cca(self):
        """The experiment's core claim at smoke scale: single channel fine,
        steered channels collapse, for a delay-based CCA."""
        steered = run_single_cca("vegas", duration=8.0)
        clean = run_single_cca("vegas", duration=8.0, steering="single")
        steered_mbps = to_mbps(steered.mean_throughput_bps(start=2.0, end=8.0))
        clean_mbps = to_mbps(clean.mean_throughput_bps(start=2.0, end=8.0))
        assert clean_mbps > 2 * steered_mbps


class TestFig2Harness:
    def test_network_channels_named(self):
        net = video_network("5g-lowband-driving", "priority")
        assert net.channel_named("embb") is not None
        assert net.channel_named("urllc") is not None

    def test_cell_smoke(self):
        cell = run_fig2_cell("5g-lowband-driving", "priority", duration=4.0)
        assert cell.frames_sent >= 119
        assert len(cell.frames) > 100
        assert cell.latency_cdf().min > 0

    def test_embb_only_uses_one_channel(self):
        net = video_network("5g-lowband-driving", "embb-only")
        from repro.apps.video.session import run_video_session

        run_video_session(net, duration=2.0)
        assert net.channel_named("urllc").uplink.stats.delivered == 0

    def test_priority_splits_layers(self):
        net = video_network("5g-lowband-driving", "priority")
        from repro.apps.video.session import run_video_session

        run_video_session(net, duration=2.0)
        assert net.channel_named("urllc").uplink.stats.delivered > 0
        assert net.channel_named("embb").uplink.stats.delivered > 0


class TestBaselinesAndSweeps:
    def test_baselines_smoke(self):
        from repro.experiments.baselines import run_baselines

        result = run_baselines(policies=("embb-only", "dchannel"), page_count=2)
        assert set(result.values) == {"embb-only", "dchannel"}
        assert "Policy zoo" in result.render()

    def test_sweep_smoke(self):
        from repro.experiments.sensitivity import run_urllc_rtt_sweep

        result = run_urllc_rtt_sweep(rtts_ms=(2.0, 30.0), page_count=2)
        assert set(result.values) == {"2.0", "30.0"}


class TestTable1Harness:
    def test_cell_smoke(self):
        from repro.apps.web.corpus import generate_corpus

        pages = generate_corpus(count=2, seed=3)
        plts = run_table1_cell("stationary", "dchannel", pages=pages)
        assert len(plts) == 2
        assert all(0 < plt < 45.0 for plt in plts)

    def test_network_built_with_trace(self):
        net = web_network("5g-lowband-driving", "dchannel")
        embb = net.channel_named("embb")
        assert embb.uplink.spec.trace is not None
