"""Tests for trace summaries, the obs CLI, and counter reconciliation.

The headline acceptance check lives here: ``repro obs summarize`` must
reproduce the live ChannelMonitor's per-channel utilization from an
exported trace alone, and the obs counters (both the pull-collected
``link.*`` family and the push-incremented ``trace.link.*`` family) must
reconcile exactly with ``LinkStats`` on mixed workloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import HvcNetwork
from repro.apps.bulk import BulkTransfer
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.obs import Observability, TraceSummary, summarize, summarize_file
from repro.obs.cli import main as obs_main
from repro.units import kb


def traced_bulk_net(duration=6.0, steering="dchannel", cc="cubic"):
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering=steering)
    obs = net.attach_obs(Observability(tracing=True))
    BulkTransfer(net, cc=cc)
    net.run(until=duration)
    return net, obs


class TestMonitorEquivalence:
    def test_summary_utilization_matches_live_monitor(self, tmp_path):
        net, obs = traced_bulk_net()
        path = tmp_path / "bulk.jsonl"
        obs.export_jsonl(path)
        summary = summarize_file(path)
        monitor = net.obs_monitor
        for channel in net.channels:
            for direction in ("up", "down"):
                live = monitor[channel.name].utilization(direction)
                from_trace = summary.utilization(channel.name, direction)
                # Identical math over identical samples: exact, not approx.
                assert from_trace == live, (channel.name, direction)

    def test_summary_link_counts_match_stats(self):
        net, obs = traced_bulk_net()
        summary = summarize(obs)
        for channel in net.channels:
            for direction, link in (("up", channel.uplink), ("down", channel.downlink)):
                counts = summary.link_counts[(channel.name, direction)]
                assert counts["delivered"] == link.stats.delivered
                assert counts["bytes_delivered"] == link.stats.bytes_delivered
                drops = (
                    counts["drop_overflow"] + counts["drop_loss"] + counts["drop_down"]
                )
                assert drops == link.stats.overflow_drops + link.stats.lost

    def test_latency_spans_positive_and_ordered(self):
        _net, obs = traced_bulk_net(duration=4.0)
        summary = summarize(obs)
        embb_up = summary.latencies[("embb", "up")]
        assert embb_up
        assert all(lat > 0 for lat in embb_up)
        assert embb_up == sorted(embb_up)

    def test_to_dict_and_render_cover_all_sections(self):
        _net, obs = traced_bulk_net(duration=4.0)
        summary = summarize(obs)
        data = summary.to_dict()
        assert data["meta"]["version"] == 1
        assert any(key.startswith("embb/") for key in data["channels"])
        assert data["connections"]
        assert data["steering"]
        text = summary.render()
        for section in ("per-channel links:", "per-connection transport probes:",
                        "steering decisions"):
            assert section in text

    def test_empty_trace_summary(self):
        summary = TraceSummary([])
        assert summary.utilization("embb") == 0.0
        assert summary.to_dict()["channels"] == {}


class TestObsCli:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        _net, obs = traced_bulk_net(duration=3.0)
        path = tmp_path / "trace.jsonl"
        obs.export_jsonl(path)
        return path

    def test_summarize_renders(self, trace_path, capsys):
        assert obs_main(["summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "per-channel links:" in out
        assert "util=" in out

    def test_summarize_json(self, trace_path, capsys):
        import json

        assert obs_main(["summarize", str(trace_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "channels" in data

    def test_validate_ok(self, trace_path, capsys):
        assert obs_main(["validate", str(trace_path)]) == 0
        assert "schema valid" in capsys.readouterr().out

    def test_validate_bad_trace_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "nope", "time": 0.0}\n')
        assert obs_main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_repro_module_dispatches_obs(self, trace_path, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["obs", "validate", str(trace_path)]) == 0
        assert "schema valid" in capsys.readouterr().out


class TestCounterReconciliation:
    """Property: obs counters == LinkStats totals on mixed workloads."""

    @staticmethod
    def _reconcile(net, obs):
        registry = obs.registry
        for channel in net.channels:
            for direction, link in (("up", channel.uplink), ("down", channel.downlink)):
                labels = {"channel": channel.name, "direction": direction}
                stats = link.stats
                # Pull family: collectors sync from LinkStats.
                assert registry.value("link.offered", **labels) == stats.sent
                assert registry.value("link.delivered", **labels) == stats.delivered
                assert registry.value("link.lost", **labels) == stats.lost
                assert (
                    registry.value("link.overflow_drops", **labels)
                    == stats.overflow_drops
                )
                assert (
                    registry.value("link.bytes_delivered", **labels)
                    == stats.bytes_delivered
                )
                # Push family: LinkObs incremented these per event.
                assert registry.value("trace.link.offered", **labels) == stats.sent
                assert (
                    registry.value("trace.link.delivered", **labels)
                    == stats.delivered
                )
                assert registry.value("trace.link.lost", **labels) == stats.lost
                assert (
                    registry.value("trace.link.overflow_drops", **labels)
                    == stats.overflow_drops
                )
                assert (
                    registry.value("trace.link.bytes_delivered", **labels)
                    == stats.bytes_delivered
                )

    @settings(max_examples=8, deadline=None)
    @given(
        message_kb=st.integers(min_value=5, max_value=120),
        datagram_kb=st.integers(min_value=1, max_value=30),
        cc=st.sampled_from(["cubic", "bbr", "vegas"]),
        steering=st.sampled_from(["dchannel", "round-robin", "redundant"]),
        flap_urllc=st.booleans(),
    )
    def test_mixed_workload_reconciles(
        self, message_kb, datagram_kb, cc, steering, flap_urllc
    ):
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering=steering)
        obs = net.attach_obs(Observability(tracing=True))
        received = []
        pair = net.open_connection(cc=cc, on_server_message=received.append)
        dgram = net.open_datagram()
        pair.client.send_message(kb(message_kb), message_id=1)
        dgram.client.send_message(kb(datagram_kb), message_id=2)
        if flap_urllc:
            net.sim.schedule(0.2, lambda: net.channel_named("urllc").set_up(False))
            net.sim.schedule(1.0, lambda: net.channel_named("urllc").set_up(True))
        net.run(until=15.0)
        assert received  # the reliable message completed
        self._reconcile(net, obs)
        # Device totals reconcile through the pull collectors too.
        for device in (net.client, net.server):
            for metric, attr in (
                ("device.packets_sent", "packets_sent"),
                ("device.packets_received", "packets_received"),
                ("device.bytes_sent", "bytes_sent"),
                ("device.bytes_received", "bytes_received"),
            ):
                assert obs.registry.value(metric, host=device.name) == getattr(
                    device.stats, attr
                )

    def test_lossy_channel_reconciles(self):
        from repro.net.hvc import leo_spec

        net = HvcNetwork([leo_spec(loss_rate=0.05)], steering="single")
        obs = net.attach_obs(Observability(tracing=True))
        received = []
        pair = net.open_connection(cc="cubic", on_server_message=received.append)
        pair.client.send_message(kb(150), message_id=1)
        net.run(until=20.0)
        assert received
        assert any(
            ch.uplink.stats.lost + ch.downlink.stats.lost > 0 for ch in net.channels
        )
        self._reconcile(net, obs)
