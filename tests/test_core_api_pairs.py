"""Tests for HvcNetwork pair handles and misc API surface."""

import pytest

from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.units import kb


def net():
    return HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")


class TestPairs:
    def test_connection_pair_close_closes_both(self):
        network = net()
        pair = network.open_connection()
        pair.client.send_message(kb(50))
        network.run(until=0.02)
        pair.close()
        network.run(until=10.0)
        assert network.sim.pending_events == 0

    def test_datagram_pair_close(self):
        network = net()
        pair = network.open_datagram()
        pair.client.send_message(kb(2), message_id=1)
        network.run(until=1.0)
        pair.close()
        from repro.errors import TransportError

        with pytest.raises(TransportError):
            pair.client.send_message(kb(1), message_id=2)

    def test_on_client_message_direction(self):
        network = net()
        got = []
        pair = network.open_connection(on_client_message=got.append)
        pair.server.send_message(kb(10), message_id=42)
        network.run(until=5.0)
        assert [r.message_id for r in got] == [42]

    def test_datagram_both_directions(self):
        network = net()
        to_server, to_client = [], []
        pair = network.open_datagram(
            on_server_message=to_server.append, on_client_message=to_client.append
        )
        pair.client.send_message(kb(1), message_id=1)
        pair.server.send_message(kb(1), message_id=2)
        network.run(until=2.0)
        assert [m.message_id for m in to_server] == [1]
        assert [m.message_id for m in to_client] == [2]

    def test_resequence_flag_disables_buffers(self):
        plain = HvcNetwork(
            [fixed_embb_spec()], steering="single", resequence=False
        )
        assert plain.client.resequencer is None
        assert plain.server.resequencer is None
        buffered = net()
        assert buffered.client.resequencer is not None
