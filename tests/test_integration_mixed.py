"""Integration tests: multiple applications competing over one channel set.

The paper's §3.3 punchline is about *competition* — steering must arbitrate
a scarce channel across flows. These tests run the actual application mixes
end-to-end.
"""

import pytest

from repro.apps.bulk import BulkTransfer
from repro.apps.video.session import VideoSession
from repro.apps.web.background import BackgroundFlows
from repro.apps.web.browser import load_page
from repro.apps.web.corpus import generate_page
from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, traced_embb_spec, urllc_spec
from repro.net.monitor import ChannelMonitor
from repro.traces.catalog import get_trace
from repro.transport import next_flow_id
from repro.transport.connection import Connection
from repro.transport.multipath import MultipathConnection
from repro.units import kb, mbps, ms, to_ms


def driving_net(steering, seed=0):
    trace = get_trace("5g-lowband-driving", seed=seed + 1)
    embb = traced_embb_spec(trace)
    embb.name = "embb"
    return HvcNetwork([embb, urllc_spec()], steering=steering, seed=seed)


class TestVideoPlusWeb:
    def test_video_and_page_load_coexist(self):
        """A video stream and a page load share the channels; both finish."""
        net = driving_net("priority")
        session = VideoSession(net, duration=8.0)
        net.run(until=1.0)
        page = generate_page("mixed", seed=11)
        result = load_page(net, page, cc="cubic", timeout=30.0)
        assert result.complete
        net.run(until=10.0)
        video = session.result()
        assert video.frames_decoded > 0.9 * video.frames_sent

    def test_priority_steering_keeps_video_timely_under_web_load(self):
        """Web traffic on eMBB must not destroy the video's latency tail."""
        net = driving_net("priority")
        session = VideoSession(net, duration=10.0)
        net.run(until=0.5)
        load_page(net, generate_page("noise", seed=3), cc="cubic", timeout=20.0)
        net.run(until=12.0)
        result = session.result()
        assert to_ms(result.latency_cdf().percentile(95)) < 400


class TestBulkPlusInteractive:
    def test_bulk_flow_does_not_starve_urllc_for_web(self):
        """Table-1 logic with a bulk flow: the flow-priority filter keeps
        the page's URLLC access even while a bulk flow runs."""
        net = driving_net("dchannel+flowprio")
        BulkTransfer(net, cc="cubic", flow_priority=2)
        net.run(until=1.0)
        page = generate_page("p", seed=4)
        result = load_page(net, page, cc="cubic", timeout=30.0)
        assert result.complete
        urllc = net.channel_named("urllc")
        assert urllc.uplink.stats.delivered + urllc.downlink.stats.delivered > 0

    def test_monitor_sees_background_squatting(self):
        """Channel monitoring quantifies what background flows do to URLLC."""
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        monitor = ChannelMonitor(net.sim, net.channels, period=0.1)
        BackgroundFlows(net)
        net.run(until=5.0)
        assert monitor["urllc"].utilization("up") > 0.05


class TestMultipathCoexistence:
    def test_multipath_and_singlepath_share_channels(self):
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        mp_done, sp_done = [], []
        mp_id = next_flow_id()
        mp_tx = MultipathConnection(net.sim, net.client, mp_id, scheduler="hvc")
        MultipathConnection(
            net.sim, net.server, mp_id, scheduler="hvc", on_message=mp_done.append
        )
        sp = net.open_connection(on_server_message=sp_done.append)
        mp_tx.send_message(kb(400), message_id=1)
        sp.client.send_message(kb(400), message_id=2)
        net.run(until=20.0)
        assert len(mp_done) == 1 and len(sp_done) == 1

    def test_many_flows_deterministic(self):
        """A 6-flow mix is exactly reproducible for a fixed seed."""

        def run_once():
            net = driving_net("dchannel", seed=9)
            done = []
            for i in range(6):
                pair = net.open_connection(on_server_message=done.append)
                pair.client.send_message(kb(50 + 10 * i), message_id=i)
            net.run(until=10.0)
            return sorted((r.message_id, r.completed_at) for r in done)

        first = run_once()
        second = run_once()
        assert first == second
        assert len(first) == 6


class TestStressShapes:
    def test_twenty_concurrent_transfers_complete(self):
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        done = []
        for i in range(20):
            pair = net.open_connection(on_server_message=done.append)
            pair.client.send_message(kb(100), message_id=i)
        net.run(until=30.0)
        assert sorted(r.message_id for r in done) == list(range(20))

    def test_long_run_conserves_packets(self):
        """No packet is created or destroyed unaccounted across a long mix."""
        net = driving_net("dchannel", seed=2)
        BackgroundFlows(net)
        BulkTransfer(net, cc="cubic")
        net.run(until=20.0)
        for channel in net.channels:
            for link in (channel.uplink, channel.downlink):
                sent = link.stats.sent
                accounted = (
                    link.stats.delivered
                    + link.stats.lost
                    + link.stats.overflow_drops
                    + len(link.queue)
                    + (1 if link._serving is not None else 0)
                )
                # Packets propagating (serialized, not yet delivered) are
                # the only legitimate remainder.
                in_flight = sent - accounted
                assert 0 <= in_flight < 200
