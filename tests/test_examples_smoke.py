"""Smoke tests: the example scripts stay runnable.

Only the fast examples run here (the slower, trace-driven ones are
exercised through the experiments they share code with).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = ["quickstart.py", "cost_aware_wan.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    completed = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_all_examples_importable():
    """Every example parses and imports (without running main)."""
    import importlib.util

    for name in sorted(os.listdir(EXAMPLES_DIR)):
        if not name.endswith(".py"):
            continue
        path = os.path.join(EXAMPLES_DIR, name)
        spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), f"{name} has no main()"
