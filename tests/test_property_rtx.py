"""Property-based tests for the RFC 6298 RTT estimator (hypothesis).

These pin the estimator's *invariants* rather than specific trajectories:
whatever interleaving of samples and timeouts the network produces, the
RTO stays inside its configured bounds, backoff behaves monotonically and
resets on fresh evidence, and the filter state stays finite.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.transport.rtx import MAX_BACKOFF, RttEstimator

#: Plausible simulated RTTs: 10 µs to 100 s.
rtts = st.floats(min_value=1e-5, max_value=100.0, allow_nan=False, allow_infinity=False)

#: An operation stream: an RTT sample, or a timeout (None).
ops = st.lists(st.one_of(rtts, st.none()), max_size=80)


def apply_ops(estimator, stream):
    for op in stream:
        if op is None:
            estimator.on_timeout()
        else:
            estimator.on_sample(op)


class TestRtoBounds:
    @given(stream=ops)
    @settings(max_examples=200, deadline=None)
    def test_rto_always_within_bounds(self, stream):
        est = RttEstimator(min_rto=0.2, max_rto=60.0)
        apply_ops(est, stream)
        assert 0.2 <= est.rto <= 60.0

    @given(stream=ops, min_rto=st.floats(min_value=1e-3, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_rto_respects_configured_floor(self, stream, min_rto):
        est = RttEstimator(min_rto=min_rto, max_rto=min_rto * 100)
        apply_ops(est, stream)
        assert min_rto <= est.rto <= min_rto * 100


class TestBackoff:
    @given(stream=ops, timeouts=st.integers(min_value=1, max_value=12))
    @settings(max_examples=100, deadline=None)
    def test_backoff_monotone_under_consecutive_timeouts(self, stream, timeouts):
        est = RttEstimator()
        apply_ops(est, stream)
        previous_rto = est.rto
        previous_backoff = est.backoff
        for _ in range(timeouts):
            est.on_timeout()
            assert est.backoff >= previous_backoff
            assert est.rto >= min(previous_rto, est.max_rto)
            assert est.backoff <= MAX_BACKOFF
            previous_backoff = est.backoff
            previous_rto = est.rto

    @given(stream=ops, rtt=rtts)
    @settings(max_examples=100, deadline=None)
    def test_fresh_sample_resets_backoff(self, stream, rtt):
        est = RttEstimator()
        apply_ops(est, stream)
        est.on_timeout()
        est.on_sample(rtt)
        assert est.backoff == 1.0
        assert est.consecutive_timeouts == 0

    @given(stream=ops)
    @settings(max_examples=100, deadline=None)
    def test_reset_backoff_clears_without_sample(self, stream):
        est = RttEstimator()
        apply_ops(est, stream)
        srtt_before = est.srtt
        est.reset_backoff()
        assert est.backoff == 1.0
        assert est.consecutive_timeouts == 0
        assert est.srtt == srtt_before  # no sample was injected


class TestFilterState:
    @given(stream=ops)
    @settings(max_examples=200, deadline=None)
    def test_state_stays_finite(self, stream):
        est = RttEstimator()
        apply_ops(est, stream)
        for value in (est.srtt, est.rttvar, est.min_rtt, est.latest_rtt):
            if value is not None:
                assert math.isfinite(value)
                assert value >= 0
        assert math.isfinite(est.rto)

    @given(samples=st.lists(rtts, min_size=1, max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_min_rtt_is_true_minimum(self, samples):
        est = RttEstimator()
        for sample in samples:
            est.on_sample(sample)
        assert est.min_rtt == min(samples)
        assert est.samples == len(samples)

    @given(samples=st.lists(rtts, min_size=1, max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_srtt_within_sample_envelope(self, samples):
        est = RttEstimator()
        for sample in samples:
            est.on_sample(sample)
        assert min(samples) <= est.srtt <= max(samples)
