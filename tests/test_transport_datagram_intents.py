"""Tests for the datagram socket and the intents interface."""

import pytest

from repro.errors import TransportError
from repro.net.channel import ChannelSpec, DirectionSpec
from repro.net.loss import BernoulliLoss
from repro.transport.datagram import DatagramSocket
from repro.transport.intents import Intent, open_connection, open_datagram
from repro.units import mbps, ms

from tests.conftest import make_pair


def make_dgram_pair(sim, specs=None, on_message=None, **kwargs):
    if specs is None:
        specs = [ChannelSpec.symmetric("c", mbps(20), ms(10))]
    client, server, channels = make_pair(sim, specs)
    tx = DatagramSocket(sim, client, 1, **kwargs)
    rx = DatagramSocket(sim, server, 1, on_message=on_message)
    return tx, rx, channels


class TestDatagramSocket:
    def test_message_reassembled(self, sim):
        done = []
        tx, rx, _ = make_dgram_pair(sim, on_message=done.append)
        packets = tx.send_message(10_000, message_id=5, priority=0)
        sim.run(until=2.0)
        assert packets == 7  # ceil(10000 / 1460)
        assert len(done) == 1
        assert done[0].message_id == 5
        assert done[0].priority == 0
        assert done[0].bytes_received == 10_000
        assert done[0].complete

    def test_single_packet_message(self, sim):
        done = []
        tx, _, _ = make_dgram_pair(sim, on_message=done.append)
        assert tx.send_message(500, message_id=1) == 1
        sim.run(until=1.0)
        assert done[0].total_bytes == 500

    def test_latency_measured_from_send(self, sim):
        done = []
        tx, _, _ = make_dgram_pair(sim, on_message=done.append)
        sim.schedule(1.0, lambda: tx.send_message(1_000, message_id=1))
        sim.run(until=3.0)
        msg = done[0]
        assert msg.sent_at == pytest.approx(1.0)
        assert msg.completed_at - msg.sent_at == pytest.approx(ms(10) + 1040 * 8 / mbps(20))

    def test_lost_packet_means_incomplete(self, sim):
        lossy = ChannelSpec(
            name="lossy",
            up=DirectionSpec(rate_bps=mbps(20), delay=ms(10), loss=BernoulliLoss(0.5)),
            down=DirectionSpec(rate_bps=mbps(20), delay=ms(10)),
        )
        done = []
        tx, rx, _ = make_dgram_pair(sim, specs=[lossy], on_message=done.append)
        for i in range(20):
            tx.send_message(15_000, message_id=i)
        sim.run(until=5.0)
        assert len(done) < 20  # with 50% loss some message loses a packet
        assert rx.stats.messages_completed == len(done)

    def test_no_duplicate_completion(self, sim):
        done = []
        tx, _, _ = make_dgram_pair(sim, on_message=done.append)
        tx.send_message(1_000, message_id=1)
        tx.send_message(1_000, message_id=2)
        sim.run(until=2.0)
        assert sorted(m.message_id for m in done) == [1, 2]

    def test_discard_before_drops_stale_state(self, sim):
        tx, rx, _ = make_dgram_pair(sim)
        tx.send_message(1_000, message_id=1)
        tx.send_message(1_000, message_id=5)
        sim.run(until=2.0)
        rx.discard_before(5)
        assert list(rx.pending_messages()) == [5]

    def test_rejects_bad_sizes(self, sim):
        tx, _, _ = make_dgram_pair(sim)
        with pytest.raises(TransportError):
            tx.send_message(0, message_id=1)
        with pytest.raises(TransportError):
            DatagramSocket(sim, tx.device, 9, mtu_payload=0)

    def test_send_after_close_raises(self, sim):
        tx, _, _ = make_dgram_pair(sim)
        tx.close()
        with pytest.raises(TransportError):
            tx.send_message(100, message_id=1)


class TestIntents:
    def test_category_priorities(self):
        assert Intent(category="interactive").resolved_priority() == 0
        assert Intent(category="realtime").resolved_priority() == 0
        assert Intent(category="bulk").resolved_priority() == 1
        assert Intent(category="background").resolved_priority() == 2

    def test_explicit_priority_overrides(self):
        assert Intent(category="background", flow_priority=0).resolved_priority() == 0

    def test_unknown_category_raises(self):
        with pytest.raises(TransportError):
            Intent(category="turbo").resolved_priority()

    def test_open_connection_applies_tags(self, sim):
        client, server, _ = make_pair(
            sim, [ChannelSpec.symmetric("c", mbps(20), ms(10))]
        )
        conn = open_connection(sim, client, Intent(category="background"), flow_id=4)
        assert conn.flow_priority == 2
        assert conn.flow_id == 4
        # Packets inherit the tag.
        peer = open_connection(sim, server, Intent(), flow_id=4)
        seen = []
        server.on_receive_hooks.append(lambda p: seen.append(p.flow_priority))
        conn.send_message(1_000)
        sim.run(until=2.0)
        assert 2 in seen

    def test_open_datagram_applies_tags(self, sim):
        client, _, _ = make_pair(sim, [ChannelSpec.symmetric("c", mbps(20), ms(10))])
        sock = open_datagram(sim, client, Intent(category="realtime"), flow_id=8)
        assert sock.flow_priority == 0

    def test_auto_flow_ids_unique(self, sim):
        client, _, _ = make_pair(sim, [ChannelSpec.symmetric("c", mbps(20), ms(10))])
        a = open_datagram(sim, client, Intent())
        b = open_datagram(sim, client, Intent())
        assert a.flow_id != b.flow_id
