"""Property suite for the hybrid-fidelity equivalence gate.

The gate's promise is distributional: for *any* small tenant population
(the regime where full packet-level simulation is affordable), the fluid
engine's FCT distribution and per-channel utilization track the packet
engine within :class:`~repro.fleet.validation.ValidationTolerance`.
Hypothesis explores the population space — flow count, transfer-size
scale, seed, preset — instead of the handful of hand-picked cases the
unit tests cover.

The suite is derandomized and example-capped: each example runs two full
simulations, so this is a bounded sweep (deterministic in CI), not an
open-ended fuzz. Lossy presets (``mlo``'s Gilbert-Elliott channels) are
deliberately excluded — retransmission tails are outside the documented
fidelity boundary (see docs/ARCHITECTURE.md).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fleet import check_equivalence, run_equivalence_case
from repro.fleet.validation import ValidationTolerance

GATE_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@GATE_SETTINGS
@given(
    flows=st.integers(min_value=20, max_value=90),
    seed=st.integers(min_value=0, max_value=10_000),
    preset=st.sampled_from(["small", "paper", "wan"]),
)
def test_gate_holds_across_populations(flows, seed, preset):
    report = run_equivalence_case(
        flows=flows, duration=10.0, seed=seed, preset=preset
    )
    violations = check_equivalence(report)
    assert not violations, (
        f"equivalence gate failed for flows={flows} seed={seed} "
        f"preset={preset}: {violations} (deltas {report['deltas']})"
    )


@GATE_SETTINGS
@given(
    mean_size=st.floats(min_value=1_500.0, max_value=40_000.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_gate_holds_across_transfer_scales(mean_size, seed):
    """Size scale moves flows between the 1-RTT and multi-RTT regimes."""
    report = run_equivalence_case(
        flows=50, duration=10.0, seed=seed, mean_size=mean_size
    )
    violations = check_equivalence(report)
    assert not violations, (
        f"equivalence gate failed for mean_size={mean_size:.0f} seed={seed}: "
        f"{violations} (deltas {report['deltas']})"
    )


@GATE_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_both_engines_complete_everything(seed):
    """10s is ample for 40 small flows — neither engine may strand any."""
    report = run_equivalence_case(flows=40, duration=10.0, seed=seed)
    assert report["deltas"]["completion_full"] == 1.0
    assert report["deltas"]["completion_hybrid"] == 1.0


def test_gate_detects_a_broken_model():
    """The gate must not be vacuous: absurd tolerances flag violations."""
    report = run_equivalence_case(flows=40, duration=10.0, seed=0)
    strict = ValidationTolerance(
        fct_p50_rel=0.0, fct_p90_rel=0.0, fct_abs_grace=0.0, util_abs=0.0
    )
    assert check_equivalence(report, strict), (
        "zero tolerance passed — the deltas are implausibly exactly zero"
    )


@pytest.mark.parametrize("use_numpy", [False])
def test_gate_holds_on_python_backend(use_numpy):
    report = run_equivalence_case(
        flows=40, duration=10.0, seed=5, use_numpy=use_numpy
    )
    assert not check_equivalence(report)
