"""Batch-dispatch surfaces: ``pop_bucket``, bulk scheduling, sweeps.

Complements ``test_sim_wheel.py`` (which proves the batch loop's
dispatch *order* equals the per-event and heap references): these tests
pin the batch-granularity APIs themselves — the materialized-bucket pop,
the bulk transient feed, pool recycling through the fast loop, the O(1)
entry counter, the compiled-core selector, and the link serialization
sweeps built on top of them.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.net.link import (
    SWEEP_MAX,
    SWEEP_MIN_QUEUED,
    SWEEP_NUMPY_MIN,
    Link,
    LinkBatch,
    LinkSpec,
)
from repro.net.loss import BernoulliLoss
from repro.net.packet import Packet, PacketType
from repro.sim.events import COMPACT_MIN_DEAD, EventQueue
from repro.sim.kernel import Simulator

SRC = Path(__file__).resolve().parents[1] / "src"


def _noop():
    return None


# ----------------------------------------------------------------------
# pop_bucket
# ----------------------------------------------------------------------
class TestPopBucket:
    def test_returns_sorted_same_bucket_run(self):
        queue = EventQueue()
        events = [queue.push(0.0005, _noop) for _ in range(5)]
        batch = queue.pop_bucket()
        assert batch == events
        assert len(queue) == 0

    def test_stops_at_bucket_boundary(self):
        queue = EventQueue()
        first = queue.push(0.0004, _noop)
        nxt = queue.push(0.0014, _noop)  # next 1ms bucket
        assert queue.pop_bucket() == [first]
        assert queue.pop_bucket() == [nxt]

    def test_until_is_inclusive(self):
        queue = EventQueue()
        at = queue.push(0.0004, _noop)
        beyond = queue.push(0.0006, _noop)
        assert queue.pop_bucket(until=0.0004) == [at]
        assert queue.pop_bucket(until=0.0004) == []
        assert queue.pop_bucket() == [beyond]

    def test_limit_caps_batch(self):
        queue = EventQueue()
        events = [queue.push(0.0005, _noop) for _ in range(6)]
        assert queue.pop_bucket(limit=4) == events[:4]
        assert queue.pop_bucket() == events[4:]

    def test_empty_when_overflow_head_wins(self):
        queue = EventQueue(granularity=1e-3, horizon=10e-3)
        far = queue.push(5.0, _noop)  # beyond horizon: overflow heap
        assert len(queue._overflow) == 1
        assert queue.pop_bucket() == []
        assert queue.pop_next(None) is far

    def test_skips_and_reclaims_cancelled(self):
        queue = EventQueue()
        keep_a = queue.push(0.0005, _noop)
        dead = queue.push(0.0005, _noop)
        keep_b = queue.push(0.0005, _noop)
        dead.cancel()
        assert queue.pop_bucket() == [keep_a, keep_b]
        assert queue.dead_events == 0
        assert dead._queue is None


# ----------------------------------------------------------------------
# Bulk transient scheduling
# ----------------------------------------------------------------------
class TestBulkTransient:
    def test_matches_individual_schedules(self):
        record_bulk, record_one = [], []

        sim = Simulator()
        items = [(0.0012, record_bulk.append, (i,)) for i in range(40)]
        items += [(0.0003, record_bulk.append, (100 + i,)) for i in range(3)]
        sim.schedule_transient_bulk(items)
        sim.run()

        ref = Simulator()
        for time, _cb, args in items:
            ref.schedule_at_transient(time, record_one.append, *args)
        ref.run()

        assert record_bulk == record_one
        # Sub-granularity collisions dispatched before the later bucket.
        assert record_bulk[:3] == [100, 101, 102]

    def test_bulk_events_are_pool_recycled(self):
        sim = Simulator()
        pool = sim._queue.pool
        for _ in range(20):
            sim.schedule_transient_bulk(
                [(sim.now + 0.001, _noop, ()) for _ in range(10)]
            )
            sim.run()
        total = pool.created + pool.reused
        assert total == 200
        assert pool.reused / total > 0.9

    def test_bulk_accepts_out_of_order_times(self):
        sim = Simulator()
        record = []
        sim.schedule_transient_bulk(
            [
                (0.003, record.append, (3,)),
                (0.001, record.append, (1,)),
                (0.002, record.append, (2,)),
            ]
        )
        sim.run()
        assert record == [1, 2, 3]


# ----------------------------------------------------------------------
# Pool behaviour through the batch loop
# ----------------------------------------------------------------------
class TestPoolThroughBatchLoop:
    def test_transient_chain_hits_pool(self):
        sim = Simulator()
        state = {"fires": 0}

        def fire():
            state["fires"] += 1
            if state["fires"] < 5000:
                sim.schedule_transient(0.0003, fire)

        sim.schedule_transient(0.0003, fire)
        sim.run()
        pool = sim._queue.pool
        total = pool.created + pool.reused
        assert pool.reused / total > 0.99
        assert pool.released == 5000


# ----------------------------------------------------------------------
# Entry accounting
# ----------------------------------------------------------------------
class TestEntryCount:
    def test_entry_count_matches_brute_force(self):
        queue = EventQueue(granularity=1e-3, horizon=50e-3)
        events = []
        for i in range(300):
            events.append(queue.push((i % 97) * 1e-3, _noop))
        for event in events[::3]:
            event.cancel()
        for _ in range(80):
            queue.pop_next(None)

        wheel = queue._wheel
        brute = (
            len(wheel._drain)
            - wheel._drain_pos
            + sum(len(b) for b in wheel._buckets.values())
            + len(queue._overflow)
        )
        assert queue.entry_count() == brute

    def test_cancel_heavy_retention_stays_at_pr5_level(self):
        """Regression gate: O(1) entry_count must not change compaction.

        The pacing/RTO cancel churn retained ``max_queue_entries`` ~257
        with the walking counter; the cached counter must keep the same
        compaction cadence, bounded by the trigger threshold.
        """
        sim = Simulator()
        state = {"pacing": None, "rto": None}

        def fire():
            if state["pacing"] is not None:
                state["pacing"].cancel()
            if state["rto"] is not None:
                state["rto"].cancel()
            state["pacing"] = sim.schedule(0.002, _noop)
            state["rto"] = sim.schedule(0.25, _noop)
            sim.schedule(0.0001, fire)

        sim.schedule(0.0001, fire)
        max_entries = 0
        for _ in range(32):
            sim.run(max_events=1000)
            max_entries = max(max_entries, sim._queue.entry_count())
        assert sim._queue.compactions > 0
        assert max_entries <= 2 * COMPACT_MIN_DEAD + 2


# ----------------------------------------------------------------------
# Compiled-core selector
# ----------------------------------------------------------------------
def _probe_core(env_value):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    if env_value is None:
        env.pop("REPRO_COMPILED", None)
    else:
        env["REPRO_COMPILED"] = env_value
    return subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.sim import core; "
            "print(core.MODE, core.COMPILED); "
            "print(core.sweep_times([1000, 500], 8000.0, 1.0))",
        ],
        capture_output=True,
        text=True,
        timeout=60,
        env=env,
    )


class TestCoreSelector:
    def test_default_mode_works(self):
        out = _probe_core(None)
        assert out.returncode == 0, out.stderr
        assert out.stdout.startswith("auto ")
        assert "[1.0, 0.5]" in out.stdout and "[2.0, 2.5]" in out.stdout

    def test_forced_pure_never_compiled(self):
        out = _probe_core("0")
        assert out.returncode == 0, out.stderr
        mode, compiled = out.stdout.split()[:2]
        assert compiled == "False"

    def test_require_compiled_errors_without_build(self):
        from repro.sim import core

        out = _probe_core("1")
        if core.COMPILED:  # pragma: no cover - compiled CI leg
            assert out.returncode == 0
        else:
            assert out.returncode != 0
            assert "REPRO_COMPILED=1" in out.stderr


# ----------------------------------------------------------------------
# Link serialization sweeps
# ----------------------------------------------------------------------
def _packet(i, size=1000):
    return Packet(flow_id=1, ptype=PacketType.DATA, payload_bytes=size, seq=i)


def _burst_deliveries(count, sweep_eligible, loss=None, mutate=None):
    """Deliver a burst; return [(arrival_time, seq)]. ``mutate(sim, link)``
    optionally schedules mid-flight interference."""
    sim = Simulator()
    spec = LinkSpec(rate_bps=8_000_000.0, delay=0.01, loss=loss)
    link = Link(sim, spec, name="dut")
    link._sweep_eligible = sweep_eligible
    record = []
    link.connect(lambda p: record.append((sim.now, p.seq)))
    for i in range(count):
        assert link.send(_packet(i))
    if mutate is not None:
        mutate(sim, link)
    sim.run()
    return record


class TestLinkSweep:
    def test_sweep_matches_per_packet_exactly(self):
        swept = _burst_deliveries(40, sweep_eligible=True)
        classic = _burst_deliveries(40, sweep_eligible=False)
        assert swept == classic  # bit-for-bit: same arithmetic chain

    def test_sweep_matches_with_loss_model(self):
        # Loss draws happen at departure in FIFO order, so the RNG call
        # sequence — and therefore which packets die — is identical
        # (both links get the default seeded rng).
        swept = _burst_deliveries(40, True, loss=BernoulliLoss(0.2))
        classic = _burst_deliveries(40, False, loss=BernoulliLoss(0.2))
        assert swept == classic
        assert len(swept) < 40  # the loss model actually bit

    def test_short_backlog_stays_per_packet(self):
        sim = Simulator()
        link = Link(sim, LinkSpec(rate_bps=8e6, delay=0.01))
        link.connect(lambda p: None)
        for i in range(SWEEP_MIN_QUEUED):  # head + too-short backlog
            link.send(_packet(i))
        assert link._sweep is None

    def test_sweep_window_is_bounded(self):
        sim = Simulator()
        link = Link(sim, LinkSpec(rate_bps=8e6, delay=0.01))
        link.connect(lambda p: None)
        for i in range(SWEEP_MAX + 40):
            link.send(_packet(i))
        # The sweep plans when the head hands off to the backlog.
        sim.run(until=0.002)
        assert link._sweep is not None
        assert len(link._sweep.packets) == SWEEP_MAX

    def test_rate_change_invalidates_and_replans(self):
        def slow_down(sim, link):
            # Mid-sweep fault: halve the rate while the window drains.
            sim.schedule(0.003, lambda: setattr(link, "rate_factor", 0.5))

        swept = _burst_deliveries(40, True, mutate=slow_down)
        classic = _burst_deliveries(40, False, mutate=slow_down)
        assert swept == classic
        # Sanity: the change really landed mid-burst (later arrivals slower).
        undisturbed = _burst_deliveries(40, True)
        assert swept != undisturbed

    def test_flush_mid_sweep_keeps_serving_packet(self):
        def flush_late(sim, link):
            sim.schedule(0.003, link.flush)

        swept = _burst_deliveries(40, True, mutate=flush_late)
        classic = _burst_deliveries(40, False, mutate=flush_late)
        assert swept == classic
        assert len(swept) < 40  # the flush discarded the queued tail

    def test_numpy_and_scalar_paths_agree(self):
        packets = [_packet(i, size=211 + 13 * i) for i in range(SWEEP_NUMPY_MIN)]
        rate = 7_333_211.0
        now = 1.23456789
        tx_np, fin_np = LinkBatch.compute(packets, rate, now)
        # The scalar path is compute()'s fallback below SWEEP_NUMPY_MIN:
        # feed it the same window one packet short of the numpy cut, plus
        # the direct core call over the full window.
        from repro.sim.core import sweep_times

        tx_sc, fin_sc = sweep_times([p.size_bytes for p in packets], rate, now)
        assert tx_np == pytest.approx(tx_sc, abs=0.0)
        assert fin_np == pytest.approx(fin_sc, abs=0.0)
