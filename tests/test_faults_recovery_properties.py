"""Property tests for recovery-time math and downtime reconciliation.

Three families, per the resilience subsystem's contract:

* ``recovery_percentile`` is a true percentile — bounded by min/max,
  monotone in q, exact at the endpoints;
* ``RecoveryTracker.recovery_samples`` are non-negative and stall-ordered
  (per flow, outage-end times never run backwards);
* ``Channel.downtime_total`` equals the measure of the *union* of fault
  holds, however the drawn outages overlap (reference counting is what
  makes this identity hold), and the tracker's summary reports exactly
  that number.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import HvcNetwork
from repro.faults import FaultInjector, FaultSchedule, RecoveryTracker
from repro.faults.recovery import recovery_percentile
from repro.errors import ScenarioError
from repro.net.hvc import fixed_embb_spec, urllc_spec

SIM_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

samples_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


class TestRecoveryPercentile:
    @given(samples_strategy)
    def test_bounded_and_endpoint_exact(self, samples):
        assert recovery_percentile(samples, 0.0) == min(samples)
        assert recovery_percentile(samples, 100.0) == max(samples)
        for q in (10.0, 50.0, 99.0):
            value = recovery_percentile(samples, q)
            assert min(samples) <= value <= max(samples)

    @given(samples_strategy, st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=100.0))
    def test_monotone_in_q(self, samples, q1, q2):
        lo, hi = sorted((q1, q2))
        assert recovery_percentile(samples, lo) <= recovery_percentile(samples, hi) + 1e-12

    def test_empty_is_zero_and_bad_q_rejected(self):
        assert recovery_percentile([], 50.0) == 0.0
        with pytest.raises(ScenarioError):
            recovery_percentile([1.0], 101.0)


def intervals_strategy(max_end=6.0):
    """Possibly-overlapping (start, duration) outage intervals."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=max_end - 1.0),
            st.floats(min_value=0.05, max_value=1.0),
        ),
        min_size=1,
        max_size=6,
    )


def union_measure(intervals):
    """Total length of the union of (start, end) intervals."""
    spans = sorted((s, s + d) for s, d in intervals)
    total = 0.0
    cur_start, cur_end = spans[0]
    for s, e in spans[1:]:
        if s > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = s, e
        else:
            cur_end = max(cur_end, e)
    return total + (cur_end - cur_start)


class TestDowntimeReconciliation:
    @SIM_SETTINGS
    @given(intervals_strategy(), intervals_strategy())
    def test_downtime_equals_union_of_overlapping_holds(self, embb_iv, urllc_iv):
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], seed=1)
        tracker = RecoveryTracker(net)
        schedule = FaultSchedule()
        for start, duration in embb_iv:
            schedule.outage("embb", start, duration)
        for start, duration in urllc_iv:
            schedule.outage("urllc", start, duration)
        FaultInjector(net, schedule).arm()
        net.run(until=schedule.horizon + 0.5)

        expected = {"embb": union_measure(embb_iv), "urllc": union_measure(urllc_iv)}
        for channel in net.channels:
            assert channel.fault_holds == 0
            assert channel.up
            assert math.isclose(
                channel.downtime_total, expected[channel.name],
                rel_tol=1e-9, abs_tol=1e-9,
            )
        summary = tracker.summary()
        assert math.isclose(
            summary["downtime_s"], sum(expected.values()),
            rel_tol=1e-9, abs_tol=1e-9,
        )
        assert summary["outages"] == sum(
            channel.outage_count for channel in net.channels
        )

    @SIM_SETTINGS
    @given(intervals_strategy(max_end=4.0), st.sampled_from(["cubic", "bbr"]))
    def test_recovery_samples_nonnegative_and_stall_ordered(self, intervals, cc):
        from repro.apps.bulk import BulkTransfer

        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="single", seed=1)
        tracker = RecoveryTracker(net)
        schedule = FaultSchedule()
        for start, duration in intervals:
            schedule.outage("embb", start, duration)
        FaultInjector(net, schedule).arm()
        BulkTransfer(net, cc=cc, total_bytes=10_000_000)
        net.run(until=schedule.horizon + 1.0)

        last_end = {}
        for flow, outage_end, elapsed in tracker.recovery_samples:
            assert elapsed >= 0.0
            assert outage_end >= 0.0
            # Stall-ordered per flow: intervals close in the order the
            # outages that opened them ended.
            assert outage_end >= last_end.get(flow, 0.0)
            last_end[flow] = outage_end
        summary = tracker.summary()
        recoveries = [s[2] for s in tracker.recovery_samples]
        assert summary["recovery_p50_s"] <= summary["recovery_p99_s"] + 1e-12
        assert summary["recovery_p99_s"] <= summary["recovery_max_s"] + 1e-12
        if recoveries:
            assert summary["recovery_p50_s"] == round(
                recovery_percentile(recoveries, 50.0), 9
            )
