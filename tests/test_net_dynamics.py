"""Tests for scripted channel dynamics."""

import pytest

from repro.core.api import HvcNetwork
from repro.errors import NetworkError
from repro.net.dynamics import ChannelTimeline
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.units import kb


class TestChannelTimeline:
    def net(self):
        return HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")

    def test_outage_toggles_channel(self):
        net = self.net()
        timeline = ChannelTimeline(net.sim, net.channel_named("urllc"))
        timeline.outage(start=1.0, duration=2.0)
        net.run(until=1.5)
        assert not net.channel_named("urllc").up
        net.run(until=3.5)
        assert net.channel_named("urllc").up

    def test_flap_schedules_count_cycles(self):
        net = self.net()
        timeline = ChannelTimeline(net.sim, net.channel_named("urllc"))
        timeline.flap(start=0.5, period=1.0, count=3)
        assert len(timeline.events) == 6  # begin+end per cycle
        ups = []
        for t in (0.6, 1.2, 1.6, 2.2, 2.6, 3.2):
            net.run(until=t)
            ups.append(net.channel_named("urllc").up)
        assert ups == [False, True, False, True, False, True]

    def test_transfer_survives_scripted_urllc_outage(self):
        net = self.net()
        ChannelTimeline(net.sim, net.channel_named("urllc")).outage(0.05, 1.0)
        done = []
        pair = net.open_connection(on_server_message=done.append)
        pair.client.send_message(kb(400), message_id=1)
        net.run(until=20.0)
        assert len(done) == 1

    def test_overlapping_outages_hold_channel_down(self):
        # Regression: the first outage's scheduled end used to re-enable the
        # channel while the second (overlapping) outage was still active.
        net = self.net()
        timeline = ChannelTimeline(net.sim, net.channel_named("urllc"))
        timeline.outage(start=1.0, duration=2.0)  # down over [1, 3)
        timeline.outage(start=2.0, duration=3.0)  # down over [2, 5)
        net.run(until=3.5)
        assert not net.channel_named("urllc").up  # still inside 2nd outage
        net.run(until=5.5)
        assert net.channel_named("urllc").up
        assert net.channel_named("urllc").outage_count == 1  # one transition
        assert net.channel_named("urllc").downtime_total == pytest.approx(4.0)

    def test_identical_overlap_and_admin_compose(self):
        net = self.net()
        channel = net.channel_named("urllc")
        timeline = ChannelTimeline(net.sim, channel)
        # Two byte-identical outages: both ends must elapse before re-up.
        timeline.outage(start=1.0, duration=1.0)
        timeline.outage(start=1.0, duration=1.0)
        net.run(until=1.5)
        assert not channel.up
        net.run(until=2.5)
        assert channel.up
        # Administrative down wins over fault-hold release.
        channel.set_up(False)
        channel.fail()
        channel.restore()
        assert not channel.up
        channel.set_up(True)
        assert channel.up

    def test_custom_action(self):
        net = self.net()
        timeline = ChannelTimeline(net.sim, net.channel_named("embb"))
        fired = []
        timeline.at(2.0, lambda ch: fired.append(ch.name), "note")
        net.run(until=3.0)
        assert fired == ["embb"]
        assert timeline.events[0].description == "note"

    def test_validation(self):
        net = self.net()
        timeline = ChannelTimeline(net.sim, net.channels[0])
        net.run(until=1.0)
        with pytest.raises(NetworkError):
            timeline.at(0.5, lambda ch: None)
        with pytest.raises(NetworkError):
            timeline.outage(2.0, 0)
        with pytest.raises(NetworkError):
            timeline.flap(2.0, 1.0, 3, down_fraction=1.5)
        with pytest.raises(NetworkError):
            timeline.flap(2.0, 0, 3)
