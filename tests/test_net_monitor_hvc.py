"""Tests for channel monitoring, HVC profiles, and failure injection."""

import pytest

from repro.apps.bulk import BulkTransfer
from repro.core.api import HvcNetwork
from repro.net.channel import Channel
from repro.net.hvc import (
    EMBB_QUEUE_BYTES,
    cisp_spec,
    fiber_wan_spec,
    fixed_embb_spec,
    leo_spec,
    traced_embb_spec,
    urllc_spec,
    wifi_mlo_specs,
)
from repro.net.monitor import ChannelMonitor, ChannelSample, ChannelSeries
from repro.sim.kernel import Simulator
from repro.traces.catalog import get_trace
from repro.units import kb, mbps, ms


class TestHvcProfiles:
    def test_urllc_matches_paper_emulation(self):
        spec = urllc_spec()
        assert spec.up.rate_bps == mbps(2)
        assert spec.up.delay == ms(2.5)  # 5 ms RTT
        assert spec.reliable

    def test_fixed_embb_matches_fig1(self):
        spec = fixed_embb_spec()
        assert spec.up.rate_bps == mbps(60)
        assert spec.up.delay + spec.down.delay == pytest.approx(ms(50))
        assert spec.up.queue_bytes == EMBB_QUEUE_BYTES

    def test_traced_embb_scales_uplink(self):
        trace = get_trace("5g-lowband-stationary")
        spec = traced_embb_spec(trace, uplink_rate_factor=0.25)
        sim = Simulator()
        channel = Channel(sim, spec)
        down = channel.downlink.current_rate()
        up = channel.uplink.current_rate()
        assert up == pytest.approx(down * 0.25)

    def test_wifi_mlo_channels_are_lossy_pairs(self):
        a, b = wifi_mlo_specs()
        assert a.name != b.name
        assert a.up.loss is not None and b.up.loss is not None
        assert a.up.loss is not b.up.loss  # stateful models never shared

    def test_cisp_is_priced_and_fast(self):
        cisp = cisp_spec()
        fiber = fiber_wan_spec()
        assert cisp.cost_per_byte > 0
        assert fiber.cost_per_byte == 0
        assert cisp.up.delay < fiber.up.delay
        assert cisp.up.rate_bps < fiber.up.rate_bps

    def test_leo_profile(self):
        leo = leo_spec()
        assert leo.up.delay + leo.down.delay == pytest.approx(ms(25))
        assert leo.up.loss.long_run_rate > 0


class TestChannelMonitor:
    def test_samples_collected_at_period(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        monitor = ChannelMonitor(net.sim, net.channels, period=0.5)
        net.run(until=2.0)
        series = monitor["embb"]
        assert len(series.samples) == 5  # t = 0.0, 0.5, 1.0, 1.5, 2.0

    def test_utilization_reflects_load(self):
        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(20))], steering="single")
        monitor = ChannelMonitor(net.sim, net.channels, period=0.2)
        BulkTransfer(net, cc="cubic")
        net.run(until=8.0)
        assert monitor["embb"].utilization("up") > 0.7

    def test_idle_channel_utilization_zero(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        monitor = ChannelMonitor(net.sim, net.channels, period=0.2)
        net.run(until=2.0)
        assert monitor["embb"].utilization("down") == 0.0

    def test_backlog_series_shows_queueing(self):
        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(10))], steering="single")
        monitor = ChannelMonitor(net.sim, net.channels, period=0.05)
        BulkTransfer(net, cc="cubic")
        net.run(until=3.0)
        assert monitor["embb"].peak_backlog_bytes("up") > 10_000
        series = monitor["embb"].backlog_series("up")
        assert any(backlog > 0 for _, backlog in series)

    def test_stop_halts_sampling(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        monitor = ChannelMonitor(net.sim, net.channels, period=0.1)
        net.run(until=0.5)
        monitor.stop()
        count = len(monitor["embb"].samples)
        net.run(until=2.0)
        assert len(monitor["embb"].samples) == count

    def test_validation(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        with pytest.raises(ValueError):
            ChannelMonitor(net.sim, net.channels, period=0)
        monitor = ChannelMonitor(net.sim, net.channels)
        with pytest.raises(ValueError):
            monitor["embb"].utilization("sideways")


class TestUtilizationBounds:
    """Regression: utilization used the interval-*start* rate as capacity,
    so a trace channel whose rate rose mid-interval reported > 1.0."""

    @staticmethod
    def _sample(time, delivered, rate):
        return ChannelSample(
            time=time,
            up_backlog_bytes=0,
            down_backlog_bytes=0,
            up_delivered_bytes=delivered,
            down_delivered_bytes=delivered,
            up_rate_bps=rate,
            down_rate_bps=rate,
            base_rtt=0.01,
        )

    def test_step_rate_trace_stays_bounded(self):
        # Rate steps 1 -> 10 Mbps just after t=0; the channel really
        # carries ~10 Mb in [0, 1]. Interval-start capacity (1 Mb) would
        # report utilization 10.0; the trapezoid credits 5.5 Mb and the
        # clamp caps the remainder.
        series = ChannelSeries(name="stepped")
        series.samples = [
            self._sample(0.0, delivered=0, rate=1_000_000.0),
            self._sample(1.0, delivered=1_250_000, rate=10_000_000.0),
        ]
        for direction in ("up", "down"):
            assert series.utilization(direction) <= 1.0
        assert series.clamp_warnings == 2

    def test_rising_rate_credits_trapezoid_capacity(self):
        # Delivered exactly the trapezoid capacity: utilization is 1.0
        # with no clamping, where the old interval-start math said 5.5x.
        series = ChannelSeries(name="ramp")
        series.samples = [
            self._sample(0.0, delivered=0, rate=1_000_000.0),
            self._sample(1.0, delivered=687_500, rate=10_000_000.0),  # 5.5 Mb
        ]
        assert series.utilization("down") == pytest.approx(1.0)
        assert series.clamp_warnings == 0

    def test_well_resolved_sampling_never_clamps(self):
        # Fine-grained sampling of a fixed-rate channel under load: the
        # bound must hold without the clamp ever firing.
        net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(20))], steering="single")
        monitor = ChannelMonitor(net.sim, net.channels, period=0.05)
        BulkTransfer(net, cc="cubic")
        net.run(until=6.0)
        series = monitor["embb"]
        assert 0.0 < series.utilization("up") <= 1.0
        assert series.clamp_warnings == 0

    def test_traced_channel_utilization_bounded(self):
        # End-to-end: a trace-driven (time-varying rate) eMBB channel under
        # bulk load, sampled coarsely on purpose.
        from repro.traces.catalog import get_trace

        trace = get_trace("5g-lowband-driving", seed=1)
        net = HvcNetwork([traced_embb_spec(trace)], steering="single")
        monitor = ChannelMonitor(net.sim, net.channels, period=0.5)
        BulkTransfer(net, cc="cubic")
        net.run(until=20.0)
        for direction in ("up", "down"):
            assert monitor[net.channels[0].name].utilization(direction) <= 1.0


class TestFailureInjection:
    def test_steering_avoids_downed_channel(self):
        """Mid-transfer URLLC outage: DChannel keeps everything on eMBB."""
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        received = []
        pair = net.open_connection(on_server_message=received.append)
        net.sim.schedule(0.0, lambda: pair.client.send_message(kb(300), message_id=1))
        net.sim.schedule(0.05, lambda: net.channel_named("urllc").set_up(False))
        net.run(until=20.0)
        assert len(received) == 1

    def test_transfer_survives_channel_flap(self):
        """URLLC flaps down and back up; the transfer still completes."""
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        received = []
        pair = net.open_connection(on_server_message=received.append)
        pair.client.send_message(kb(500), message_id=1)
        net.sim.schedule(0.1, lambda: net.channel_named("urllc").set_up(False))
        net.sim.schedule(0.4, lambda: net.channel_named("urllc").set_up(True))
        net.run(until=30.0)
        assert len(received) == 1

    def test_only_channel_down_then_recovered(self):
        """Packets sent into a dead channel are lost; the blackout is
        detected and a recovery probe restarts the transfer on channel-up."""
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        received = []
        pair = net.open_connection(on_server_message=received.append)
        pair.client.send_message(kb(20), message_id=1)
        net.sim.schedule(0.01, lambda: net.channels[0].set_up(False))
        net.sim.schedule(1.0, lambda: net.channels[0].set_up(True))
        net.run(until=30.0)
        assert len(received) == 1
        # RTOs fired while every channel is down are classified as blackout
        # timeouts (no cwnd collapse); recovery rides the channel-up probe.
        assert pair.client.stats.blackout_timeouts > 0
        assert pair.client.stats.recovery_probes >= 1
