"""Tests for the trace tooling CLI."""

import pytest

from repro.traces.cli import main


class TestTraceCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "5g-lowband-driving" in out
        assert "urllc" in out

    def test_list_includes_disruption_presets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "starlink-leo" in out
        assert "wifi-5g-handoff" in out

    def test_show(self, capsys):
        assert main(["show", "5g-lowband-driving", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Mbps" in out and "p98" in out

    def test_show_starlink(self, capsys):
        assert main(["show", "starlink-leo"]) == 0
        out = capsys.readouterr().out
        assert "Mbps" in out

    def test_export_disruption_preset(self, tmp_path, capsys):
        path = tmp_path / "wifi.trace"
        assert main(["export", "wifi-5g-handoff", str(path), "--duration", "10"]) == 0
        assert path.exists()

    def test_export_then_import_round_trip(self, tmp_path, capsys):
        path = tmp_path / "urllc.trace"
        assert main(["export", "urllc", str(path), "--duration", "3"]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["import", str(path), "--delay-ms", "2.5"]) == 0
        out = capsys.readouterr().out
        assert "2.0 Mbps" in out or "Mbps" in out

    def test_unknown_trace_errors(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            main(["show", "6g-hype"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
