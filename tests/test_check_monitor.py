"""Invariant-monitor tests: clean runs stay silent, broken laws raise.

Two halves. First, the monitor must be a pure observer — arming it on a
healthy network and running real workloads produces zero violations while
running thousands of checks. Second, each law must actually fire: every
violation test here breaks exactly one invariant (by driving the taps with
a forged event sequence, tampering with a ledger, or enabling the seeded
``DEBUG_DOUBLE_RELEASE`` bug) and asserts the resulting
:class:`~repro.errors.InvariantError` names the right law and carries the
structured report the chaos bundles are built from.
"""

from __future__ import annotations

import pytest

import repro.net.resequencer as reseq_mod
from repro.apps.bulk import BulkTransfer
from repro.check import InvariantMonitor
from repro.core.api import HvcNetwork
from repro.errors import InvariantError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.net.packet import Packet, PacketType


def make_net(steering: str = "dchannel", **kwargs) -> HvcNetwork:
    return HvcNetwork(
        [fixed_embb_spec(), urllc_spec()], steering=steering, **kwargs
    )


def packet(flow_id: int = 1, payload: int = 1000) -> Packet:
    return Packet(flow_id=flow_id, ptype=PacketType.DATA, payload_bytes=payload)


def violation(excinfo) -> dict:
    report = excinfo.value.report
    assert report is not None
    return report


class TestCleanRuns:
    def test_healthy_bulk_run_has_zero_violations(self):
        net = make_net()
        monitor = InvariantMonitor(net).arm()
        BulkTransfer(net, cc="cubic")
        net.run(until=1.0)
        monitor.final_check()
        assert monitor.violation is None
        assert monitor.checks_run > 100
        assert monitor.audits_run >= 10
        assert monitor.events_seen > 0

    def test_healthy_run_with_faults_has_zero_violations(self):
        net = make_net(steering="round-robin")
        monitor = InvariantMonitor(net).arm()
        schedule = (
            FaultSchedule()
            .outage(net.channels[0].name, start=0.3, duration=0.2)
            .loss_burst(net.channels[1].name, start=0.1, duration=0.3, loss=0.2)
        )
        monitor.watch_injector(FaultInjector(net, schedule).arm())
        BulkTransfer(net, cc="reno")
        net.run(until=1.0)
        monitor.final_check()
        assert monitor.violation is None

    def test_arming_twice_is_rejected(self):
        net = make_net()
        monitor = InvariantMonitor(net).arm()
        with pytest.raises(InvariantError):
            monitor.arm()

    def test_taps_chain_to_displaced_obs_adapters(self):
        from repro.obs import Observability

        net = make_net()
        net.attach_obs(Observability(tracing=True))
        displaced = net.channels[0].uplink.obs
        assert displaced is not None
        monitor = InvariantMonitor(net).arm()
        ledger = net.channels[0].uplink.obs
        assert ledger is not displaced and ledger.inner is displaced
        BulkTransfer(net, cc="cubic")
        net.run(until=0.3)
        monitor.final_check()


class TestEventLevelLaws:
    def test_clock_monotonic_violation(self):
        net = make_net()
        monitor = InvariantMonitor(net).arm()
        with pytest.raises(InvariantError) as excinfo:
            monitor._on_kernel_event(1.0, 0.5)
        assert violation(excinfo)["law"] == "clock-monotonic"

    def test_link_fifo_violation(self):
        net = make_net()
        monitor = InvariantMonitor(net).arm()
        ledger = monitor._link_ledgers[0]
        p1, p2 = packet(), packet()
        ledger.on_transmit(p1, 0.1)
        ledger.on_transmit(p2, 0.2)
        with pytest.raises(InvariantError) as excinfo:
            ledger.on_deliver(p2, 0.3)  # overtakes p1, still propagating
        report = violation(excinfo)
        assert report["law"] == "link-fifo"
        assert report["entity"] == ledger.name

    def test_link_exactly_once_violation(self):
        net = make_net()
        monitor = InvariantMonitor(net).arm()
        ledger = monitor._link_ledgers[0]
        p1 = packet()
        ledger.on_transmit(p1, 0.1)
        ledger.on_deliver(p1, 0.2)
        with pytest.raises(InvariantError) as excinfo:
            ledger.on_deliver(p1, 0.3)
        assert violation(excinfo)["law"] == "link-exactly-once"

    def test_link_deliver_monotonic_violation(self):
        net = make_net()
        monitor = InvariantMonitor(net).arm()
        ledger = monitor._link_ledgers[0]
        p1, p2 = packet(), packet()
        ledger.on_transmit(p1, 0.1)
        ledger.on_deliver(p1, 0.5)
        ledger.on_transmit(p2, 0.6)
        with pytest.raises(InvariantError) as excinfo:
            ledger.on_deliver(p2, 0.4)  # arrival timestamp regressed
        assert violation(excinfo)["law"] == "link-deliver-monotonic"

    def test_seeded_resequencer_double_release_is_caught(self):
        assert reseq_mod.DEBUG_DOUBLE_RELEASE is False
        reseq_mod.DEBUG_DOUBLE_RELEASE = True
        try:
            net = make_net(steering="round-robin", resequence=True)
            monitor = InvariantMonitor(net).arm()
            BulkTransfer(net, cc="cubic")
            with pytest.raises(InvariantError) as excinfo:
                net.run(until=1.0)
                monitor.final_check()
        finally:
            reseq_mod.DEBUG_DOUBLE_RELEASE = False
        assert violation(excinfo)["law"] == "reseq-no-dup-release"


class TestLedgerLaws:
    """Each test corrupts one counter, then audits."""

    def run_clean(self, steering: str = "dchannel"):
        net = make_net(steering=steering)
        monitor = InvariantMonitor(net).arm()
        BulkTransfer(net, cc="cubic")
        net.run(until=0.5)
        monitor.audit()  # still clean before the tamper
        return net, monitor

    def test_link_conservation_violation(self):
        net, monitor = self.run_clean()
        monitor._link_ledgers[0].enqueued += 5
        with pytest.raises(InvariantError) as excinfo:
            monitor.audit()
        assert violation(excinfo)["law"] == "link-conservation"

    def test_link_stats_reconcile_violation(self):
        net, monitor = self.run_clean()
        busy = max(monitor._link_ledgers, key=lambda led: led.delivered)
        busy.link.stats.delivered += 1
        with pytest.raises(InvariantError) as excinfo:
            monitor.audit()
        assert violation(excinfo)["law"] == "link-stats-reconcile"

    def test_device_conservation_violation(self):
        net, monitor = self.run_clean()
        net.client.stats.packets_sent += 1
        with pytest.raises(InvariantError) as excinfo:
            monitor.audit()
        report = violation(excinfo)
        assert report["law"] == "device-conservation"
        assert report["entity"] == "client"

    def test_transport_flight_violation(self):
        net, monitor = self.run_clean()
        conn = net.connections[0].client
        conn._flight_bytes += 1
        with pytest.raises(InvariantError) as excinfo:
            monitor.audit()
        assert violation(excinfo)["law"] == "transport-flight"

    def test_transport_cc_bounds_violation(self):
        net, monitor = self.run_clean()
        conn = net.connections[0].client
        # rto is computed and clamped to [min_rto, max_rto]; raising the
        # floor above the ceiling pushes the live value out of its envelope.
        conn.rtt.min_rto = conn.rtt.max_rto + 5.0
        with pytest.raises(InvariantError) as excinfo:
            monitor.audit()
        assert violation(excinfo)["law"] == "transport-cc-bounds"

    def test_fault_balance_violation(self):
        net = make_net()
        monitor = InvariantMonitor(net).arm()
        monitor.watch_injector(FaultInjector(net, FaultSchedule()).arm())
        net.run(until=0.2)
        net.channels[0].fail()  # a hold the injector never applied
        with pytest.raises(InvariantError) as excinfo:
            monitor.audit()
        assert violation(excinfo)["law"] == "fault-balance"


class TestViolationReport:
    def test_report_carries_minimal_repro_context(self):
        net = make_net()
        monitor = InvariantMonitor(net).arm()
        BulkTransfer(net, cc="cubic")
        net.run(until=0.3)
        monitor._link_ledgers[0].enqueued += 7
        with pytest.raises(InvariantError) as excinfo:
            monitor.audit()
        report = violation(excinfo)
        assert set(report) == {
            "law", "entity", "time", "message", "deltas",
            "recent_events", "checks_run",
        }
        assert report["time"] == pytest.approx(0.3, abs=1e-6)
        assert report["deltas"]["enqueued"] > 0
        assert report["checks_run"] > 0
        assert report["recent_events"], "recent-event ring should not be empty"
        event = report["recent_events"][-1]
        assert {"time", "kind", "entity", "packet", "copy", "flow"} <= set(event)
        assert monitor.violation == report
        # The rendered message is self-contained enough to triage from a log.
        text = str(excinfo.value)
        assert "link-conservation" in text and "last events" in text
