"""Tests for HAR export and the Wi-Fi TSN channel profile."""

import json

import pytest

from repro.apps.web.browser import load_page
from repro.apps.web.har import to_har, to_har_json
from repro.apps.web.page import WebObject, WebPage
from repro.core.api import HvcNetwork
from repro.net.channel import Channel
from repro.net.hvc import fixed_embb_spec, wifi_tsn_spec
from repro.net.packet import Packet, PacketType
from repro.net.queue import PriorityDropTailQueue
from repro.sim.kernel import Simulator
from repro.units import mbps, ms


def small_page():
    return WebPage(
        "har-test",
        [WebObject(0, 10_000), WebObject(1, 5_000, depends_on=[0])],
    )


class TestHarExport:
    def load(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        return load_page(net, small_page())

    def test_har_structure(self):
        har = to_har(self.load())
        log = har["log"]
        assert log["version"] == "1.2"
        assert log["pages"][0]["pageTimings"]["onLoad"] > 0
        assert len(log["entries"]) == 2

    def test_onload_is_max_entry_time(self):
        har = to_har(self.load())
        onload = har["log"]["pages"][0]["pageTimings"]["onLoad"]
        assert onload == pytest.approx(max(e["time"] for e in har["log"]["entries"]))

    def test_entries_carry_sizes_and_deps(self):
        har = to_har(self.load())
        entry = har["log"]["entries"][1]
        assert entry["response"]["bodySize"] == 5_000
        assert entry["_dependsOn"] == [0]

    def test_json_round_trips(self):
        text = to_har_json(self.load(), title="demo")
        parsed = json.loads(text)
        assert parsed["log"]["pages"][0]["title"] == "demo"

    def test_incomplete_load_rejected(self):
        from repro.apps.web.browser import PageLoadResult

        incomplete = PageLoadResult(page=small_page(), started_at=0.0)
        with pytest.raises(ValueError):
            to_har(incomplete)


class TestWifiTsn:
    def test_spec_uses_priority_queue(self):
        spec = wifi_tsn_spec()
        assert spec.up.priority_queue and spec.down.priority_queue
        assert spec.reliable
        sim = Simulator()
        channel = Channel(sim, spec)
        assert isinstance(channel.uplink.queue, PriorityDropTailQueue)

    def test_control_latency_deterministic_under_data_backlog(self):
        """The express lane: an ACK beats a full data queue."""
        sim = Simulator()
        channel = Channel(sim, wifi_tsn_spec(rate_bps=mbps(10), rtt=ms(6)))
        arrivals = []
        channel.uplink.connect(lambda p: arrivals.append((sim.now, p.ptype)))
        for _ in range(20):
            channel.uplink.send(
                Packet(flow_id=1, ptype=PacketType.DATA, payload_bytes=1460)
            )
        ack = Packet(flow_id=1, ptype=PacketType.ACK)
        channel.uplink.send(ack)
        sim.run()
        ack_time = next(t for t, ptype in arrivals if ptype == PacketType.ACK)
        # The ACK waits only for the in-service packet, not 20 data packets.
        assert ack_time < ms(6) / 2 + 2 * 1500 * 8 / mbps(10) + 1e-6

    def test_transfer_over_tsn_plus_embb(self):
        net = HvcNetwork(
            [fixed_embb_spec(), wifi_tsn_spec()], steering="transport-aware"
        )
        done = []
        pair = net.open_connection(on_server_message=done.append)
        pair.client.send_message(100_000, message_id=1)
        net.run(until=10.0)
        assert len(done) == 1
