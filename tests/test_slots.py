"""Hot-path objects must be slotted: no per-instance ``__dict__``.

Every per-packet / per-ACK / per-event object the simulator creates in
bulk goes through ``repro._compat.hot_dataclass`` (slotted on Python
3.10+) or declares ``__slots__`` directly. A stray attribute assignment
outside the declared fields would silently resurrect ``__dict__`` on one
of these classes — this test pins them all down.
"""

import sys

import pytest

from repro._compat import HAS_DATACLASS_SLOTS, hot_dataclass
from repro.net.packet import Packet, PacketType
from repro.sim.events import Event, EventQueue
from repro.sim.pool import EventPool
from repro.sim.wheel import TimerWheel
from repro.transport.cc.base import AckSample
from repro.net.monitor import ChannelSample
from repro.obs.probes import TransportSample
from repro.transport.connection import MessageReceipt, OutgoingMessage, RttRecord, Segment
from repro.transport.datagram import DatagramMessage
from repro.transport.streams import StreamMessage, _Pending

#: Always-slotted classes (hand-written ``__slots__``, no version gate).
ALWAYS_SLOTTED = [
    (Event, lambda: Event(0.0, 0, lambda: None)),
    (EventQueue, EventQueue),
    (EventPool, EventPool),
    (TimerWheel, TimerWheel),
    # Hand-written since the byte fields became read-only properties
    # (PR 7): a slotted dataclass cannot shadow same-name fields.
    (Packet, lambda: Packet(flow_id=0, ptype=PacketType.DATA)),
]

#: ``hot_dataclass`` types, slotted only where dataclass(slots=) exists.
HOT_DATACLASSES = [
    (Segment, lambda: Segment(seq=0, end_seq=1, sent_at=0.0, delivered_at_send=0)),
    (MessageReceipt, lambda: MessageReceipt(1, None, 10, 0.0)),
    (RttRecord, lambda: RttRecord(0.0, 0.01, None, None)),
    (
        AckSample,
        lambda: AckSample(
            now=0.0, rtt=None, newly_acked=0, in_flight=0, delivery_rate=None
        ),
    ),
    (
        OutgoingMessage,
        lambda: OutgoingMessage(start=0, end=10, message_id=1, priority=None),
    ),
    (StreamMessage, lambda: StreamMessage(1, 0, 10, 0, 0.0)),
    (_Pending, lambda: _Pending(message_index=0, size=10, remaining=10)),
    (
        DatagramMessage,
        lambda: DatagramMessage(message_id=1, priority=None, first_packet_at=0.0),
    ),
    (ChannelSample, lambda: ChannelSample(0.0, 0, 0, 0, 0, 0.0, 0.0, 0.01)),
    (
        TransportSample,
        lambda: TransportSample(
            time=0.0, cwnd_bytes=0.0, srtt=None, rto=1.0, inflight_bytes=0
        ),
    ),
]


def _assert_no_dict(instance):
    with pytest.raises(AttributeError):
        instance.__dict__
    with pytest.raises(AttributeError):
        instance.not_a_declared_field = 1


@pytest.mark.parametrize(
    "cls,factory", ALWAYS_SLOTTED, ids=lambda v: getattr(v, "__name__", "")
)
def test_core_objects_are_slotted(cls, factory):
    _assert_no_dict(factory())


@pytest.mark.skipif(
    not HAS_DATACLASS_SLOTS, reason="dataclass(slots=True) needs Python 3.10+"
)
@pytest.mark.parametrize(
    "cls,factory", HOT_DATACLASSES, ids=lambda v: getattr(v, "__name__", "")
)
def test_hot_dataclasses_are_slotted(cls, factory):
    _assert_no_dict(factory())


@pytest.mark.parametrize(
    "cls,factory", HOT_DATACLASSES, ids=lambda v: getattr(v, "__name__", "")
)
def test_hot_dataclasses_still_work_unslotted(cls, factory):
    """On any Python, the shim must at minimum produce a working dataclass."""
    instance = factory()
    assert repr(instance)


def test_hot_dataclass_shim_passes_options_through():
    @hot_dataclass(frozen=True)
    class Frozen:
        x: int

    f = Frozen(3)
    assert f.x == 3
    with pytest.raises(Exception):
        f.x = 4
    if HAS_DATACLASS_SLOTS:
        assert not hasattr(f, "__dict__")


def test_packet_copy_still_works():
    """The hand-written Packet keeps its redundancy-copy semantics."""
    packet = Packet(flow_id=1, ptype=PacketType.DATA, payload_bytes=100)
    redundant = packet.copy_for_redundancy(1)
    assert redundant.packet_id == packet.packet_id
    assert redundant.copy_index == 1
    assert redundant.size_bytes == packet.size_bytes


def test_sys_version_gate_is_consistent():
    assert HAS_DATACLASS_SLOTS == (sys.version_info >= (3, 10))
