"""Unit tests for RTT estimation / RTO."""

import pytest

from repro.transport.rtx import INITIAL_RTO, RttEstimator


class TestRttEstimator:
    def test_initial_rto(self):
        assert RttEstimator().rto == INITIAL_RTO

    def test_first_sample_initializes(self):
        est = RttEstimator()
        est.on_sample(0.1)
        assert est.srtt == 0.1
        assert est.rttvar == 0.05
        assert est.min_rtt == 0.1
        assert est.latest_rtt == 0.1

    def test_rto_is_srtt_plus_4_rttvar(self):
        est = RttEstimator(min_rto=0.0001)
        est.on_sample(0.1)
        assert est.rto == pytest.approx(0.1 + 4 * 0.05)

    def test_smoothing_converges(self):
        est = RttEstimator()
        for _ in range(100):
            est.on_sample(0.05)
        assert est.srtt == pytest.approx(0.05, rel=1e-3)
        assert est.rttvar == pytest.approx(0.0, abs=1e-3)

    def test_min_rto_floor(self):
        est = RttEstimator(min_rto=0.2)
        for _ in range(20):
            est.on_sample(0.005)
        assert est.rto == 0.2

    def test_min_rtt_tracks_minimum(self):
        est = RttEstimator()
        for rtt in (0.1, 0.05, 0.2):
            est.on_sample(rtt)
        assert est.min_rtt == 0.05

    def test_timeout_backoff_doubles(self):
        est = RttEstimator(min_rto=0.2)
        est.on_sample(0.1)
        base = est.rto
        est.on_timeout()
        assert est.rto == pytest.approx(2 * base)
        est.on_timeout()
        assert est.rto == pytest.approx(4 * base)

    def test_sample_resets_backoff(self):
        est = RttEstimator(min_rto=0.2)
        est.on_sample(0.1)
        base = est.rto
        est.on_timeout()
        est.on_sample(0.1)
        assert est.rto == pytest.approx(base, rel=0.2)

    def test_max_rto_cap(self):
        est = RttEstimator(min_rto=0.2, max_rto=1.0)
        for _ in range(10):
            est.on_timeout()
        assert est.rto == 1.0

    def test_variance_grows_with_jitter(self):
        steady = RttEstimator()
        jittery = RttEstimator()
        for i in range(50):
            steady.on_sample(0.1)
            jittery.on_sample(0.05 if i % 2 else 0.15)
        assert jittery.rto > steady.rto

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            RttEstimator(min_rto=0)
        with pytest.raises(ValueError):
            RttEstimator(min_rto=1.0, max_rto=0.5)
        with pytest.raises(ValueError):
            RttEstimator().on_sample(0)

    def test_sample_counter(self):
        est = RttEstimator()
        est.on_sample(0.1)
        est.on_sample(0.1)
        assert est.samples == 2
