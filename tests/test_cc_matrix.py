"""Safety net: every registered CCA moves a reliable transfer end-to-end."""

import pytest

from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.transport.cc import list_ccs
from repro.units import kb, mbps


@pytest.mark.parametrize("cc", list_ccs())
def test_cc_completes_transfer_single_channel(cc):
    net = HvcNetwork([fixed_embb_spec(rate_bps=mbps(20))], steering="single")
    done = []
    pair = net.open_connection(cc=cc, on_server_message=done.append)
    pair.client.send_message(kb(150), message_id=1)
    net.run(until=60.0)
    assert len(done) == 1, f"cc {cc} failed to complete"


@pytest.mark.parametrize("cc", ["cubic", "bbr", "copa", "vegas", "vivace"])
def test_cc_completes_under_dchannel_steering(cc):
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
    done = []
    pair = net.open_connection(cc=cc, on_server_message=done.append)
    pair.client.send_message(kb(150), message_id=1)
    net.run(until=60.0)
    assert len(done) == 1, f"cc {cc} failed under steering"
