"""The fleet package: tenant populations, the fluid engine, the hybrid
simulation, and the sharded experiment merge."""

import math

import pytest

from repro.errors import RunnerError, ScenarioError
from repro.experiments.fleet import _merge_shards, fleet_unit, run_fleet
from repro.fleet import (
    FleetConfig,
    FleetSimulation,
    FluidBackground,
    PopulationSpec,
    TenantPopulation,
    fleet_channel_specs,
    run_equivalence_case,
)
from repro.fleet.fluid import IW_BYTES, MAX_BG_SHARE
from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, urllc_spec

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def small_spec(tenants=50, duration=8.0, seed=0, **kw):
    return PopulationSpec(tenants=tenants, duration=duration, seed=seed, **kw)


class TestTenantPopulation:
    def test_deterministic_for_seed(self):
        a = TenantPopulation.generate(small_spec(seed=3))
        b = TenantPopulation.generate(small_spec(seed=3))
        assert a.arrivals == b.arrivals
        assert a.sizes == b.sizes
        assert a.classes == b.classes
        assert a.ccas == b.ccas

    def test_seed_changes_population(self):
        a = TenantPopulation.generate(small_spec(seed=3))
        b = TenantPopulation.generate(small_spec(seed=4))
        assert a.sizes != b.sizes

    def test_sorted_by_arrival_and_bounded(self):
        spec = small_spec(tenants=200)
        pop = TenantPopulation.generate(spec)
        assert pop.arrivals == sorted(pop.arrivals)
        assert all(0 <= t <= spec.duration * spec.arrival_span for t in pop.arrivals)
        assert all(spec.min_size <= s <= spec.max_size for s in pop.sizes)
        assert set(pop.classes) <= {name for name, _ in spec.class_mix}
        assert set(pop.ccas) <= {name for name, _ in spec.cca_mix}

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ScenarioError):
            PopulationSpec(tenants=0, duration=5.0).validate()
        with pytest.raises(ScenarioError):
            PopulationSpec(tenants=5, duration=5.0, arrival_span=0.0).validate()
        with pytest.raises(ScenarioError):
            PopulationSpec(
                tenants=5, duration=5.0, class_mix=(("latency", -1.0),)
            ).validate()


def run_fluid(use_numpy, tenants=60, duration=6.0, seed=2, **kw):
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], seed=seed)
    pop = TenantPopulation.generate(small_spec(tenants=tenants, duration=duration, seed=seed))
    fluid = FluidBackground(
        net.sim, net.channels, pop, horizon=duration, use_numpy=use_numpy, **kw
    )
    fluid.start()
    net.run(until=duration)
    fluid.stop()
    return net, fluid


class TestFluidBackground:
    def test_python_backend_runs_and_completes(self):
        net, fluid = run_fluid(use_numpy=False)
        assert fluid.backend == "python"
        assert fluid.ticks > 0
        assert fluid.completed_count() > 0
        assert all(f > 0 for f in fluid.fct_samples())

    @needs_numpy
    def test_backends_agree(self):
        """The vectorized and pure-python ticks implement one model."""
        _, fp = run_fluid(use_numpy=False)
        _, fn = run_fluid(use_numpy=True)
        assert fp.completed_count() == fn.completed_count()
        for a, b in zip(fp.fct_samples(), fn.fct_samples()):
            assert a == pytest.approx(b, rel=1e-6)
        for name in fp.bytes_by_cca:
            assert fp.bytes_by_cca[name] == pytest.approx(
                fn.bytes_by_cca[name], rel=1e-6
            )

    def test_background_load_reaches_links_and_views(self):
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], seed=2)
        pop = TenantPopulation.generate(small_spec(tenants=120, duration=6.0, seed=2))
        fluid = FluidBackground(
            net.sim, net.channels, pop, horizon=6.0, use_numpy=False
        )
        fluid.start()
        snapshots = []

        def probe():
            # Mid-run, while tenants are still active: the load must be
            # installed on the links and coherent with current_rate().
            snapshots.extend(
                (ch.uplink.background_bps, ch.uplink.capacity_bps(),
                 ch.uplink.current_rate())
                for ch in net.channels
            )

        for k in range(1, 80):
            net.sim.schedule(k * 0.05, probe)
        net.run(until=6.0)
        fluid.stop()
        assert any(bg > 0 for bg, _, _ in snapshots), (
            "fluid never installed load on any uplink"
        )
        for bg, cap, rate in snapshots:
            assert rate == pytest.approx(max(cap - bg, 0.0))
            assert bg <= MAX_BG_SHARE * cap + 1e-6
        assert any(
            ch.uplink.stats.background_bytes > 0 for ch in net.channels
        )

    def test_fct_respects_slow_start_floor(self):
        _, fluid = run_fluid(use_numpy=False)
        pop = fluid.population
        rtts = [max(ch.base_rtt(), 1e-4) for ch in fluid.channels]
        min_rtt = min(rtts)
        for i, fct in enumerate(fluid._fct):
            if not fluid._done[i]:
                continue
            rounds = max(math.ceil(math.log2(pop.sizes[i] / IW_BYTES + 1.0)), 1)
            assert fct >= min_rtt * rounds - 1e-9

    def test_digest_deterministic_and_state_sensitive(self):
        _, a = run_fluid(use_numpy=False)
        _, b = run_fluid(use_numpy=False)
        assert a.digest() == b.digest()
        _, c = run_fluid(use_numpy=False, seed=3)
        assert a.digest() != c.digest()

    def test_sense_foreground_off_ignores_packet_traffic(self):
        """With sensing off, a busy foreground must not perturb the ODEs."""

        def run(fg_flows):
            config = FleetConfig(
                tenants=80,
                foreground=fg_flows,
                duration=4.0,
                preset="paper",
                sense_foreground=False,
            )
            sim = FleetSimulation(config, use_numpy=False)
            sim.run()
            return sim.fluid.digest()

        assert run(0) == run(8)

    def test_rejects_unknown_cca(self):
        net = HvcNetwork([fixed_embb_spec()], seed=0)
        pop = TenantPopulation.generate(
            small_spec(tenants=4, cca_mix=(("quic-magic", 1.0),))
        )
        with pytest.raises(ScenarioError, match="no fluid model"):
            FluidBackground(net.sim, net.channels, pop, use_numpy=False)


class TestFleetSimulation:
    def test_hybrid_run_reports_both_fidelities(self):
        config = FleetConfig(
            tenants=300, foreground=10, duration=5.0, preset="paper"
        )
        sim = FleetSimulation(config)
        out = sim.run()
        assert out["background"]["completed"] > 0
        assert len(out["foreground"]) == 10
        assert sum(len(f["fct"]) for f in out["foreground"]) > 0
        shares = out["goodput_shares"]
        assert shares and abs(sum(shares.values()) - 1.0) < 0.01
        assert 0.0 <= min(v["up"] for v in out["utilization"].values())
        assert out["events_processed"] > 0

    def test_foreground_slows_under_background(self):
        """Packet-level flows must actually feel the fluid load."""

        def fg_p50(tenants):
            config = FleetConfig(
                tenants=tenants, foreground=4, duration=5.0, preset="small"
            )
            out = FleetSimulation(config).run()
            fcts = sorted(x for f in out["foreground"] for x in f["fct"])
            return fcts[len(fcts) // 2]

        # Thousands of tenants on the 12 Mbps pair must visibly stretch
        # foreground completion times vs a near-empty network.
        assert fg_p50(3000) > fg_p50(1) * 2.0

    def test_sharded_config_requires_decoupling(self):
        with pytest.raises(ScenarioError, match="sense_foreground"):
            FleetConfig(tenants=10, foreground=4, shards=2, shard=0).validate()

    def test_unknown_preset_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fleet preset"):
            fleet_channel_specs("hypercube")


class TestFleetExperiment:
    def test_shard_merge_matches_single_shard_background(self):
        kw = dict(tenants=400, foreground=4, duration=4.0, seed=1)
        single = fleet_unit(shard=0, shards=1, **kw)
        # fleet_unit forces sense_foreground=False, so shard workers
        # reproduce the identical background world.
        parts = [fleet_unit(shard=s, shards=2, **kw) for s in range(2)]
        assert parts[0]["background_digest"] == parts[1]["background_digest"]
        assert parts[0]["background_digest"] == single["background_digest"]
        merged = _merge_shards(parts)
        assert [f["index"] for f in merged["foreground"]] == list(range(4))
        assert merged["events_processed"] == sum(
            p["events_processed"] for p in parts
        )

    def test_merge_refuses_divergent_backgrounds(self):
        kw = dict(tenants=100, foreground=2, duration=3.0, seed=1)
        parts = [fleet_unit(shard=s, shards=2, **kw) for s in range(2)]
        parts[1] = dict(parts[1], background_digest="corrupted")
        with pytest.raises(RunnerError, match="background digest"):
            _merge_shards(parts)

    def test_run_fleet_result_values(self):
        result = run_fleet(
            tenants=300, foreground=4, duration=4.0, validate=False
        )
        assert result.values["tenants"] == 300.0
        assert result.values["bg_completed"] > 0
        assert result.values["fg_fct_p50_ms"] > 0
        assert result.values["bg_fct_p99_ms"] >= result.values["bg_fct_p50_ms"]
        shares = {
            k[len("share_"):]: v
            for k, v in result.values.items()
            if k.startswith("share_")
        }
        assert abs(sum(shares.values()) - 1.0) < 0.01
        assert result.events_processed > 0

    def test_run_fleet_shard_invariant(self):
        base = run_fleet(tenants=200, foreground=1, duration=3.0, validate=False)
        # One foreground flow cannot be split, so any shard request
        # collapses to the identical scenario.
        sharded = run_fleet(
            tenants=200, foreground=1, duration=3.0, shards=4, validate=False
        )
        assert base.values == sharded.values


class TestEquivalenceGate:
    def test_case_rejects_large_fleets(self):
        with pytest.raises(ValueError, match="<=100"):
            run_equivalence_case(flows=101)

    def test_report_shape(self):
        rep = run_equivalence_case(flows=30, duration=6.0, seed=0)
        assert rep["full"]["engine"] == "full"
        assert rep["hybrid"]["engine"] == "hybrid"
        for key in ("fct_p50_rel", "fct_p90_rel", "fct_p50_abs", "util_abs"):
            assert key in rep["deltas"]
        assert rep["full"]["completed"] == rep["full"]["tenants"] == 30

    def test_outage_case_applies_faults_to_both_engines(self):
        from repro.faults import FaultSchedule
        from repro.fleet.validation import check_equivalence

        rows = FaultSchedule().outage("embb", 2.0, 1.0).to_params()
        rep = run_equivalence_case(
            flows=30, duration=8.0, seed=0, fault_rows=rows
        )
        # Both engines lived through the same outage...
        assert rep["full"]["outages"] == rep["hybrid"]["outages"] == 1
        assert rep["full"]["downtime_s"] == pytest.approx(1.0)
        assert rep["hybrid"]["downtime_s"] == pytest.approx(1.0)
        # ...the fluid side accounted stalls for re-steered tenants...
        assert rep["hybrid"]["stalls"]["stalled_at_end"] == 0
        # ...and the gate still evaluates (violations are a judgement
        # call under faults; the report must at least be complete).
        assert isinstance(check_equivalence(rep), list)

    def test_outage_case_still_within_tolerance(self):
        from repro.faults import FaultSchedule
        from repro.fleet.validation import check_equivalence

        # A short outage early in the run: both engines re-steer onto the
        # surviving channel and must still agree distributionally.
        rows = FaultSchedule().outage("embb", 1.0, 0.5).to_params()
        rep = run_equivalence_case(
            flows=40, duration=10.0, seed=1, fault_rows=rows
        )
        assert check_equivalence(rep) == []
