"""Focused tests for BBR's aggregation compensation and filter windows."""

import pytest

from repro.transport.cc.base import AckSample
from repro.transport.cc.bbr import Bbr, BTLBW_WINDOW_ROUNDS

MSS = 1460


def ack(now, rtt=0.05, newly=MSS, in_flight=100 * MSS, rate=50e6, delivered=0):
    return AckSample(
        now=now,
        rtt=rtt,
        newly_acked=newly,
        in_flight=in_flight,
        delivery_rate=rate,
        total_delivered=delivered,
    )


class TestExtraAcked:
    def test_smooth_acks_add_no_extra(self):
        """ACKs matching btlbw leave extra_acked near zero."""
        cc = Bbr(MSS)
        delivered = 0
        # Establish btlbw ≈ 50 Mbps = 6.25 MB/s, acks arriving exactly at
        # that rate: one MSS every 1460 / 6.25e6 s.
        step = MSS / 6.25e6
        now = 0.0
        for _ in range(500):
            delivered += MSS
            cc.on_ack(ack(now=now, delivered=delivered))
            now += step
        assert cc.extra_acked_bytes < 3 * MSS

    def test_ack_bursts_grow_cwnd_headroom(self):
        """Batched ACK arrivals (aggregation) inflate the cwnd allowance."""
        cc = Bbr(MSS)
        delivered = 0
        now = 0.0
        for _ in range(200):
            delivered += MSS
            cc.on_ack(ack(now=now, delivered=delivered))
            now += MSS / 6.25e6
        smooth_cwnd = cc.cwnd_bytes
        # Now a silent gap followed by one burst of 40 segments at once.
        now += 0.05
        for _ in range(40):
            delivered += MSS
            cc.on_ack(ack(now=now, delivered=delivered))
        assert cc.extra_acked_bytes > 10 * MSS
        assert cc.cwnd_bytes > smooth_cwnd

    def test_extra_acked_expires_with_rounds(self):
        cc = Bbr(MSS)
        delivered = 0
        now = 0.0
        for _ in range(100):
            delivered += MSS
            cc.on_ack(ack(now=now, delivered=delivered))
            now += MSS / 6.25e6
        now += 0.05
        for _ in range(40):
            delivered += MSS
            cc.on_ack(ack(now=now, delivered=delivered))
        inflated = cc.extra_acked_bytes
        # Enough smooth time for the measurement interval to reset (>1 s)
        # plus enough rounds for the burst sample to age out of the window.
        for _ in range(BTLBW_WINDOW_ROUNDS * 600):
            delivered += MSS
            cc.on_ack(ack(now=now, delivered=delivered))
            now += MSS / 6.25e6
        assert cc.extra_acked_bytes < inflated


class TestTimeoutReset:
    def test_timeout_restarts_startup(self):
        cc = Bbr(MSS)
        delivered = 0
        now = 0.0
        for _ in range(2000):
            delivered += MSS
            cc.on_ack(ack(now=now, delivered=delivered))
            now += 0.005
        cc.on_timeout(now=now)
        assert cc.state == Bbr.STARTUP
        assert cc.btlbw_bytes_per_s == 0.0
