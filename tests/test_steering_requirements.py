"""Requirement-class steering: operator pins and the requirement CCs.

The empty-preferred-set guard exists because an empty pin used to fall
through ranking and silently land the class on channel 0 — the exact
URLLC-squatting misconfiguration §3.3 measures. These tests pin the
validated error (with the class name in the message) at every entry
point that accepts pins, plus the requirement-class congestion
controllers' registry wiring and per-class manners.
"""

import pytest

from repro.errors import SteeringError
from repro.steering.requirements import (
    ChannelTraits,
    REQUIREMENT_CLASSES,
    RequirementPinnedSteerer,
    assignment_table,
    requirement_class,
    validate_preferred_channels,
)
from repro.transport.cc import make_cc, list_ccs
from repro.transport.cc.base import AckSample
from repro.transport.cc.requirement import RequirementCC, requirement_cc_kwargs
from repro.transport.intents import FLOW_PRIORITIES
from repro.units import mbps, ms

from tests.test_steering import data_pkt, embb, urllc


def traits(index=0, up=True, base_rtt=ms(50), capacity=mbps(60),
           cost=0.0, reliable=False):
    return ChannelTraits(
        index=index, up=up, base_rtt=base_rtt, capacity_bps=capacity,
        cost_per_byte=cost, reliable=reliable,
    )


class TestPreferredChannelValidation:
    def test_empty_set_is_a_config_error_naming_the_class(self):
        with pytest.raises(SteeringError, match="'background'.*empty preferred"):
            validate_preferred_channels({"background": ()})

    def test_unknown_class_rejected(self):
        with pytest.raises(SteeringError, match="unknown requirement class"):
            validate_preferred_channels({"best-effort": (0,)})

    def test_valid_pins_normalized_to_tuples(self):
        validated = validate_preferred_channels({"latency": [1, 0]})
        assert validated == {"latency": (1, 0)}

    def test_none_and_empty_mapping_mean_no_pins(self):
        assert validate_preferred_channels(None) == {}
        assert validate_preferred_channels({}) == {}

    def test_steerer_validates_eagerly(self):
        with pytest.raises(SteeringError, match="'deadline'"):
            RequirementPinnedSteerer(preferred_channels={"deadline": []})

    def test_assignment_table_rejects_empty_pin(self):
        with pytest.raises(SteeringError, match="'latency'"):
            assignment_table(
                ["latency"], channels=[], preferred={"latency": ()}
            )


class TestChoiceWithPins:
    def test_pin_restricts_choice(self):
        # Latency ranks the low-RTT channel first; pinning it to channel 0
        # overrides that preference.
        both = [
            traits(0, base_rtt=ms(50), capacity=mbps(60)),
            traits(1, base_rtt=ms(5), capacity=mbps(2)),
        ]
        rclass = requirement_class("latency")
        assert rclass.choose(both).index == 1
        assert rclass.choose(both, preferred=(0,)).index == 0

    def test_pin_to_down_channel_raises(self):
        views = [traits(0, up=False), traits(1, base_rtt=ms(5))]
        with pytest.raises(SteeringError, match="no channel is up"):
            requirement_class("latency").choose(views, preferred=(0,))

    def test_pinned_steerer_steers_to_pin(self):
        steerer = RequirementPinnedSteerer(
            flow_classes={1: "latency"},
            preferred_channels={"latency": (0,)},
        )
        assert steerer.choose(data_pkt(), [embb(), urllc()], 0.0) == (0,)


class TestRequirementCcRegistry:
    def test_all_classes_registered(self):
        names = list_ccs()
        for cls in REQUIREMENT_CLASSES:
            assert f"req-{cls}" in names

    def test_unknown_class_rejected(self):
        with pytest.raises(SteeringError):
            RequirementCC("best-effort")

    def test_kwargs_map_intent_priority(self):
        for cls, rclass in REQUIREMENT_CLASSES.items():
            kwargs = requirement_cc_kwargs(cls)
            assert kwargs["flow_priority"] == FLOW_PRIORITIES[rclass.intent_category]
            assert kwargs["cc"].class_name == cls

    def test_factory_builds_requirement_cc(self):
        cc = make_cc("req-background")
        assert isinstance(cc, RequirementCC)
        assert cc.class_name == "background"


class TestRequirementCcManners:
    def _prime(self, cc, rtt=0.05, rate_bps=8_000_000.0, acks=20):
        now, total = 0.0, 0
        for _ in range(acks):
            now += rtt
            total += cc.mss
            cc.on_ack(AckSample(
                now=now, rtt=rtt, newly_acked=cc.mss, in_flight=10 * cc.mss,
                delivery_rate=rate_bps, total_delivered=total,
            ))
        return now

    def test_latency_class_holds_cwnd_near_budgeted_bdp(self):
        cc = RequirementCC("latency")
        self._prime(cc)
        bw = 8_000_000.0 / 8.0
        assert cc.cwnd_bytes <= bw * (0.05 + 0.005) + 2 * cc.mss

    def test_background_backs_off_harder_than_deadline(self):
        outcomes = {}
        for cls in ("deadline", "background"):
            cc = RequirementCC(cls)
            now = self._prime(cc)
            before = cc.cwnd_bytes
            cc.on_loss(now, in_flight=int(before))
            outcomes[cls] = cc.cwnd_bytes / before
        assert outcomes["background"] < outcomes["deadline"]

    def test_cwnd_never_collapses_below_floor(self):
        cc = RequirementCC("background")
        now = self._prime(cc)
        for i in range(10):
            cc.on_loss(now + i, in_flight=int(cc.cwnd_bytes))
            cc.on_timeout(now + i + 0.5)
        assert cc.cwnd_bytes >= 2 * cc.mss
