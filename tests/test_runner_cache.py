"""Cache-correctness tests: key sensitivity and corruption tolerance."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import RunnerError
from repro.runner import ResultCache, RunUnit, default_cache_dir

UNIT = RunUnit.make(
    "probe", "repro.runner.units:probe_unit", seed=3, value=1.5
)


class TestCacheToken:
    def test_stable_for_identical_units(self):
        again = RunUnit.make(
            "probe", "repro.runner.units:probe_unit", seed=3, value=1.5
        )
        assert UNIT.cache_token() == again.cache_token()

    def test_param_keyword_order_is_irrelevant(self):
        a = RunUnit.make("e", "m:f", seed=0, alpha=1, beta=2)
        b = RunUnit.make("e", "m:f", seed=0, beta=2, alpha=1)
        assert a == b
        assert a.cache_token() == b.cache_token()

    def test_changes_with_experiment_name(self):
        other = RunUnit.make(
            "probe2", "repro.runner.units:probe_unit", seed=3, value=1.5
        )
        assert other.cache_token() != UNIT.cache_token()

    def test_changes_with_fn(self):
        other = RunUnit.make("probe", "repro.runner.units:execute_unit",
                             seed=3, value=1.5)
        assert other.cache_token() != UNIT.cache_token()

    def test_changes_with_params(self):
        other = RunUnit.make(
            "probe", "repro.runner.units:probe_unit", seed=3, value=2.5
        )
        assert other.cache_token() != UNIT.cache_token()

    def test_changes_with_seed(self):
        other = RunUnit.make(
            "probe", "repro.runner.units:probe_unit", seed=4, value=1.5
        )
        assert other.cache_token() != UNIT.cache_token()

    def test_changes_with_package_version(self):
        assert UNIT.cache_token(version="0.0.0") != UNIT.cache_token()

    def test_rejects_unhashable_params(self):
        unit = RunUnit.make("e", "m:f", steerer=object())
        with pytest.raises(RunnerError):
            unit.cache_token()


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        missed, _ = cache.get(UNIT)
        assert not missed
        payload = {"value": 6.0, "events": 1, "series": [1, 2, 3]}
        path = cache.put(UNIT, payload)
        assert path is not None and path.is_file()
        hit, value = cache.get(UNIT)
        assert hit and value == payload
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_none_payload_is_a_real_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(UNIT, None)
        hit, value = cache.get(UNIT)
        assert hit and value is None

    def test_truncated_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(UNIT, {"value": 6.0})
        path.write_bytes(path.read_bytes()[:10])
        hit, _ = cache.get(UNIT)
        assert not hit

    def test_flipped_payload_byte_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(UNIT, {"value": 6.0})
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        hit, _ = cache.get(UNIT)
        assert not hit

    def test_foreign_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(UNIT)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"value": 666.0}))  # no header/digest
        hit, _ = cache.get(UNIT)
        assert not hit

    def test_empty_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(UNIT)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"")
        hit, _ = cache.get(UNIT)
        assert not hit

    def test_default_dir_honours_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        cache = ResultCache()
        assert cache.path_for(UNIT).is_relative_to(tmp_path / "elsewhere")
