"""Golden shape-regression suite: the paper's headline results, pinned.

These tests freeze the *shape* of the reproduction's three headline
artifacts at reduced (but calibrated) scale, so a refactor that silently
breaks a mechanism — CCA dynamics, steering reward, RTT attribution,
priority arbitration — fails loudly here even if every unit test passes.

Calibrated margins (duration 8 s, seed 0; see EXPERIMENTS.md for paper
scale): cubic ≈ 50, bbr ≈ 13, vegas ≈ 3.6, vivace ≈ 1.9 Mbps; the
assertions leave roughly 2x slack on each ratio so only mechanism-level
regressions trip them, not noise.
"""

import pytest

from repro.experiments.fig1 import fig1b_unit, run_single_cca
from repro.units import to_mbps, to_ms

FIG1A_DURATION = 8.0
FIG1A_CCAS = ("cubic", "bbr", "vegas", "vivace")


@pytest.fixture(scope="module")
def fig1a_throughputs():
    """Mean Mbps per CCA on the Fig. 1a setup, computed once per module."""
    out = {}
    for cc in FIG1A_CCAS:
        bulk = run_single_cca(cc, duration=FIG1A_DURATION)
        out[cc] = to_mbps(bulk.mean_throughput_bps(0.0, FIG1A_DURATION))
    return out


class TestFig1aOrdering:
    """Fig. 1a: CUBIC >> BBR > Vegas > Vivace under DChannel steering."""

    def test_strict_ordering(self, fig1a_throughputs):
        tp = fig1a_throughputs
        assert tp["cubic"] > tp["bbr"] > tp["vegas"] > tp["vivace"], tp

    def test_cubic_dominates_delay_based(self, fig1a_throughputs):
        tp = fig1a_throughputs
        # ">>": the loss-based CCA beats the best delay-based one by 2x+.
        assert tp["cubic"] >= 2.0 * tp["bbr"], tp

    def test_cubic_at_least_5x_vivace(self, fig1a_throughputs):
        tp = fig1a_throughputs
        assert tp["cubic"] >= 5.0 * tp["vivace"], tp

    def test_collapse_magnitudes(self, fig1a_throughputs):
        tp = fig1a_throughputs
        # CUBIC substantially fills the 62 Mbps aggregate; every
        # delay-based CCA collapses below half of it.
        assert tp["cubic"] > 30.0, tp
        assert tp["bbr"] < 31.0, tp
        assert tp["vegas"] < 10.0, tp
        assert tp["vivace"] < 5.0, tp


class TestFig1bBimodalAttribution:
    """Fig. 1b: BBR's RTT samples split by data channel; none reach 50 ms."""

    @pytest.fixture(scope="class")
    def rtt_by_channel(self):
        payload = fig1b_unit(duration=8.0)
        by_channel = {}
        for _, rtt, data_channel, _ack_channel in payload["records"]:
            by_channel.setdefault(data_channel, []).append(to_ms(rtt))
        return by_channel

    def test_both_modes_populated(self, rtt_by_channel):
        assert set(rtt_by_channel) == {0, 1}
        assert all(len(v) >= 100 for v in rtt_by_channel.values())

    def test_urllc_mode_is_fast(self, rtt_by_channel):
        # Data steered to URLLC yields samples far below eMBB's 50 ms RTT.
        assert min(rtt_by_channel[1]) < 15.0

    def test_embb_mode_sits_above_urllc_floor(self, rtt_by_channel):
        ordered = sorted(rtt_by_channel[0])
        assert ordered[len(ordered) // 2] >= 20.0

    def test_no_sample_reaches_true_embb_rtt(self, rtt_by_channel):
        # The min-RTT poisoning behind Fig. 1a's BBR collapse: the filter
        # never observes the eMBB path's true 50 ms propagation RTT.
        all_samples = [s for samples in rtt_by_channel.values() for s in samples]
        assert max(all_samples) < 50.0


class TestTable1PriorityWin:
    """Table 1: DChannel beats eMBB-only; flow priority beats plain DChannel."""

    @pytest.fixture(scope="class")
    def mean_plt_ms(self):
        from statistics import mean

        from repro.apps.web.corpus import generate_corpus
        from repro.experiments.table1 import run_table1_cell

        pages = generate_corpus(count=6, seed=3)
        return {
            policy: mean(run_table1_cell("driving", policy, pages=pages)) * 1e3
            for policy in ("embb-only", "dchannel", "dchannel+flowprio")
        }

    def test_dchannel_beats_embb_only(self, mean_plt_ms):
        assert mean_plt_ms["dchannel"] < mean_plt_ms["embb-only"], mean_plt_ms

    def test_priority_beats_plain_dchannel(self, mean_plt_ms):
        assert (
            mean_plt_ms["dchannel+flowprio"] < mean_plt_ms["dchannel"]
        ), mean_plt_ms

    def test_win_magnitude(self, mean_plt_ms):
        # The paper reports 36.8% / 42.7% PLT cuts on the driving trace;
        # at reduced scale we pin "better than 10%" to leave noise room.
        cut = 1 - mean_plt_ms["dchannel+flowprio"] / mean_plt_ms["embb-only"]
        assert cut > 0.10, mean_plt_ms
