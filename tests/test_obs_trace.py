"""Tests for the repro.obs tracing layer: context, wiring, spans, probes."""

import pytest

from repro.core.api import HvcNetwork
from repro.errors import ScenarioError
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.obs import (
    Observability,
    TraceBuffer,
    validate_record,
)
from repro.obs.probes import probe_for
from repro.transport import next_flow_id
from repro.transport.multipath import MultipathConnection
from repro.units import kb, kib, mbps


def traced_net(specs=None, steering="dchannel", **obs_kwargs):
    obs_kwargs.setdefault("tracing", True)
    net = HvcNetwork(
        specs if specs is not None else [fixed_embb_spec(), urllc_spec()],
        steering=steering,
    )
    obs = net.attach_obs(Observability(**obs_kwargs))
    return net, obs


class TestObservabilityContext:
    def test_defaults_are_off(self):
        obs = Observability()
        assert obs.trace is None
        assert not obs.tracing
        assert not obs.probes

    def test_probes_follow_tracing(self):
        assert Observability(tracing=True).probes
        assert not Observability(tracing=True, probes=False).probes
        assert Observability(tracing=False, probes=True).probes

    def test_trace_buffer_caps_and_counts_drops(self):
        buffer = TraceBuffer(capacity=2)
        for i in range(5):
            buffer.append({"kind": "steer", "time": float(i)})
        assert len(buffer) == 2
        assert buffer.dropped == 3

    def test_attach_obs_is_exclusive(self):
        net, _obs = traced_net()
        with pytest.raises(ScenarioError):
            net.attach_obs(Observability())


class TestMetricsCollectors:
    """Tracing-off mode: pull collectors alone must fill the registry."""

    def test_link_counters_match_stats_after_run(self):
        net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
        obs = net.attach_obs()  # default context: tracing off
        received = []
        pair = net.open_connection(on_server_message=received.append)
        pair.client.send_message(kb(200), message_id=1)
        net.run(until=10.0)
        assert received
        for channel in net.channels:
            for direction, link in (("up", channel.uplink), ("down", channel.downlink)):
                labels = {"channel": channel.name, "direction": direction}
                assert obs.registry.value("link.offered", **labels) == link.stats.sent
                assert (
                    obs.registry.value("link.delivered", **labels)
                    == link.stats.delivered
                )
                assert (
                    obs.registry.value("link.bytes_delivered", **labels)
                    == link.stats.bytes_delivered
                )

    def test_device_counters_match_stats(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        obs = net.attach_obs()
        pair = net.open_connection()
        pair.client.send_message(kb(50), message_id=1)
        net.run(until=5.0)
        for device in (net.client, net.server):
            assert (
                obs.registry.value("device.packets_sent", host=device.name)
                == device.stats.packets_sent
            )
            assert (
                obs.registry.value("device.packets_received", host=device.name)
                == device.stats.packets_received
            )

    def test_kernel_event_counter(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        obs = net.attach_obs()
        net.run(until=1.0)
        assert obs.registry.value("sim.events_processed") == net.sim.events_processed

    def test_no_trace_adapters_installed_when_off(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        net.attach_obs()
        assert net.channels[0].uplink.obs is None
        assert net.client.obs is None
        assert net.client.obs_ctx is not None  # probes still discoverable


class TestPacketSpans:
    def test_data_packet_full_span(self):
        net, obs = traced_net()
        received = []
        pair = net.open_connection(on_server_message=received.append)
        pair.client.send_message(kb(40), message_id=1)
        net.run(until=5.0)
        assert received
        records = obs.trace.records
        by_kind = {}
        for r in records:
            by_kind.setdefault(r["kind"], []).append(r)
        # Pick one delivered uplink data packet and walk its span.
        delivered = [
            r for r in by_kind["deliver"]
            if r["direction"] == "up" and r["ptype"] == "data"
        ]
        assert delivered
        target = delivered[0]
        key = (target["packet_id"], target["copy"])
        span = [
            r for r in records
            if r.get("packet_id") == target["packet_id"]
            and r.get("copy", target["copy"]) == target["copy"]
        ]
        kinds = [r["kind"] for r in span]
        for expected in ("steer", "enqueue", "transmit", "deliver", "dispatch"):
            assert expected in kinds, (expected, kinds, key)
        # Lifecycle order: enqueue <= transmit <= deliver <= dispatch.
        times = {r["kind"]: r["time"] for r in span}
        assert times["enqueue"] <= times["transmit"] <= times["deliver"]
        assert times["deliver"] <= times["dispatch"]

    def test_steer_records_carry_choices_and_policy(self):
        net, obs = traced_net()
        pair = net.open_connection()
        pair.client.send_message(kb(20), message_id=1)
        net.run(until=3.0)
        steers = [r for r in obs.trace.records if r["kind"] == "steer"]
        assert steers
        assert all(r["policy"] for r in steers)
        assert all(len(r["channels"]) >= 1 for r in steers)
        # Steering decisions also land in the registry, per channel.
        total = sum(
            entry["value"]
            for entry in obs.registry.snapshot().get("steer.decisions", [])
        )
        assert total >= len(steers)

    def test_down_channel_drop_has_reason(self):
        net, obs = traced_net(specs=[fixed_embb_spec()], steering="single")
        pair = net.open_connection()
        pair.client.send_message(kb(20), message_id=1)
        net.sim.schedule(0.01, lambda: net.channels[0].set_up(False))
        net.run(until=1.0)
        reasons = {r["reason"] for r in obs.trace.records if r["kind"] == "drop"}
        assert "down" in reasons

    def test_overflow_drop_has_reason(self):
        spec = fixed_embb_spec(rate_bps=mbps(1))
        spec.up.queue_bytes = kib(4)  # tiny queue: cubic overruns it fast
        net, obs = traced_net(specs=[spec], steering="single")
        pair = net.open_connection(cc="cubic")
        pair.client.send_message(kb(200), message_id=1)
        net.run(until=5.0)
        reasons = {r["reason"] for r in obs.trace.records if r["kind"] == "drop"}
        assert "overflow" in reasons
        overflow = obs.registry.value(
            "trace.link.overflow_drops", channel=net.channels[0].name, direction="up"
        )
        assert overflow == net.channels[0].uplink.stats.overflow_drops > 0

    def test_every_record_is_schema_valid(self):
        net, obs = traced_net()
        pair = net.open_connection()
        pair.client.send_message(kb(30), message_id=1)
        net.run(until=3.0)
        for record in obs.export_records():
            assert validate_record(record) == []


class TestTransportProbes:
    def test_connection_probe_samples_on_ack(self):
        net, obs = traced_net()
        pair = net.open_connection(cc="cubic")
        pair.client.send_message(kb(100), message_id=1)
        net.run(until=5.0)
        series = obs.transport_series[("client", pair.client.flow_id)]
        assert series.samples
        sample = series.samples[-1]
        assert sample.cwnd_bytes > 0
        assert sample.rto > 0
        assert series.srtt_series()
        times = [s.time for s in series.samples]
        assert times == sorted(times)

    def test_timeouts_recorded_with_backoff(self):
        net, obs = traced_net(specs=[fixed_embb_spec()], steering="single")
        pair = net.open_connection()
        pair.client.send_message(kb(20), message_id=1)
        # Long enough for two RTO fires before recovery: blackout-suppressed
        # timeouts probe too, but the channel-up re-probe ends the sequence,
        # so a short outage would only show one.
        net.sim.schedule(0.01, lambda: net.channels[0].set_up(False))
        net.sim.schedule(5.0, lambda: net.channels[0].set_up(True))
        net.run(until=20.0)
        series = obs.transport_series[("client", pair.client.flow_id)]
        assert series.timeouts() >= 2
        rtos = [s.rto for s in series.samples if s.event == "timeout"]
        # Exponential backoff: consecutive timeout samples grow the RTO.
        assert any(b > a for a, b in zip(rtos, rtos[1:]))
        assert (
            obs.registry.value(
                "transport.timeouts", host="client", flow=pair.client.flow_id
            )
            == series.timeouts()
        )

    def test_multipath_probe_per_subflow_series(self):
        net, obs = traced_net(steering="single")
        flow_id = next_flow_id()
        received = []
        sender = MultipathConnection(net.sim, net.client, flow_id, scheduler="hvc")
        MultipathConnection(
            net.sim, net.server, flow_id, scheduler="hvc",
            on_message=received.append,
        )
        sender.send_message(kb(200), message_id=1)
        net.run(until=10.0)
        assert received
        subflow_keys = [
            key for key in obs.transport_series
            if key[0] == "client" and key[1] == flow_id and len(key) == 3
        ]
        assert len(subflow_keys) >= 2  # both channels carried data
        for key in subflow_keys:
            assert obs.transport_series[key].samples

    def test_probe_for_off_without_context(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        assert probe_for(net.client, 1) is None
        pair = net.open_connection()
        assert pair.client.obs is None

    def test_probes_can_run_without_tracing(self):
        net = HvcNetwork([fixed_embb_spec()], steering="single")
        obs = net.attach_obs(Observability(tracing=False, probes=True))
        pair = net.open_connection()
        pair.client.send_message(kb(30), message_id=1)
        net.run(until=3.0)
        assert obs.trace is None
        assert obs.transport_series[("client", pair.client.flow_id)].samples


class TestExport:
    def test_export_meta_first_then_metrics_last(self, tmp_path):
        net, obs = traced_net()
        pair = net.open_connection()
        pair.client.send_message(kb(10), message_id=1)
        net.run(until=2.0)
        path = tmp_path / "trace.jsonl"
        count = obs.export_jsonl(path)
        from repro.obs import read_jsonl, validate_file

        records = read_jsonl(path)
        assert len(records) == count
        assert records[0]["kind"] == "meta"
        assert records[0]["version"] == 1
        assert {c["name"] for c in records[0]["channels"]} == {"embb", "urllc"}
        assert records[0]["hosts"] == ["client", "server"]
        assert records[-1]["kind"] == "metrics"
        total, errors = validate_file(path)
        assert total == count
        assert errors == []

    def test_validate_rejects_bad_records(self, tmp_path):
        from repro.obs import validate_file, write_jsonl

        path = tmp_path / "bad.jsonl"
        write_jsonl(
            [
                {"kind": "meta", "time": 0.0, "version": 1},
                {"kind": "drop", "time": 0.1, "channel": "embb", "direction": "up",
                 "packet_id": 1, "copy": 0, "flow": 1, "ptype": "data",
                 "bytes": 100, "reason": "cosmic-rays"},
                {"kind": "enqueue", "time": "soon"},
                {"kind": "wat", "time": 0.2},
            ],
            path,
        )
        _count, errors = validate_file(path)
        assert any("unknown reason" in e for e in errors)
        assert any("unknown record kind" in e for e in errors)
        assert any("missing field" in e for e in errors)

    def test_bool_does_not_satisfy_int_fields(self):
        record = {
            "kind": "dispatch", "time": 0.1, "host": "client",
            "packet_id": True, "copy": 0, "flow": 1,
        }
        assert any("packet_id" in e for e in validate_record(record))

    def test_validate_empty_and_headless_files(self, tmp_path):
        from repro.obs import validate_file, write_jsonl

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        _count, errors = validate_file(empty)
        assert any("empty" in e for e in errors)
        headless = tmp_path / "headless.jsonl"
        write_jsonl([{"kind": "steer", "time": 0.0, "host": "client",
                      "policy": "dchannel", "packet_id": 1, "flow": 1,
                      "ptype": "data", "bytes": 10, "channels": [0]}], headless)
        _count, errors = validate_file(headless)
        assert any("must be 'meta'" in e for e in errors)

    def test_trace_capacity_overflow_is_reported(self):
        net, obs = traced_net(trace_capacity=100)
        pair = net.open_connection(cc="cubic")
        pair.client.send_message(kb(100), message_id=1)
        net.run(until=5.0)
        assert obs.trace.dropped > 0
        records = obs.export_records()
        metrics = records[-1]["metrics"]
        assert metrics["trace.records_dropped"][0]["value"] == obs.trace.dropped
