"""Microbenchmark: observability overhead on the simulation hot path.

The ``repro.obs`` layer promises a no-op fast path: with no context
attached the data path pays nothing, and with a context attached but
``tracing=False`` it pays only pull-collectors (sampled at snapshot time,
not per packet) plus a 10 Hz channel-sampler timer. This benchmark runs
the same CUBIC bulk flow in three modes — bare, metrics-only, and full
tracing — and records the overhead ratios in ``BENCH_obs.json``.

CI gates on ``overhead_off`` (metrics-only vs bare): the ISSUE budget is
<= 3%, asserted here with head-room for scheduler noise.
"""

from repro.experiments.fig1 import run_single_cca
from repro.obs import Observability

from benchjson import record

DURATION = 2.0
ROUNDS = 3
#: Tracing-off budget from the ISSUE (3%) — asserted against the best-of
#: rounds, which strips scheduler noise; the JSON records the raw ratio.
OFF_BUDGET = 1.03


def _bare():
    return run_single_cca("cubic", duration=DURATION)


def _metrics_only():
    return run_single_cca("cubic", duration=DURATION, obs=Observability())


def _tracing():
    return run_single_cca("cubic", duration=DURATION, obs=Observability(tracing=True))


def _best_seconds(fn, timer) -> "tuple[float, int]":
    """(best wall-clock across rounds, kernel events of one run)."""
    best = float("inf")
    events = 0
    for _ in range(ROUNDS):
        start = timer()
        bulk = fn()
        elapsed = timer() - start
        best = min(best, elapsed)
        events = bulk.net.sim.events_processed
    return best, events


def test_bench_obs_overhead(benchmark):
    import time

    timer = time.perf_counter
    _best_seconds(_bare, timer)  # warm allocators/imports for all modes

    bare_s, bare_events = _best_seconds(_bare, timer)
    off_s, off_events = _best_seconds(_metrics_only, timer)
    on_s, on_events = benchmark.pedantic(
        lambda: _best_seconds(_tracing, timer), rounds=1, iterations=1
    )

    # The metrics-only run adds the 10 Hz channel sampler's own timer
    # events; compare events/sec so the denominator matches the work done.
    bare_eps = bare_events / bare_s
    off_eps = off_events / off_s
    on_eps = on_events / on_s
    overhead_off = bare_eps / off_eps
    overhead_tracing = bare_eps / on_eps

    record(
        "obs",
        off_s,
        events_processed=off_events,
        extra={
            "bare_events_per_second": round(bare_eps, 1),
            "metrics_only_events_per_second": round(off_eps, 1),
            "tracing_events_per_second": round(on_eps, 1),
            "overhead_off": round(overhead_off, 4),
            "overhead_tracing": round(overhead_tracing, 4),
            "off_budget": OFF_BUDGET,
        },
    )
    print()
    print(f"  bare           : {bare_eps:12.0f} events/s")
    print(f"  metrics only   : {off_eps:12.0f} events/s  "
          f"({(overhead_off - 1) * 100:+.2f}% overhead)")
    print(f"  full tracing   : {on_eps:12.0f} events/s  "
          f"({(overhead_tracing - 1) * 100:+.2f}% overhead)")
    assert overhead_off <= OFF_BUDGET, (
        f"tracing-off overhead {overhead_off:.4f} exceeds budget {OFF_BUDGET}"
    )
