"""Microbenchmark: invariant-hook cost on the dispatch loop, off and on.

The invariant monitor (:mod:`repro.check`) adds exactly one seam to the
kernel hot path: a ``check is not None`` branch per dispatched event (the
hook itself is hoisted out of the loop). The ≤ 3% budget applies to the
*disarmed* configuration — every production experiment — so this benchmark
drains identical event queues through the current loop and through a
reconstruction of the branch-free pre-hook loop, with empty callbacks so
the branch is as large a fraction of the work as it can ever be.

For context the armed cost is recorded too: a full fig1a-style CUBIC bulk
flow with an :class:`~repro.check.monitor.InvariantMonitor` attached vs
the same run bare. Everything lands in ``BENCH_check.json``.
"""

import time

from benchjson import record, timed
from repro.check.monitor import InvariantMonitor
from repro.experiments.fig1 import run_single_cca
from repro.sim.kernel import Simulator

EVENT_COUNT = 100_000
#: Disarmed-branch budget from the ISSUE: ≤ 3% on fig1a wall-clock. The
#: microbenchmark gates the branch at its worst case (empty callbacks), so
#: passing here implies the fig1a bound with a wide margin.
DISARMED_BUDGET = 1.03


def _nop() -> None:
    return None


def _filled_sim() -> Simulator:
    sim = Simulator()
    for index in range(EVENT_COUNT):
        sim.schedule(float(index % 977), _nop)
    return sim


def _drain_current(sim: Simulator) -> None:
    sim.run()  # the shipped loop: one disarmed branch per event


def _drain_prehook(sim: Simulator) -> None:
    # The pre-hook dispatch loop: a faithful replica of ``Simulator.run``
    # (stop flag, run counter, max_events test, try/finally) minus *only*
    # the invariant branch — the baseline the ≤ 3% budget is measured
    # against. Dropping the rest of the bookkeeping would overstate the
    # branch by charging it for unrelated per-event work.
    until = None
    max_events = None
    sim._running = True
    sim._stop_requested = False
    processed_this_run = 0
    pop_next = sim._queue.pop_next
    try:
        while not sim._stop_requested:
            event = pop_next(until)
            if event is None:
                break
            sim.now = event.time
            event.callback(*event.args)
            sim.events_processed += 1
            processed_this_run += 1
            if max_events is not None and processed_this_run >= max_events:
                break
    finally:
        sim._running = False


def _events_per_second(drain) -> float:
    sim = _filled_sim()
    start = time.perf_counter()
    drain(sim)
    elapsed = time.perf_counter() - start
    assert sim.events_processed == EVENT_COUNT
    return EVENT_COUNT / elapsed


def _best_of(drain, rounds: int = 3) -> float:
    return max(_events_per_second(drain) for _ in range(rounds))


def _run_armed(duration: float):
    from repro.apps.bulk import BulkTransfer
    from repro.core.api import HvcNetwork
    from repro.net.hvc import fixed_embb_spec, urllc_spec

    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
    monitor = InvariantMonitor(net).arm()
    bulk = BulkTransfer(net, cc="cubic")
    net.run(until=duration)
    monitor.final_check()
    return bulk, monitor


def test_bench_check_hook_overhead(benchmark):
    _best_of(_drain_prehook, rounds=1)  # warm allocators/caches for both
    prehook_eps = _best_of(_drain_prehook)
    current_eps = benchmark.pedantic(
        lambda: _best_of(_drain_current), rounds=1, iterations=1
    )
    disarmed_overhead = prehook_eps / current_eps

    # Armed cost on a realistic workload, for the record (not gated: arming
    # the monitor is an explicit debugging/chaos choice, not the default).
    duration = 2.0
    with timed() as t_bare:
        bare = run_single_cca("cubic", duration=duration)
    bare_eps = bare.net.sim.events_processed / t_bare.seconds
    with timed() as t_armed:
        armed_bulk, monitor = _run_armed(duration)
    armed_eps = armed_bulk.net.sim.events_processed / t_armed.seconds
    armed_overhead = bare_eps / armed_eps

    record(
        "check",
        t_armed.seconds,
        events_processed=armed_bulk.net.sim.events_processed,
        extra={
            "prehook_events_per_second": round(prehook_eps, 1),
            "disarmed_events_per_second": round(current_eps, 1),
            "disarmed_overhead": round(disarmed_overhead, 4),
            "disarmed_budget": DISARMED_BUDGET,
            "bare_sim_events_per_second": round(bare_eps, 1),
            "armed_sim_events_per_second": round(armed_eps, 1),
            "armed_overhead": round(armed_overhead, 4),
            "armed_checks_run": monitor.checks_run,
        },
    )
    print()
    print(f"  pre-hook loop  : {prehook_eps:12.0f} events/s")
    print(f"  disarmed loop  : {current_eps:12.0f} events/s  "
          f"({(disarmed_overhead - 1) * 100:+.2f}% overhead)")
    print(f"  bare fig1a     : {bare_eps:12.0f} events/s")
    print(f"  armed fig1a    : {armed_eps:12.0f} events/s  "
          f"({(armed_overhead - 1) * 100:+.2f}% overhead, "
          f"{monitor.checks_run} checks)")
    assert disarmed_overhead <= DISARMED_BUDGET, (
        f"disarmed hook overhead {disarmed_overhead:.4f} exceeds "
        f"budget {DISARMED_BUDGET}"
    )
