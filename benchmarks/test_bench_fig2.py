"""Benchmark: regenerate Fig. 2 (video latency/SSIM CDFs per steering scheme).

Asserts the paper's qualitative result on both driving traces: cross-layer
priority steering dominates the latency tail (beating DChannel, which in
turn beats eMBB-only) while paying a small SSIM cost relative to eMBB-only.
"""

import pytest

from benchjson import record, timed
from repro.experiments.fig2 import run_fig2

DURATION = 60.0


@pytest.fixture(scope="module")
def fig2_result():
    with timed() as t:
        result = run_fig2(duration=DURATION)
    record("fig2", t.seconds, events_processed=result.events_processed)
    return result


def test_bench_fig2(benchmark, fig2_result):
    from repro.experiments.fig2 import run_fig2_cell

    benchmark.pedantic(
        lambda: run_fig2_cell("5g-lowband-driving", "priority", duration=5.0),
        rounds=1,
        iterations=1,
    )
    result = fig2_result
    print()
    print(result.render())

    for trace in ("5g-mmwave-driving", "5g-lowband-driving"):
        p95 = {
            scheme: result.values[f"{trace}:{scheme}:p95_latency_ms"]
            for scheme in ("embb-only", "dchannel", "priority")
        }
        # Latency ordering: priority < dchannel < embb-only.
        assert p95["priority"] < p95["dchannel"] < p95["embb-only"], p95
        # eMBB-only develops a deep tail under mobility; priority does not.
        assert p95["embb-only"] > 4 * p95["priority"], p95
        # Quality ordering: the latency win costs some SSIM vs eMBB-only.
        ssim = {
            scheme: result.values[f"{trace}:{scheme}:mean_ssim"]
            for scheme in ("embb-only", "dchannel", "priority")
        }
        assert ssim["priority"] <= ssim["embb-only"], ssim

    # mmWave driving headline: priority reduces p95 dramatically (paper 26x
    # over eMBB-only, 2.26x over DChannel; we require >4x and >1.3x).
    mm = {
        scheme: result.values[f"5g-mmwave-driving:{scheme}:p95_latency_ms"]
        for scheme in ("embb-only", "dchannel", "priority")
    }
    assert mm["embb-only"] / mm["priority"] > 4
    assert mm["dchannel"] / mm["priority"] > 1.3
