"""Benchmarks: sensitivity sweeps for open design parameters.

These answer questions the paper raises but does not quantify: how much
URLLC bandwidth the gains need, how sensitive DChannel is to its reward
hysteresis, and how fast the fast channel must be.
"""

import pytest

from benchjson import record, timed
from repro.experiments.sensitivity import (
    run_decode_wait_sweep,
    run_threshold_sweep,
    run_urllc_bandwidth_sweep,
    run_urllc_rtt_sweep,
)

PAGES = 8


def test_bench_urllc_bandwidth_sweep(benchmark):
    with timed() as t:
        result = benchmark.pedantic(
            lambda: run_urllc_bandwidth_sweep(page_count=PAGES), rounds=1, iterations=1
        )
    record("sweep_urllc_bw", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    # More URLLC bandwidth monotonically helps, and even 8 Mbps has not
    # saturated the gains — with background flows competing for it, the
    # paper's 2 Mbps URLLC is genuinely scarce, which is why arbitration
    # (flow priorities) matters so much in Table 1.
    plt = result.values
    rates = ["0.5", "1.0", "2.0", "4.0", "8.0"]
    for worse, better in zip(rates, rates[1:]):
        assert plt[better] <= plt[worse] * 1.02, (worse, better, plt)
    assert plt["8.0"] < 0.85 * plt["0.5"]


def test_bench_threshold_sweep(benchmark):
    with timed() as t:
        result = benchmark.pedantic(
            lambda: run_threshold_sweep(page_count=PAGES), rounds=1, iterations=1
        )
    record("sweep_threshold", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    # DChannel is robust to its hysteresis: across 0–30 ms the PLT spread
    # stays within 25 % of the best setting (a moderate threshold even
    # helps slightly by damping channel flapping).
    values = list(result.values.values())
    assert max(values) < 1.25 * min(values), values


def test_bench_decode_wait_sweep(benchmark):
    with timed() as t:
        result = benchmark.pedantic(
            lambda: run_decode_wait_sweep(duration=30.0), rounds=1, iterations=1
        )
    record("sweep_decode_wait", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    # §3.3's claim, both directions: no wait → lowest latency but
    # base-layer-dominated quality; waiting buys quality at latency cost,
    # saturating once the two-frame lookahead caps the effective wait.
    assert result.values["0.0:p95_ms"] < result.values["60.0:p95_ms"]
    assert result.values["0.0:ssim"] < result.values["60.0:ssim"]
    assert result.values["500.0:ssim"] >= result.values["60.0:ssim"]
    assert result.values["500.0:p95_ms"] == pytest.approx(
        result.values["200.0:p95_ms"], rel=0.05
    )


def test_bench_urllc_rtt_sweep(benchmark):
    with timed() as t:
        result = benchmark.pedantic(
            lambda: run_urllc_rtt_sweep(page_count=PAGES), rounds=1, iterations=1
        )
    record("sweep_urllc_rtt", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    # A 2 ms channel beats a 30 ms channel (which is barely faster than
    # eMBB's base RTT and earns almost no steering budget).
    assert result.values["2.0"] < result.values["30.0"]
