"""Benchmark: the parallel runner and result cache on real simulation units.

Four equal-cost Fig. 1 bulk-flow units run three ways: serially, fanned
out over four worker processes, and replayed from a warm cache.
``BENCH_runner.json`` records all three wall-clocks so the speedup is
tracked across commits. The >=2x parallel-speedup assertion is gated on
the machine actually having cores to parallelize over; the cache
assertion — a warm rerun costs <10 % of a cold run — holds anywhere.
"""

import os

import pytest

from benchjson import record, timed
from repro.runner import ParallelRunner, ResultCache, RunUnit

UNIT_SECONDS = 2.0  # per-unit simulated duration (~2 s wall each for cubic)
UNITS = [
    RunUnit.make(
        "fig1-cca",
        "repro.experiments.fig1:fig1a_unit",
        seed=seed,
        cc="cubic",
        duration=UNIT_SECONDS,
    )
    for seed in range(4)
]


def test_bench_runner(benchmark, tmp_path):
    with timed() as serial_t:
        serial = benchmark.pedantic(
            lambda: ParallelRunner(jobs=1).run(UNITS), rounds=1, iterations=1
        )

    with timed() as parallel_t:
        fanned = ParallelRunner(jobs=4).run(UNITS)

    cache = ResultCache(tmp_path / "cache")
    with timed() as cold_t:
        cold = ParallelRunner(jobs=1, cache=cache).run(UNITS)
    warm_runner = ParallelRunner(jobs=1, cache=cache)
    with timed() as warm_t:
        warm = warm_runner.run(UNITS)

    # Determinism first: every execution mode returns identical payloads.
    assert fanned == serial
    assert cold == serial
    assert warm == serial
    assert warm_runner.cache_hits == len(UNITS)
    assert warm_runner.executed == 0

    events = sum(payload["events"] for payload in serial)
    speedup = serial_t.seconds / parallel_t.seconds
    warm_fraction = warm_t.seconds / cold_t.seconds
    record(
        "runner",
        serial_t.seconds,
        events_processed=events,
        extra={
            "units": len(UNITS),
            "serial_seconds": round(serial_t.seconds, 3),
            "parallel_jobs4_seconds": round(parallel_t.seconds, 3),
            "parallel_speedup": round(speedup, 2),
            "cold_cached_seconds": round(cold_t.seconds, 3),
            "warm_cache_seconds": round(warm_t.seconds, 3),
            "warm_over_cold": round(warm_fraction, 4),
            "cpu_count": os.cpu_count(),
        },
    )
    print()
    print(f"  serial (jobs=1): {serial_t.seconds:6.2f} s")
    print(f"  fanned (jobs=4): {parallel_t.seconds:6.2f} s  "
          f"({speedup:.2f}x, {os.cpu_count()} cores)")
    print(f"  cold cached    : {cold_t.seconds:6.2f} s")
    print(f"  warm cached    : {warm_t.seconds:6.2f} s  "
          f"({100 * warm_fraction:.1f}% of cold)")

    # A warm cache replays results without simulating anything.
    assert warm_fraction < 0.10, (warm_t.seconds, cold_t.seconds)
    # With real cores available, four workers must at least halve the
    # wall-clock. On boxes without them, the measured speedup still lands
    # in BENCH_runner.json for the record.
    if os.cpu_count() >= 4:
        assert speedup >= 2.0, speedup
