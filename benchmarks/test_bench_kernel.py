"""Microbenchmark: the event-queue hot path, wheel vs the heap it replaced.

:class:`repro.sim.events.HeapEventQueue` is the pre-PR queue (single
binary heap of Events) kept verbatim for exactly this comparison;
:class:`repro.sim.events.EventQueue` is the timer-wheel hierarchy with
pooling. Both are driven through the same interleaved schedule/cancel/pop
churn — a sliding window of near-horizon timers, the kernel's steady
state — in the same process, so machine speed cancels out of the ratio.

The legacy peek+pop vs fused pop_next discipline comparison from the
previous kernel benchmark is retained for continuity, and a full
simulation rate (one CUBIC bulk flow) anchors the numbers to reality.
Everything lands in ``BENCH_kernel.json``.
"""

import time

from benchjson import record, timed
from repro.experiments.fig1 import run_single_cca
from repro.sim.events import EventQueue, HeapEventQueue

CHURN_EVENTS = 120_000
CANCEL_EVERY = 7  # schedule-then-cancel decoys: pacing/RTO churn
WINDOW = 64  # pending timers in steady state
DELAYS = (0.0001, 0.0004, 0.0011, 0.0002, 0.0031, 0.0007, 0.0017)


def _noop() -> None:
    return None


def _churn_events_per_second(queue_cls) -> float:
    """Steady-state kernel churn: pop one, schedule one, sprinkle cancels.

    Transient scheduling + pool recycling mirror what ``Simulator.run``
    does for per-packet events; ``HeapEventQueue`` has no pool, which is
    precisely the pre-PR behaviour being measured against.
    """
    queue = queue_cls()
    pool = getattr(queue, "pool", None)
    now = 0.0
    for i in range(WINDOW):
        queue.push(now + DELAYS[i % 7] * (1 + i % 3), _noop, (), True)
    count = 0
    start = time.perf_counter()
    while count < CHURN_EVENTS:
        event = queue.pop_next(None)
        now = event.time
        count += 1
        if count % CANCEL_EVERY == 0:
            queue.push(now + 0.25, _noop).cancel()
        queue.push(now + DELAYS[count % 7], _noop, (), True)
        if pool is not None and event.transient:
            pool.release(event)
    elapsed = time.perf_counter() - start
    return count / elapsed


def _best_churn(queue_cls, rounds: int = 3) -> float:
    return max(_churn_events_per_second(queue_cls) for _ in range(rounds))


UNTIL = 1e12  # bound beyond every event: full drain


def _filled_queue() -> EventQueue:
    queue = EventQueue()
    for index in range(100_000):
        event = queue.push((index % 977) * 1e-3, _noop)
        if index % CANCEL_EVERY == 0:
            event.cancel()
    return queue


def _drain_fused(queue: EventQueue) -> int:
    count = 0
    pop_next = queue.pop_next
    while pop_next(UNTIL) is not None:
        count += 1
    return count


def _drain_batch(queue: EventQueue) -> int:
    # The batch discipline Simulator.run is built on: one pop_bucket call
    # returns the whole sorted same-bucket run; pop_next only serves the
    # overflow interleavings (none in this workload).
    count = 0
    pop_bucket = queue.pop_bucket
    pop_next = queue.pop_next
    while True:
        batch = pop_bucket(UNTIL)
        if batch:
            count += len(batch)
            continue
        if pop_next(UNTIL) is None:
            break
        count += 1
    return count


def _drain_legacy(queue: EventQueue) -> int:
    # The pre-fusion discipline: peek (one scan) to check the bound, then
    # pop (a second scan over the same cancelled prefix).
    count = 0
    peek_time = queue.peek_time
    pop = queue.pop
    while True:
        next_time = peek_time()
        if next_time is None or next_time > UNTIL:
            break
        pop()
        count += 1
    return count


def _drain_events_per_second(drain) -> float:
    queue = _filled_queue()
    start = time.perf_counter()
    count = drain(queue)
    elapsed = time.perf_counter() - start
    expected = 100_000 - (100_000 + CANCEL_EVERY - 1) // CANCEL_EVERY
    assert count == expected, (count, expected)
    return count / elapsed


def _best_drain(drain, rounds: int = 3) -> float:
    return max(_drain_events_per_second(drain) for _ in range(rounds))


def test_bench_kernel_wheel_vs_heap(benchmark):
    # Interleave the two queues and keep each one's best round so a noisy
    # neighbour cannot bias the ratio toward whichever ran second.
    _best_churn(HeapEventQueue, rounds=1)  # warm allocators/caches
    heap_eps = _best_churn(HeapEventQueue)
    wheel_eps = benchmark.pedantic(
        lambda: _best_churn(EventQueue), rounds=1, iterations=1
    )
    speedup = wheel_eps / heap_eps

    # Continuity with the previous kernel benchmark: the fused pop_next
    # discipline against the two-scan peek+pop it replaced, plus the
    # batch pop_bucket discipline this PR's fast loop dispatches with.
    legacy_eps = _best_drain(_drain_legacy)
    fused_eps = _best_drain(_drain_fused)
    batch_eps = _best_drain(_drain_batch)

    # A realistic rate too: one CUBIC bulk flow through the full kernel.
    with timed() as t:
        bulk = run_single_cca("cubic", duration=2.0)
    sim_eps = bulk.net.sim.events_processed / t.seconds

    record(
        "kernel",
        t.seconds,
        events_processed=bulk.net.sim.events_processed,
        extra={
            "wheel_events_per_second": round(wheel_eps, 1),
            "heap_events_per_second": round(heap_eps, 1),
            "wheel_over_heap": round(speedup, 3),
            "fused_events_per_second": round(fused_eps, 1),
            "legacy_events_per_second": round(legacy_eps, 1),
            "fused_over_legacy": round(fused_eps / legacy_eps, 3),
            "batch_events_per_second": round(batch_eps, 1),
            "batch_over_fused": round(batch_eps / fused_eps, 3),
            "sim_events_per_second": round(sim_eps, 1),
        },
    )
    print()
    print(f"  wheel + pool   : {wheel_eps:12.0f} events/s")
    print(f"  heap (pre-PR)  : {heap_eps:12.0f} events/s  "
          f"(wheel is {speedup:.2f}x)")
    print(f"  batch pop_bucket: {batch_eps:11.0f} events/s (full drain)")
    print(f"  fused pop_next : {fused_eps:12.0f} events/s")
    print(f"  legacy peek+pop: {legacy_eps:12.0f} events/s")
    print(f"  full simulator : {sim_eps:12.0f} events/s (cubic bulk flow)")
    # The batch discipline must beat per-event pops on bucket-dense
    # workloads; 1.2 leaves room for loaded CI boxes (typically ~1.6x).
    assert batch_eps > 1.2 * fused_eps, (batch_eps, fused_eps)
    # The wheel must clearly beat the heap it replaced; 1.5 leaves
    # head-room for scheduler noise on loaded CI boxes (typical measured
    # ratio is >2x on an idle machine).
    assert speedup > 1.5, (wheel_eps, heap_eps)
