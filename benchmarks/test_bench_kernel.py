"""Microbenchmark: the fused event-loop hot path.

``Simulator.run`` used to find each event with two heap scans — a
``peek_time()`` to test the time bound, then a ``pop()`` that repeated the
same cancelled-entry skipping. ``EventQueue.pop_next(until)`` fuses the
bound check into a single scan. This benchmark drains identical queues
through both disciplines (the legacy one reconstructed inline below) and
records the events/sec of each, plus a realistic full-simulation rate, in
``BENCH_kernel.json``.
"""

import time

import pytest

from benchjson import record, timed
from repro.experiments.fig1 import run_single_cca
from repro.sim.events import EventQueue

EVENT_COUNT = 100_000
CANCEL_EVERY = 7  # sprinkle cancelled entries so both paths must skip them
UNTIL = float(EVENT_COUNT)  # bound beyond every event: full drain


def _filled_queue() -> EventQueue:
    queue = EventQueue()
    nop = lambda: None  # noqa: E731 - tight loop, avoid def overhead
    for index in range(EVENT_COUNT):
        event = queue.push(float(index % 977), nop)
        if index % CANCEL_EVERY == 0:
            event.cancel()
    return queue


def _drain_fused(queue: EventQueue) -> int:
    count = 0
    pop_next = queue.pop_next
    while pop_next(UNTIL) is not None:
        count += 1
    return count


def _drain_legacy(queue: EventQueue) -> int:
    # The pre-fusion discipline: peek (one scan) to check the bound, then
    # pop (a second scan over the same cancelled prefix).
    count = 0
    peek_time = queue.peek_time
    pop = queue.pop
    while True:
        next_time = peek_time()
        if next_time is None or next_time > UNTIL:
            break
        pop()
        count += 1
    return count


def _events_per_second(drain) -> float:
    queue = _filled_queue()
    start = time.perf_counter()
    count = drain(queue)
    elapsed = time.perf_counter() - start
    expected = EVENT_COUNT - (EVENT_COUNT + CANCEL_EVERY - 1) // CANCEL_EVERY
    assert count == expected, (count, expected)
    return count / elapsed


def _best_of(drain, rounds: int = 3) -> float:
    return max(_events_per_second(drain) for _ in range(rounds))


def test_bench_kernel_pop_next(benchmark):
    # Alternate the two disciplines and keep each one's best round, so a
    # noisy neighbour (this often runs on loaded CI boxes) cannot bias the
    # comparison toward whichever happened to run second.
    _best_of(_drain_legacy, rounds=1)  # warm allocators/caches for both
    legacy_eps = _best_of(_drain_legacy)
    fused_eps = benchmark.pedantic(
        lambda: _best_of(_drain_fused), rounds=1, iterations=1
    )

    # A realistic rate too: one CUBIC bulk flow through the full kernel.
    with timed() as t:
        bulk = run_single_cca("cubic", duration=2.0)
    sim_eps = bulk.net.sim.events_processed / t.seconds

    speedup = fused_eps / legacy_eps
    record(
        "kernel",
        t.seconds,
        events_processed=bulk.net.sim.events_processed,
        extra={
            "fused_events_per_second": round(fused_eps, 1),
            "legacy_events_per_second": round(legacy_eps, 1),
            "fused_over_legacy": round(speedup, 3),
            "sim_events_per_second": round(sim_eps, 1),
        },
    )
    print()
    print(f"  fused pop_next : {fused_eps:12.0f} events/s")
    print(f"  legacy peek+pop: {legacy_eps:12.0f} events/s  "
          f"(fused is {speedup:.2f}x)")
    print(f"  full simulator : {sim_eps:12.0f} events/s (cubic bulk flow)")
    # The fused path must never regress below the double-scan it replaced
    # (0.9 head-room absorbs scheduler noise on a busy machine).
    assert speedup > 0.9, (fused_eps, legacy_eps)
