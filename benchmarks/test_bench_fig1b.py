"""Benchmark: regenerate Fig. 1b (RTTs observed by BBR under steering).

Asserts the qualitative features the paper highlights: bimodal RTT samples
(URLLC-flavoured vs eMBB-flavoured modes) with queueing excursions well
above the base RTT.
"""

import pytest

from benchjson import record, timed
from repro.experiments.fig1 import run_fig1b

DURATION = 30.0


@pytest.fixture(scope="module")
def fig1b_result():
    with timed() as t:
        result = run_fig1b(duration=DURATION)
    record("fig1b", t.seconds, events_processed=result.events_processed)
    return result


def test_bench_fig1b(benchmark, fig1b_result):
    benchmark.pedantic(lambda: run_fig1b(duration=5.0), rounds=1, iterations=1)
    result = fig1b_result
    print()
    print(result.render())

    assert result.values["samples"] > 200
    # Data rides both channels; ACK acceleration makes nearly every RTT
    # measurement a cross-channel composite.
    assert result.values.get("data_ch0_samples", 0) > 50
    assert result.values.get("data_ch1_samples", 0) > 50
    assert result.values["cross_channel_samples"] > 0
    # The confusion, stated sharply: the flow's data depends on a path whose
    # propagation RTT is 50 ms, yet steering ensures BBR *never observes*
    # an RTT that large — every sample sits far below, and the min-RTT
    # filter (hence the BDP estimate) is poisoned. This is the mechanism
    # behind Fig. 1a's BBR collapse.
    assert result.values["min_rtt_ms"] < 15
    assert result.values["max_rtt_ms"] < 45
