"""Benchmark: regenerate Table 1 (web PLT with background flows).

Asserts the paper's qualitative result for both trace conditions:
DChannel improves mean PLT over eMBB-only, and supplying flow priorities
(barring the background flows from URLLC) improves it further.
"""

import pytest

from benchjson import record, timed
from repro.experiments.table1 import run_table1

PAGE_COUNT = 30


@pytest.fixture(scope="module")
def table1_result():
    with timed() as t:
        result = run_table1(page_count=PAGE_COUNT, loads_per_page=1)
    record("table1", t.seconds, events_processed=result.events_processed)
    return result


def test_bench_table1(benchmark, table1_result):
    from repro.experiments.table1 import run_table1_cell
    from repro.apps.web.corpus import generate_corpus

    pages = generate_corpus(count=2, seed=9)
    benchmark.pedantic(
        lambda: run_table1_cell("stationary", "dchannel", pages=pages),
        rounds=1,
        iterations=1,
    )
    result = table1_result
    print()
    print(result.render())

    for condition in ("stationary", "driving"):
        plt = {
            policy: result.values[f"{condition}:{policy}:mean_plt_ms"]
            for policy in ("embb-only", "dchannel", "dchannel+flowprio")
        }
        assert plt["dchannel"] < plt["embb-only"], (condition, plt)
        assert plt["dchannel+flowprio"] < plt["dchannel"], (condition, plt)
        improvement = 1 - plt["dchannel+flowprio"] / plt["embb-only"]
        assert improvement > 0.10, (condition, plt)
    # Driving is the harder condition (paper: 2334 vs 1697 ms baseline).
    assert (
        result.values["driving:embb-only:mean_plt_ms"]
        > result.values["stationary:embb-only:mean_plt_ms"]
    )
