"""Benchmark: delivery mode × steering — HTTP/2 multiplexing vs HTTP/1.1
parallel connections over HVCs.

Shows that the steering win is not an artifact of one transport structure:
DChannel accelerates both the single multiplexed connection and the
six-connection H1 pattern, while H2's single handshake keeps it ahead.
"""

import pytest

from benchjson import record, timed
from repro.apps.web.browser import load_page
from repro.apps.web.corpus import generate_corpus
from repro.apps.web.h1 import load_page_h1
from repro.experiments.table1 import web_network
from repro.units import to_ms

PAGES = 8


def _mean_plt(policy, loader_fn, pages, events):
    plts = []
    for index, page in enumerate(pages):
        net = web_network("5g-lowband-driving", policy, seed=index)
        result = loader_fn(net, page, cc="cubic", timeout=45.0)
        plts.append(result.plt if result.complete else 45.0)
        events[0] += net.sim.events_processed
    return to_ms(sum(plts) / len(plts))


def test_bench_h1_vs_h2(benchmark):
    pages = generate_corpus(count=PAGES, seed=0)
    events = [0]

    def run_all():
        return {
            ("embb-only", "h2"): _mean_plt("embb-only", load_page, pages, events),
            ("embb-only", "h1"): _mean_plt("embb-only", load_page_h1, pages, events),
            ("dchannel", "h2"): _mean_plt("dchannel", load_page, pages, events),
            ("dchannel", "h1"): _mean_plt("dchannel", load_page_h1, pages, events),
        }

    with timed() as t:
        results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record("h1_vs_h2", t.seconds, events_processed=events[0])
    print()
    for (policy, loader), plt in sorted(results.items()):
        print(f"  {policy:10s} {loader}: {plt:7.1f} ms")
    # Steering helps both delivery modes substantially.
    assert results[("dchannel", "h2")] < 0.8 * results[("embb-only", "h2")]
    assert results[("dchannel", "h1")] < 0.8 * results[("embb-only", "h1")]
    # One multiplexed connection amortizes its handshakes better than six.
    assert results[("dchannel", "h2")] <= results[("dchannel", "h1")]
