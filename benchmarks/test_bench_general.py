"""Benchmark: the composite 'general' policy vs each workload's specialist.

The paper's conclusion claims one design — per-packet steering + optional
app hints + HVC awareness — serves every workload. We check the composite
never gives up more than 10 % against the policy purpose-built for each
workload.
"""

import pytest

from repro.apps.web.corpus import generate_corpus
from repro.experiments.fig2 import run_fig2_cell
from repro.experiments.table1 import run_table1_cell
from repro.units import to_ms

PAGES = 8
VIDEO_DURATION = 30.0


def test_bench_general_policy(benchmark):
    def run_all():
        video = {}
        for scheme in ("priority", "general"):
            cell = run_fig2_cell(
                "5g-mmwave-driving", scheme, duration=VIDEO_DURATION
            )
            video[scheme] = to_ms(cell.latency_cdf().percentile(95))
        pages = generate_corpus(count=PAGES, seed=0)
        web = {}
        for policy in ("dchannel+flowprio", "general"):
            plts = run_table1_cell("driving", policy, pages=pages)
            web[policy] = to_ms(sum(plts) / len(plts))
        return video, web

    video, web = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(f"  video p95 latency: priority {video['priority']:.1f} ms, "
          f"general {video['general']:.1f} ms")
    print(f"  web mean PLT: dchannel+flowprio {web['dchannel+flowprio']:.1f} ms, "
          f"general {web['general']:.1f} ms")
    assert video["general"] <= 1.10 * video["priority"]
    assert web["general"] <= 1.10 * web["dchannel+flowprio"]
