"""Benchmark: the composite 'general' policy vs each workload's specialist.

The paper's conclusion claims one design — per-packet steering + optional
app hints + HVC awareness — serves every workload. We check the composite
never gives up more than 10 % against the policy purpose-built for each
workload.
"""

import pytest

from benchjson import record, timed
from repro.core.metrics import Cdf
from repro.experiments.fig2 import fig2_cell_unit
from repro.experiments.table1 import table1_cell_unit
from repro.units import to_ms

PAGES = 8
VIDEO_DURATION = 30.0


def test_bench_general_policy(benchmark):
    events = [0]

    def run_all():
        video = {}
        for scheme in ("priority", "general"):
            cell = fig2_cell_unit(
                trace="5g-mmwave-driving", scheme=scheme, duration=VIDEO_DURATION
            )
            events[0] += cell["events"]
            video[scheme] = to_ms(Cdf(cell["latencies"]).percentile(95))
        web = {}
        for policy in ("dchannel+flowprio", "general"):
            cell = table1_cell_unit(
                condition="driving", policy=policy, page_count=PAGES
            )
            events[0] += cell["events"]
            plts = cell["plts"]
            web[policy] = to_ms(sum(plts) / len(plts))
        return video, web

    with timed() as t:
        video, web = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record("general", t.seconds, events_processed=events[0])
    print()
    print(f"  video p95 latency: priority {video['priority']:.1f} ms, "
          f"general {video['general']:.1f} ms")
    print(f"  web mean PLT: dchannel+flowprio {web['dchannel+flowprio']:.1f} ms, "
          f"general {web['general']:.1f} ms")
    assert video["general"] <= 1.10 * video["priority"]
    assert web["general"] <= 1.10 * web["dchannel+flowprio"]
