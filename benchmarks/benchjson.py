"""Machine-readable benchmark records.

Every ``benchmarks/test_bench_*.py`` calls :func:`record` after its timed
run, producing ``BENCH_<name>.json`` next to the benchmark files (or under
``$REPRO_BENCH_DIR``). Each record carries wall-clock seconds plus — when
the workload is a simulation — the kernel event count and derived
events/sec, so perf changes across commits can be diffed mechanically
instead of eyeballed from pytest-benchmark tables.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment override for where BENCH_*.json files land.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def bench_dir() -> Path:
    override = os.environ.get(BENCH_DIR_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parent


def record(
    name: str,
    seconds: float,
    events_processed: Optional[int] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path."""
    payload: Dict[str, Any] = {
        "benchmark": name,
        "wall_seconds": round(seconds, 6),
    }
    if events_processed is not None:
        payload["events_processed"] = events_processed
        payload["events_per_second"] = (
            round(events_processed / seconds, 1) if seconds > 0 else None
        )
    if extra:
        payload.update(extra)
    directory = bench_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@contextmanager
def timed():
    """``with timed() as t: ...`` then read ``t.seconds``."""

    class _Timer:
        seconds = 0.0

    timer = _Timer()
    start = time.perf_counter()
    try:
        yield timer
    finally:
        timer.seconds = time.perf_counter() - start
