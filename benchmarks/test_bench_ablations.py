"""Benchmarks: the §3.2/§2.2/§3.1 ablations beyond the paper's figures.

Each regenerates one design-choice study from DESIGN.md's experiment index
and asserts the direction the paper's argument predicts.
"""

import pytest

from benchjson import record, timed
from repro.experiments.ablations import (
    run_ack_ablation,
    run_cc_ablation,
    run_cost_ablation,
    run_mlo_ablation,
    run_multipath_ablation,
    run_resequencer_ablation,
    run_tsn_ablation,
)


@pytest.fixture(scope="module")
def cc_ablation():
    with timed() as t:
        result = run_cc_ablation(duration=30.0)
    record("ab_cc", t.seconds, events_processed=result.events_processed)
    return result


def test_bench_cc_ablation(benchmark, cc_ablation):
    benchmark.pedantic(lambda: run_cc_ablation(duration=5.0), rounds=1, iterations=1)
    result = cc_ablation
    print()
    print(result.render())
    # §3.2: channel-aware RTT interpretation must recover throughput for
    # every delay-based CCA that steering confused. Vegas recovers least:
    # re-based RTTs still contain genuine URLLC self-queueing, which Vegas
    # reads as congestion — fully fixing that needs per-channel windows
    # (the paper's fuller transport design), not just RTT interpretation.
    for cc in ("bbr", "vivace"):
        plain = result.values[f"{cc}:plain"]
        aware = result.values[f"{cc}:aware"]
        assert aware > 1.5 * plain, (cc, plain, aware)
    assert result.values["vegas:aware"] > result.values["vegas:plain"]


def test_bench_ack_ablation(benchmark):
    with timed() as t:
        result = benchmark.pedantic(run_ack_ablation, rounds=1, iterations=1)
    record("ab_ack", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    # Transport-layer ACK separation + tail acceleration beats network-layer
    # DChannel under contention; tacking data onto ACKs forfeits the win.
    assert result.values["transport-aware:p95_ms"] <= result.values["dchannel:p95_ms"]
    assert (
        result.values["dchannel fat-acks:p95_ms"] >= result.values["dchannel:p95_ms"]
    )


def test_bench_mlo_ablation(benchmark):
    with timed() as t:
        result = benchmark.pedantic(
            lambda: run_mlo_ablation(duration=20.0), rounds=1, iterations=1
        )
    record("ab_mlo", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    # §2.2: replication trades bandwidth for reliability.
    assert (
        result.values["replicate:delivered"]
        > result.values["single-link:delivered"]
    )
    assert (
        result.values["replicate:delivered"]
        > result.values["spray (min-rtt):delivered"]
    )


def test_bench_multipath_ablation(benchmark):
    with timed() as t:
        result = benchmark.pedantic(
            lambda: run_multipath_ablation(duration=30.0), rounds=1, iterations=1
        )
    record("ab_mp", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    # §4 design: per-channel subflows + the hvc scheduler keep the fat
    # channel full while small messages ride URLLC — minRTT scheduling
    # congests URLLC and drags the RPC tail through its queue.
    assert result.values["hvc:rpc_p95_ms"] < 0.3 * result.values["minrtt:rpc_p95_ms"]
    assert result.values["hvc:goodput_mbps"] > 0.8 * result.values["minrtt:goodput_mbps"]


def test_bench_resequencer_ablation(benchmark):
    with timed() as t:
        result = benchmark.pedantic(
            lambda: run_resequencer_ablation(duration=20.0), rounds=1, iterations=1
        )
    record("ab_reseq", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    # The shim's reorder protection is load-bearing: without it, SACK
    # misreads cross-channel reordering as loss and CUBIC collapses.
    assert result.values["on:mbps"] > 5 * result.values["off:mbps"]


def test_bench_tsn_ablation(benchmark):
    with timed() as t:
        result = benchmark.pedantic(run_tsn_ablation, rounds=1, iterations=1)
    record("ab_tsn", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    # §2.2: one user's express traffic costs everyone else latency, and the
    # cost grows with the express load.
    assert (
        result.values["24.0:p95_ms"]
        > result.values["8.0:p95_ms"]
        > result.values["0.0:p95_ms"]
    )


def test_bench_cost_ablation(benchmark):
    with timed() as t:
        result = benchmark.pedantic(run_cost_ablation, rounds=1, iterations=1)
    record("ab_cost", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    # §3.1: paying more buys latency; paying nothing spends nothing.
    assert result.values["0.0:spend"] == 0.0
    assert result.values["10.0:p95_ms"] < result.values["0.0:p95_ms"]
    assert result.values["10.0:spend"] >= result.values["0.1:spend"]
