"""Benchmark: the steering-policy zoo on web page loads.

Quantifies the paper's related-work narrative: flow-level network selection
(IANS-like) and heterogeneity-blind spraying lose badly; delay-aware and
class-aware per-packet steering win.
"""

import pytest

from benchjson import record, timed
from repro.experiments.baselines import run_baselines

PAGES = 10


def test_bench_baselines(benchmark):
    with timed() as t:
        result = benchmark.pedantic(
            lambda: run_baselines(page_count=PAGES), rounds=1, iterations=1
        )
    record("baselines", t.seconds, events_processed=result.events_processed)
    print()
    print(result.render())
    plt = result.values
    # Per-packet steering beats the single-channel baseline...
    assert plt["dchannel"] < plt["embb-only"]
    assert plt["transport-aware"] < plt["embb-only"]
    # ...while heterogeneity-blind spraying actively hurts (half the bytes
    # take the 2 Mbps channel)...
    assert plt["round-robin"] > plt["embb-only"]
    # ...and IANS-style whole-flow pinning is the worst failure mode: any
    # flow pinned to URLLC at an idle instant drags its whole page to 2 Mbps.
    assert plt["flow-pinned"] > plt["embb-only"]
    # Transport-aware segment steering is at least as good as DChannel.
    assert plt["transport-aware"] <= plt["dchannel"] * 1.05
