"""Benchmark: regenerate Fig. 1a (CCA throughput under DChannel steering).

Run with ``pytest benchmarks/ --benchmark-only``. Prints the regenerated
table next to the paper's numbers and asserts the qualitative shape: the
loss-based CCA fills the high-bandwidth channel while every delay-based
CCA collapses.
"""

import pytest

from benchjson import record, timed
from repro.experiments.fig1 import run_fig1a

DURATION = 30.0


@pytest.fixture(scope="module")
def fig1a_result():
    with timed() as t:
        result = run_fig1a(duration=DURATION)
    record("fig1a", t.seconds, events_processed=result.events_processed)
    return result


def test_bench_fig1a(benchmark, fig1a_result):
    # The expensive full run happened once in the fixture; the benchmark
    # times a single representative cell so the suite stays tractable.
    from repro.experiments.fig1 import run_single_cca

    benchmark.pedantic(
        lambda: run_single_cca("vegas", duration=5.0), rounds=1, iterations=1
    )
    result = fig1a_result
    print()
    print(result.render())

    cubic = result.values["cubic"]
    bbr = result.values["bbr"]
    vegas = result.values["vegas"]
    vivace = result.values["vivace"]
    # Paper shape: CUBIC ~60 ≫ BBR ≫ Vegas ≥ Vivace (26.5 / 2.73 / 1.49).
    assert cubic > 45, f"CUBIC should fill the 60 Mbps channel, got {cubic:.1f}"
    assert cubic > 3 * bbr, "BBR must be far below CUBIC"
    assert bbr > vegas > vivace, "delay-based ordering BBR > Vegas > Vivace"
    assert vivace < 4, "Vivace collapses to a trickle"
