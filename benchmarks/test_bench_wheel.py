"""Microbenchmark: timer-wheel internals — insert cost, compaction, pool.

Complements ``test_bench_kernel.py`` (which measures end-to-end queue
churn): this one isolates the wheel's three claims and records them in
``BENCH_wheel.json``:

* near-horizon inserts are O(1) bucket appends (vs heap sift),
* cancel-heavy churn keeps the pending set bounded via compaction,
* transient events are served from the pool, not the allocator.
"""

import time

from benchjson import record
from repro.sim.events import EventQueue
from repro.sim.kernel import Simulator

INSERTS = 200_000


def _noop() -> None:
    return None


def _insert_rate() -> float:
    queue = EventQueue()
    delays = (0.0001, 0.0007, 0.0023, 0.0051, 0.0102, 0.0407, 0.1833)
    start = time.perf_counter()
    for i in range(INSERTS):
        queue.push(delays[i % 7], _noop)
    elapsed = time.perf_counter() - start
    return INSERTS / elapsed


def _cancel_churn():
    """The transport pacing pattern: arm two timers, cancel, re-arm."""
    sim = Simulator()
    state = {"pacing": None, "rto": None}

    def fire():
        if state["pacing"] is not None:
            state["pacing"].cancel()
        if state["rto"] is not None:
            state["rto"].cancel()
        state["pacing"] = sim.schedule(0.002, _noop)
        state["rto"] = sim.schedule(0.25, _noop)
        sim.schedule(0.0001, fire)

    sim.schedule(0.0001, fire)
    start = time.perf_counter()
    sim.run(max_events=100_000)
    elapsed = time.perf_counter() - start
    queue = sim._queue
    return {
        "events_per_second": round(sim.events_processed / elapsed, 1),
        "retained_entries": queue.entry_count(),
        "dead_entries": queue.dead_events,
        "compactions": queue.compactions,
    }


def _pool_hit_rate():
    """Transient self-rescheduling churn: the pool should serve ~100%."""
    sim = Simulator()
    state = {"fires": 0}

    def fire():
        state["fires"] += 1
        if state["fires"] < 50_000:
            sim.schedule_transient(0.0003, fire)

    sim.schedule_transient(0.0003, fire)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    pool = sim._queue.pool
    total = pool.created + pool.reused
    return {
        "events_per_second": round(sim.events_processed / elapsed, 1),
        "pool_created": pool.created,
        "pool_reused": pool.reused,
        "pool_hit_rate": round(pool.reused / total, 4) if total else 0.0,
    }


def test_bench_wheel(benchmark):
    insert_eps = benchmark.pedantic(
        lambda: max(_insert_rate() for _ in range(3)), rounds=1, iterations=1
    )
    cancel = _cancel_churn()
    pool = _pool_hit_rate()

    record(
        "wheel",
        0.0,
        extra={
            "insert_events_per_second": round(insert_eps, 1),
            "cancel_churn": cancel,
            "transient_churn": pool,
        },
    )
    print()
    print(f"  near-horizon insert : {insert_eps:12.0f} pushes/s")
    print(f"  cancel churn        : {cancel['events_per_second']:12.0f} events/s  "
          f"retained={cancel['retained_entries']} "
          f"compactions={cancel['compactions']}")
    print(f"  transient churn     : {pool['events_per_second']:12.0f} events/s  "
          f"pool_hit={pool['pool_hit_rate']:.1%}")
    # Compaction must bound the pending set: without it this workload
    # retains ~2500 cancelled RTO corpses (0.25s deadline / 0.1ms churn).
    assert cancel["retained_entries"] < 1000, cancel
    assert cancel["compactions"] > 0, cancel
    # Steady-state transient churn runs on recycled events.
    assert pool["pool_hit_rate"] > 0.99, pool
