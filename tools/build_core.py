#!/usr/bin/env python
"""Build the optional compiled simulator core with mypyc.

Compiles ``src/repro/sim/_core.py`` into a C extension placed next to
the source (``build_ext --inplace``), where it shadows the pure-Python
module under the same name. Selection between the two stays with the
``REPRO_COMPILED`` environment variable (see :mod:`repro.sim.core`).

Usage::

    python tools/build_core.py          # build (needs mypy + C toolchain)
    python tools/build_core.py --clean  # remove built artifacts
    python tools/build_core.py --check  # exit 0 iff the compiled core imports

The build is *optional* by design: when mypyc or a compiler is absent
this script fails with a clear message and the library keeps running on
the pure-Python fallback.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
SIM = SRC / "repro" / "sim"
REL_SOURCE = "repro/sim/_core.py"

_SETUP_TEMPLATE = """\
from setuptools import setup
from mypyc.build import mypycify

setup(
    name="repro-compiled-core",
    ext_modules=mypycify(["{source}"], opt_level="3"),
)
"""


def built_artifacts() -> list:
    """Compiled-core build products currently on disk."""
    artifacts = [p for p in SIM.glob("_core.*") if p.suffix in (".so", ".pyd")]
    artifacts += list(SIM.glob("_core.*.so")) + list(SIM.glob("_core.*.pyd"))
    return sorted(set(artifacts))


def clean() -> int:
    removed = []
    for path in built_artifacts():
        path.unlink()
        removed.append(path)
    for path in (SRC / "build",):
        if path.is_dir():
            shutil.rmtree(path)
            removed.append(path)
    print(f"removed {len(removed)} artifact(s)")
    return 0


def check() -> int:
    env = dict(os.environ, REPRO_COMPILED="1", PYTHONPATH=str(SRC))
    probe = (
        "from repro.sim import core; "
        "assert core.COMPILED, core.MODE; "
        "print('compiled core active:', core.sweep_times([1500], 1e6, 0.0))"
    )
    result = subprocess.run([sys.executable, "-c", probe], env=env)
    return result.returncode


def build() -> int:
    try:
        import mypyc  # noqa: F401
    except ImportError:
        print(
            "mypyc is not installed (it ships with `pip install mypy`); "
            "the pure-Python fallback remains active.",
            file=sys.stderr,
        )
        return 1
    setup_script = SRC / "_build_core_setup.py"
    setup_script.write_text(_SETUP_TEMPLATE.format(source=REL_SOURCE))
    try:
        result = subprocess.run(
            [sys.executable, setup_script.name, "build_ext", "--inplace"],
            cwd=SRC,
        )
    finally:
        setup_script.unlink()
    if result.returncode != 0:
        return result.returncode
    artifacts = built_artifacts()
    if not artifacts:
        print("build reported success but produced no extension", file=sys.stderr)
        return 1
    print(f"built: {', '.join(str(p.relative_to(ROOT)) for p in artifacts)}")
    return check()


def main() -> int:
    if "--clean" in sys.argv[1:]:
        return clean()
    if "--check" in sys.argv[1:]:
        return check()
    return build()


if __name__ == "__main__":
    raise SystemExit(main())
