"""``repro obs`` subcommands: summarize and validate exported traces.

Examples::

    python -m repro obs summarize traces/fig1a-cubic.jsonl
    python -m repro obs summarize traces/fig1a-cubic.jsonl --json
    python -m repro obs validate traces/fig1a-cubic.jsonl

``validate`` exits non-zero when the trace violates the schema in
:mod:`repro.obs.export` — the CI smoke step relies on this.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.export import validate_file
from repro.obs.summarize import summarize_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Inspect JSONL traces exported by the repro.obs layer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summarize = sub.add_parser(
        "summarize", help="render per-channel/per-connection summaries"
    )
    summarize.add_argument("trace", help="path to a JSONL trace file")
    summarize.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    validate = sub.add_parser("validate", help="check a trace against the schema")
    validate.add_argument("trace", help="path to a JSONL trace file")
    validate.add_argument(
        "--max-errors", type=int, default=20, help="errors to print before stopping"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "summarize":
        summary = summarize_file(args.trace)
        if args.json:
            print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        else:
            print(summary.render())
        return 0
    if args.command == "validate":
        count, errors = validate_file(args.trace)
        if errors:
            for error in errors[: args.max_errors]:
                print(f"INVALID: {error}", file=sys.stderr)
            if len(errors) > args.max_errors:
                print(
                    f"... and {len(errors) - args.max_errors} more", file=sys.stderr
                )
            return 1
        print(f"OK: {count} records, schema valid")
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
