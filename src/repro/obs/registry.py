"""The metrics registry: counters, gauges and histograms keyed by labels.

Metric naming scheme (documented in docs/ARCHITECTURE.md):

* names are dotted ``<component>.<quantity>`` — e.g. ``link.delivered``,
  ``transport.timeouts``, ``sim.events_processed``;
* labels identify the instance — ``channel=embb``, ``direction=down``,
  ``host=client``, ``flow=7``;
* counters are monotone, gauges are last-write-wins, histograms keep
  count/sum/min/max plus coarse log2 buckets.

Two update disciplines coexist:

* **push** — hot components that are already being traced increment their
  handles directly (handles are cached at attach time, never looked up per
  event);
* **pull** — *collectors* registered with :meth:`MetricsRegistry.add_collector`
  sync counters from component stats structs (``LinkStats``, ``DeviceStats``)
  at snapshot time. This is the no-op fast path: with tracing off, the data
  path pays nothing and the registry is still complete after
  :meth:`MetricsRegistry.collect`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple


LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, object]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotone counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self) -> None:
        self.value += 1

    def add(self, amount) -> None:
        self.value += amount

    def set_total(self, total) -> None:
        """Collector entry point: adopt an externally-maintained total."""
        if total > self.value:
            self.value = total


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """count/sum/min/max plus coarse log2 buckets of observed values."""

    __slots__ = ("name", "labels", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str, labels: LabelsKey) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket exponent -> count; values land in bucket ceil(log2(v)).
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = math.frexp(value)[1] if value > 0 else 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """All metrics of one observability context.

    Handles are memoized by ``(name, labels)``: asking twice returns the
    same object, so components can cache them at attach time and increment
    without any lookup on the data path.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- handle creation ------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = (name, _labels_key(labels))
        handle = self._counters.get(key)
        if handle is None:
            handle = self._counters[key] = Counter(name, key[1])
        return handle

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _labels_key(labels))
        handle = self._gauges.get(key)
        if handle is None:
            handle = self._gauges[key] = Gauge(name, key[1])
        return handle

    def histogram(self, name: str, **labels) -> Histogram:
        key = (name, _labels_key(labels))
        handle = self._histograms.get(key)
        if handle is None:
            handle = self._histograms[key] = Histogram(name, key[1])
        return handle

    # -- pull-based collection ------------------------------------------
    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback that syncs component stats into metrics."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every collector (idempotent; call before reading)."""
        for collector in self._collectors:
            collector(self)

    # -- reading --------------------------------------------------------
    def value(self, name: str, **labels):
        """Current value of a counter or gauge (after collecting)."""
        self.collect()
        key = (name, _labels_key(labels))
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return None

    def snapshot(self) -> Dict[str, List[dict]]:
        """``{family: [{labels, value}, ...]}`` for every metric."""
        self.collect()
        out: Dict[str, List[dict]] = {}
        for (name, _), counter in sorted(self._counters.items()):
            out.setdefault(name, []).append(
                {"labels": dict(counter.labels), "value": counter.value}
            )
        for (name, _), gauge in sorted(self._gauges.items()):
            out.setdefault(name, []).append(
                {"labels": dict(gauge.labels), "value": gauge.value}
            )
        for (name, _), hist in sorted(self._histograms.items()):
            out.setdefault(name, []).append(
                {
                    "labels": dict(hist.labels),
                    "count": hist.count,
                    "sum": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                }
            )
        return out

    def render(self) -> str:
        """Human-readable dump, one metric per line."""
        lines = []
        for family, entries in self.snapshot().items():
            for entry in entries:
                labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
                labels = "{" + labels + "}" if labels else ""
                if "value" in entry:
                    lines.append(f"{family}{labels} {entry['value']}")
                else:
                    lines.append(
                        f"{family}{labels} count={entry['count']} mean="
                        f"{entry['sum'] / entry['count'] if entry['count'] else 0:.6g}"
                    )
        return "\n".join(lines)
