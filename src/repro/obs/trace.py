"""Packet-lifecycle tracing and the :class:`Observability` context.

A trace is an in-memory list of flat dict records (one JSON object per
line once exported). A packet's *span* is the set of records sharing its
``packet_id``/``copy`` — ``steer`` at the device, then per link
``enqueue → transmit → deliver`` (or ``drop``), then ``dispatch`` once the
receiving device hands it up (after resequencing, so spans survive both
steering channel switches and the reorder buffer: the channel is stamped
on every record and the ``deliver → dispatch`` gap is the resequencer's
hold time).

The fast path is opt-in by construction: components carry an ``obs``
attribute that stays ``None`` unless tracing is enabled, so a disabled
trace costs one attribute load + identity check per instrumented site —
measured by ``benchmarks/test_bench_obs.py`` into ``BENCH_obs.json``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry

#: Trace format version, stamped into every export's ``meta`` record.
TRACE_VERSION = 1

#: Default cap on in-memory trace records (drops are counted, not silent).
DEFAULT_TRACE_CAPACITY = 2_000_000


class TraceBuffer:
    """Bounded append-only record buffer with a drop counter."""

    __slots__ = ("records", "capacity", "dropped")

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self.records: List[dict] = []
        self.capacity = capacity
        self.dropped = 0

    def append(self, record: dict) -> None:
        if len(self.records) < self.capacity:
            self.records.append(record)
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.records)


class Observability:
    """One run's observability context: registry + trace + probe config.

    Parameters
    ----------
    tracing:
        Record packet-lifecycle and channel-sample trace records. Off by
        default; everything else (registry collectors, gauges) still works.
    probes:
        Attach per-connection transport probes (cwnd/srtt/inflight/RTO
        time series). Defaults to following ``tracing``.
    trace_capacity:
        Cap on buffered trace records.
    channel_sample_period:
        Period of the channel sampler the network wires up on attach.
    """

    def __init__(
        self,
        tracing: bool = False,
        probes: Optional[bool] = None,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        channel_sample_period: float = 0.1,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracing = bool(tracing)
        self.probes = self.tracing if probes is None else bool(probes)
        self.trace: Optional[TraceBuffer] = (
            TraceBuffer(trace_capacity) if self.tracing else None
        )
        self.channel_sample_period = channel_sample_period
        #: (host, flow[, subflow]) -> TransportSeries, filled by probes.
        self.transport_series: Dict[tuple, object] = {}
        self._meta: dict = {"kind": "meta", "time": 0.0, "version": TRACE_VERSION}

    # ------------------------------------------------------------------
    def describe_network(self, channels: Sequence, hosts: Sequence[str]) -> None:
        """Stamp the channel/host layout into the export's meta record."""
        self._meta["channels"] = [
            {"index": ch.index, "name": ch.name} for ch in channels
        ]
        self._meta["hosts"] = list(hosts)

    def export_records(self) -> List[dict]:
        """All records for export: meta first, then the trace, then metrics."""
        records: List[dict] = [dict(self._meta)]
        if self.trace is not None:
            records.extend(self.trace.records)
            if self.trace.dropped:
                self.registry.counter("trace.records_dropped").set_total(
                    self.trace.dropped
                )
        records.append(
            {"kind": "metrics", "time": 0.0, "metrics": self.registry.snapshot()}
        )
        return records

    def export_jsonl(self, path) -> int:
        """Write the trace as JSON Lines; returns the record count."""
        from repro.obs.export import write_jsonl

        return write_jsonl(self.export_records(), path)


class LinkObs:
    """Per-link tracing adapter; installed only when tracing is on.

    Counter handles are cached here at attach time, so the per-event cost
    is one method call + a few attribute increments.
    """

    __slots__ = (
        "trace", "channel", "direction",
        "c_offered", "c_delivered", "c_lost", "c_overflow", "c_bytes",
    )

    def __init__(self, obs: Observability, channel_name: str, direction: str) -> None:
        labels = {"channel": channel_name, "direction": direction}
        registry = obs.registry
        self.trace = obs.trace
        self.channel = channel_name
        self.direction = direction
        self.c_offered = registry.counter("trace.link.offered", **labels)
        self.c_delivered = registry.counter("trace.link.delivered", **labels)
        self.c_lost = registry.counter("trace.link.lost", **labels)
        self.c_overflow = registry.counter("trace.link.overflow_drops", **labels)
        self.c_bytes = registry.counter("trace.link.bytes_delivered", **labels)

    def _packet_record(self, kind: str, now: float, packet) -> dict:
        return {
            "kind": kind,
            "time": now,
            "channel": self.channel,
            "direction": self.direction,
            "packet_id": packet.packet_id,
            "copy": packet.copy_index,
            "flow": packet.flow_id,
            "ptype": packet.ptype.value,
            "bytes": packet.size_bytes,
        }

    def on_offered(self) -> None:
        """Mirrors ``LinkStats.sent`` (offered while up, even if tail-dropped)."""
        self.c_offered.inc()

    def on_enqueue(self, packet, now: float) -> None:
        if self.trace is not None:
            self.trace.append(self._packet_record("enqueue", now, packet))

    def on_overflow(self, packet, now: float, reason: str = "overflow") -> None:
        self.c_overflow.inc()
        if self.trace is not None:
            record = self._packet_record("drop", now, packet)
            record["reason"] = reason
            self.trace.append(record)

    def on_transmit(self, packet, now: float) -> None:
        if self.trace is not None:
            self.trace.append(self._packet_record("transmit", now, packet))

    def on_loss(self, packet, now: float) -> None:
        self.c_lost.inc()
        if self.trace is not None:
            record = self._packet_record("drop", now, packet)
            record["reason"] = "loss"
            self.trace.append(record)

    def on_deliver(self, packet, now: float) -> None:
        self.c_delivered.inc()
        self.c_bytes.add(packet.size_bytes)
        if self.trace is not None:
            self.trace.append(self._packet_record("deliver", now, packet))


class DeviceObs:
    """Per-device tracing adapter: steering decisions and final dispatch."""

    __slots__ = ("trace", "host", "policy", "c_decisions", "registry")

    def __init__(self, obs: Observability, host: str, policy: str) -> None:
        self.trace = obs.trace
        self.host = host
        self.policy = policy
        self.registry = obs.registry
        #: channel index -> decision counter, grown lazily.
        self.c_decisions: Dict[int, object] = {}

    def on_steer(self, packet, choices, now: float) -> None:
        for channel_index in choices:
            counter = self.c_decisions.get(channel_index)
            if counter is None:
                counter = self.registry.counter(
                    "steer.decisions",
                    host=self.host,
                    policy=self.policy,
                    channel=channel_index,
                )
                self.c_decisions[channel_index] = counter
            counter.inc()
        if self.trace is not None:
            self.trace.append(
                {
                    "kind": "steer",
                    "time": now,
                    "host": self.host,
                    "policy": self.policy,
                    "packet_id": packet.packet_id,
                    "flow": packet.flow_id,
                    "ptype": packet.ptype.value,
                    "bytes": packet.size_bytes,
                    "channels": list(choices),
                }
            )

    def on_blackout_drop(self, packet, now: float) -> None:
        """Packet dropped at the device: every channel down, nothing to steer to.

        Emitted with the link-drop schema (reason "down") so span tooling
        attributes the loss; channel is "-" because none was selectable.
        """
        if self.trace is not None:
            self.trace.append(
                {
                    "kind": "drop",
                    "time": now,
                    "channel": "-",
                    "direction": "up",
                    "packet_id": packet.packet_id,
                    "copy": packet.copy_index,
                    "flow": packet.flow_id,
                    "ptype": packet.ptype.value,
                    "bytes": packet.size_bytes,
                    "reason": "down",
                }
            )

    def on_dispatch(self, packet, now: float) -> None:
        if self.trace is not None:
            self.trace.append(
                {
                    "kind": "dispatch",
                    "time": now,
                    "host": self.host,
                    "packet_id": packet.packet_id,
                    "copy": packet.copy_index,
                    "flow": packet.flow_id,
                    "channel": packet.channel_index,
                }
            )


def wire_network(net, obs: Observability):
    """Wire an :class:`~repro.core.api.HvcNetwork` into ``obs``.

    * registers pull collectors for every link's ``LinkStats``, both
      devices' ``DeviceStats`` and the kernel event count (zero data-path
      cost — this is the tracing-off fast path);
    * starts a :class:`~repro.net.monitor.ChannelMonitor` feeding the
      registry gauges (and ``channel`` trace records when tracing);
    * when tracing is on, installs :class:`LinkObs`/:class:`DeviceObs`
      adapters on every link and device.

    Returns the monitor so callers can read its series directly.
    """
    from repro.net.monitor import ChannelMonitor

    net.sim.attach_obs(obs)
    obs.describe_network(net.channels, [net.client.name, net.server.name])

    for channel in net.channels:
        for direction, link in (("up", channel.uplink), ("down", channel.downlink)):
            _add_link_collector(obs.registry, channel.name, direction, link)
            if obs.tracing:
                link.obs = LinkObs(obs, channel.name, direction)
    for device in (net.client, net.server):
        _add_device_collector(obs.registry, device)
        device.obs_ctx = obs
        if obs.tracing:
            policy = getattr(device.steerer, "name", type(device.steerer).__name__)
            device.obs = DeviceObs(obs, device.name, policy)

    monitor = ChannelMonitor(
        net.sim, net.channels, period=obs.channel_sample_period, obs=obs
    )
    return monitor


def _add_link_collector(registry: MetricsRegistry, channel: str, direction: str, link) -> None:
    labels = {"channel": channel, "direction": direction}
    c_offered = registry.counter("link.offered", **labels)
    c_delivered = registry.counter("link.delivered", **labels)
    c_lost = registry.counter("link.lost", **labels)
    c_overflow = registry.counter("link.overflow_drops", **labels)
    c_bytes = registry.counter("link.bytes_delivered", **labels)
    g_backlog = registry.gauge("link.backlog_bytes", **labels)
    stats = link.stats

    def collect(_registry) -> None:
        c_offered.set_total(stats.sent)
        c_delivered.set_total(stats.delivered)
        c_lost.set_total(stats.lost)
        c_overflow.set_total(stats.overflow_drops)
        c_bytes.set_total(stats.bytes_delivered)
        g_backlog.set(link.backlog_bytes)

    registry.add_collector(collect)


def _add_device_collector(registry: MetricsRegistry, device) -> None:
    labels = {"host": device.name}
    c_sent = registry.counter("device.packets_sent", **labels)
    c_received = registry.counter("device.packets_received", **labels)
    c_dupes = registry.counter("device.duplicates_discarded", **labels)
    c_drops = registry.counter("device.send_drops", **labels)
    c_blackout = registry.counter("device.blackout_drops", **labels)
    c_bytes_sent = registry.counter("device.bytes_sent", **labels)
    c_bytes_received = registry.counter("device.bytes_received", **labels)
    stats = device.stats

    def collect(_registry) -> None:
        c_sent.set_total(stats.packets_sent)
        c_received.set_total(stats.packets_received)
        c_dupes.set_total(stats.duplicates_discarded)
        c_drops.set_total(stats.send_drops)
        c_blackout.set_total(stats.blackout_drops)
        c_bytes_sent.set_total(stats.bytes_sent)
        c_bytes_received.set_total(stats.bytes_received)

    registry.add_collector(collect)
