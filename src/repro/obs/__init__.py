"""repro.obs — unified tracing and metrics for the whole stack.

Three pieces, one context object:

* :class:`MetricsRegistry` — counters/gauges/histograms keyed by component
  and channel; cheap pull collectors keep it complete with tracing off;
* packet-lifecycle **tracing** — ``steer → enqueue → transmit →
  deliver/drop → dispatch`` spans that survive steering channel switches
  and resequencing, exported as JSON Lines;
* **transport probes** — per-connection cwnd/srtt/inflight/RTO series.

Usage::

    from repro import HvcNetwork
    from repro.obs import Observability

    net = HvcNetwork([...])
    obs = net.attach_obs(Observability(tracing=True))
    ... run ...
    obs.export_jsonl("run.jsonl")     # then: python -m repro obs summarize

The disabled path is a no-op by construction (components' ``obs``
attributes stay ``None``); ``benchmarks/test_bench_obs.py`` measures the
overhead of both modes into ``BENCH_obs.json``.
"""

from repro.obs.export import (
    TRACE_SCHEMA,
    read_jsonl,
    validate_file,
    validate_record,
    write_jsonl,
)
from repro.obs.probes import (
    ConnectionProbe,
    MultipathProbe,
    TransportSample,
    TransportSeries,
    probe_for,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.summarize import TraceSummary, summarize, summarize_file
from repro.obs.trace import (
    DeviceObs,
    LinkObs,
    Observability,
    TraceBuffer,
    wire_network,
)

__all__ = [
    "TRACE_SCHEMA",
    "read_jsonl",
    "validate_file",
    "validate_record",
    "write_jsonl",
    "ConnectionProbe",
    "MultipathProbe",
    "TransportSample",
    "TransportSeries",
    "probe_for",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceSummary",
    "summarize",
    "summarize_file",
    "DeviceObs",
    "LinkObs",
    "Observability",
    "TraceBuffer",
    "wire_network",
]
