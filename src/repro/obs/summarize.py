"""Trace summaries: per-channel and per-connection views of a JSONL trace.

``repro obs summarize trace.jsonl`` renders, from an exported trace alone:

* per-channel/direction packet counts, drop breakdown and **utilization**
  — the latter rebuilt through the exact :class:`ChannelSeries` math the
  live :class:`~repro.net.monitor.ChannelMonitor` uses, so the number a
  trace reader computes matches the number the experiment saw;
* per-packet one-way latency (enqueue → deliver on one link) percentiles;
* per-connection transport probe summaries (srtt range, max cwnd,
  timeouts);
* steering decision shares per policy and channel.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Union

from repro.net.monitor import ChannelSample, ChannelSeries


def _percentile(ordered: List[float], pct: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(round(pct / 100.0 * (len(ordered) - 1)))))
    return ordered[index]


class TraceSummary:
    """Aggregations over one trace's records."""

    def __init__(self, records: List[dict]) -> None:
        self.records = records
        self.meta: dict = {}
        self.metrics: dict = {}
        #: (channel, direction) -> {"offered": n, "delivered": n, ...}
        self.link_counts: Dict[tuple, Dict[str, int]] = defaultdict(
            lambda: {
                "offered": 0, "delivered": 0, "bytes_delivered": 0,
                "drop_overflow": 0, "drop_loss": 0, "drop_down": 0,
            }
        )
        #: (channel, direction) -> sorted enqueue->deliver latencies.
        self.latencies: Dict[tuple, List[float]] = defaultdict(list)
        #: channel name -> ChannelSeries rebuilt from "channel" records.
        self.channel_series: Dict[str, ChannelSeries] = {}
        #: (host, flow) -> transport record list.
        self.transport: Dict[tuple, List[dict]] = defaultdict(list)
        #: (host, policy) -> {channel_index: packets}.
        self.steer_counts: Dict[tuple, Dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._ingest(records)

    # ------------------------------------------------------------------
    def _ingest(self, records: List[dict]) -> None:
        enqueue_times: Dict[tuple, float] = {}
        for record in records:
            kind = record["kind"]
            if kind in ("enqueue", "transmit", "deliver", "drop"):
                key = (record["channel"], record["direction"])
                counts = self.link_counts[key]
                packet_key = key + (record["packet_id"], record["copy"])
                if kind == "enqueue":
                    counts["offered"] += 1
                    enqueue_times[packet_key] = record["time"]
                elif kind == "deliver":
                    counts["delivered"] += 1
                    counts["bytes_delivered"] += record["bytes"]
                    start = enqueue_times.pop(packet_key, None)
                    if start is not None:
                        self.latencies[key].append(record["time"] - start)
                elif kind == "drop":
                    counts["drop_" + record["reason"]] += 1
                    enqueue_times.pop(packet_key, None)
            elif kind == "channel":
                series = self.channel_series.get(record["channel"])
                if series is None:
                    series = self.channel_series[record["channel"]] = ChannelSeries(
                        name=record["channel"]
                    )
                series.samples.append(
                    ChannelSample(
                        time=record["time"],
                        up_backlog_bytes=record["up_backlog_bytes"],
                        down_backlog_bytes=record["down_backlog_bytes"],
                        up_delivered_bytes=record["up_delivered_bytes"],
                        down_delivered_bytes=record["down_delivered_bytes"],
                        up_rate_bps=record["up_rate_bps"],
                        down_rate_bps=record["down_rate_bps"],
                        base_rtt=record["base_rtt"],
                        # Fleet background fields are optional: traces
                        # written before they existed rebuild as 0.
                        up_background_bytes=record.get("up_background_bytes", 0),
                        down_background_bytes=record.get("down_background_bytes", 0),
                        up_background_bps=record.get("up_background_bps", 0.0),
                        down_background_bps=record.get("down_background_bps", 0.0),
                    )
                )
            elif kind == "transport":
                self.transport[(record["host"], record["flow"])].append(record)
            elif kind == "steer":
                key = (record["host"], record["policy"])
                for channel in record["channels"]:
                    self.steer_counts[key][channel] += 1
            elif kind == "meta":
                self.meta = record
            elif kind == "metrics":
                self.metrics = record.get("metrics", {})
        for values in self.latencies.values():
            values.sort()

    # ------------------------------------------------------------------
    def utilization(self, channel: str, direction: str = "down") -> float:
        """Channel utilization, identical to the live monitor's math."""
        series = self.channel_series.get(channel)
        if series is None:
            return 0.0
        return series.utilization(direction)

    def to_dict(self) -> dict:
        """The whole summary as one JSON-serializable dict."""
        channels = {}
        for (channel, direction), counts in sorted(self.link_counts.items()):
            entry = dict(counts)
            ordered = self.latencies.get((channel, direction), [])
            if ordered:
                entry["latency_p50"] = _percentile(ordered, 50)
                entry["latency_p95"] = _percentile(ordered, 95)
                entry["latency_p99"] = _percentile(ordered, 99)
            if channel in self.channel_series:
                entry["utilization"] = self.utilization(channel, direction)
            channels[f"{channel}/{direction}"] = entry
        connections = {}
        for (host, flow), samples in sorted(self.transport.items()):
            srtts = [s["srtt"] for s in samples if s["srtt"] is not None]
            connections[f"{host}/flow{flow}"] = {
                "samples": len(samples),
                "timeouts": sum(1 for s in samples if s["event"] == "timeout"),
                "max_cwnd_bytes": max((s["cwnd_bytes"] for s in samples), default=0),
                "max_inflight_bytes": max(
                    (s["inflight_bytes"] for s in samples), default=0
                ),
                "srtt_min": min(srtts) if srtts else None,
                "srtt_max": max(srtts) if srtts else None,
                "subflows": sorted(
                    {s["subflow"] for s in samples if s.get("subflow") is not None}
                ),
            }
        steering = {}
        for (host, policy), counts in sorted(self.steer_counts.items()):
            steering[f"{host}/{policy}"] = {
                str(channel): count for channel, count in sorted(counts.items())
            }
        return {
            "meta": {k: v for k, v in self.meta.items() if k != "kind"},
            "channels": channels,
            "connections": connections,
            "steering": steering,
        }

    def render(self) -> str:
        """Human-readable multi-section summary."""
        data = self.to_dict()
        lines: List[str] = []
        meta = data["meta"]
        if meta.get("channels"):
            names = ", ".join(c["name"] for c in meta["channels"])
            lines.append(f"trace v{meta.get('version', '?')} — channels: {names}")
        lines.append("")
        lines.append("per-channel links:")
        for key, entry in data["channels"].items():
            util = (
                f" util={entry['utilization']:.3f}" if "utilization" in entry else ""
            )
            latency = (
                f" lat p50/p95={entry['latency_p50'] * 1e3:.1f}/"
                f"{entry['latency_p95'] * 1e3:.1f}ms"
                if "latency_p50" in entry
                else ""
            )
            drops = entry["drop_overflow"] + entry["drop_loss"] + entry["drop_down"]
            lines.append(
                f"  {key:<16} offered={entry['offered']:<7} "
                f"delivered={entry['delivered']:<7} drops={drops:<5}"
                f"{util}{latency}"
            )
        if data["connections"]:
            lines.append("")
            lines.append("per-connection transport probes:")
            for key, entry in data["connections"].items():
                srtt = (
                    f"srtt {entry['srtt_min'] * 1e3:.1f}–{entry['srtt_max'] * 1e3:.1f}ms"
                    if entry["srtt_min"] is not None
                    else "srtt -"
                )
                subflows = (
                    f" subflows={entry['subflows']}" if entry["subflows"] else ""
                )
                lines.append(
                    f"  {key:<20} samples={entry['samples']:<6} {srtt} "
                    f"max_cwnd={entry['max_cwnd_bytes']:.0f}B "
                    f"timeouts={entry['timeouts']}{subflows}"
                )
        if data["steering"]:
            lines.append("")
            lines.append("steering decisions (packets per channel):")
            for key, counts in data["steering"].items():
                share = ", ".join(f"ch{c}={n}" for c, n in counts.items())
                lines.append(f"  {key:<20} {share}")
        return "\n".join(lines)


def summarize_file(path: Union[str, "object"]) -> TraceSummary:
    """Load a JSONL trace and build its :class:`TraceSummary`."""
    from repro.obs.export import read_jsonl

    return TraceSummary(read_jsonl(path))


def summarize(obs) -> TraceSummary:
    """Summarize a live :class:`~repro.obs.Observability` context."""
    return TraceSummary(obs.export_records())
