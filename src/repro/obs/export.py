"""Trace export: JSON Lines writing, reading and schema validation.

Every record is one flat JSON object with at least ``kind`` (str) and
``time`` (number). The schema below lists, per kind, the required fields
and their types; extra fields are allowed (forward compatibility), missing
or mistyped ones are validation errors. ``repro obs validate`` (and the CI
smoke step) run :func:`validate_file` over exported traces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

_NUM = (int, float)
_INT = (int,)
_STR = (str,)
_LIST = (list,)
_DICT = (dict,)
_OPT_NUM = (int, float, type(None))
_OPT_INT = (int, type(None))

#: kind -> {field: allowed types}. ``kind``/``time`` are checked for all.
TRACE_SCHEMA: Dict[str, Dict[str, tuple]] = {
    "meta": {"version": _INT},
    "steer": {
        "host": _STR, "policy": _STR, "packet_id": _INT, "flow": _INT,
        "ptype": _STR, "bytes": _INT, "channels": _LIST,
    },
    "enqueue": {
        "channel": _STR, "direction": _STR, "packet_id": _INT, "copy": _INT,
        "flow": _INT, "ptype": _STR, "bytes": _INT,
    },
    "transmit": {
        "channel": _STR, "direction": _STR, "packet_id": _INT, "copy": _INT,
        "flow": _INT, "ptype": _STR, "bytes": _INT,
    },
    "deliver": {
        "channel": _STR, "direction": _STR, "packet_id": _INT, "copy": _INT,
        "flow": _INT, "ptype": _STR, "bytes": _INT,
    },
    "drop": {
        "channel": _STR, "direction": _STR, "packet_id": _INT, "copy": _INT,
        "flow": _INT, "ptype": _STR, "bytes": _INT, "reason": _STR,
    },
    "dispatch": {"host": _STR, "packet_id": _INT, "copy": _INT, "flow": _INT},
    "channel": {
        "channel": _STR,
        "up_backlog_bytes": _INT, "down_backlog_bytes": _INT,
        "up_delivered_bytes": _INT, "down_delivered_bytes": _INT,
        "up_rate_bps": _NUM, "down_rate_bps": _NUM, "base_rtt": _NUM,
    },
    "transport": {
        "host": _STR, "flow": _INT, "cwnd_bytes": _NUM, "srtt": _OPT_NUM,
        "rto": _NUM, "inflight_bytes": _INT, "event": _STR, "subflow": _OPT_INT,
    },
    "metrics": {"metrics": _DICT},
}

#: kind -> {field: allowed types} for fields that MAY appear but are not
#: required — traces written before the field existed stay valid. The
#: fleet background fields ride here: a non-fleet run omits them.
TRACE_OPTIONAL: Dict[str, Dict[str, tuple]] = {
    "channel": {
        "up_background_bytes": _INT, "down_background_bytes": _INT,
        "up_background_bps": _NUM, "down_background_bps": _NUM,
    },
}

#: Drop reasons the schema accepts.
DROP_REASONS = ("overflow", "loss", "down")


def validate_record(record: dict) -> List[str]:
    """Schema errors for one record (empty list = valid)."""
    errors: List[str] = []
    kind = record.get("kind")
    if not isinstance(kind, str):
        return [f"record has no string 'kind': {record!r}"]
    if kind not in TRACE_SCHEMA:
        return [f"unknown record kind {kind!r}"]
    if not isinstance(record.get("time"), _NUM):
        errors.append(f"{kind}: 'time' must be a number")
    for fld, types in TRACE_SCHEMA[kind].items():
        if fld not in record:
            errors.append(f"{kind}: missing field {fld!r}")
            continue
        value = record[fld]
        # bool is an int subclass in Python; don't let it satisfy _INT/_NUM.
        if not isinstance(value, types) or (
            isinstance(value, bool) and bool not in types
        ):
            errors.append(f"{kind}: field {fld!r} has type {type(value).__name__}")
    for fld, types in TRACE_OPTIONAL.get(kind, {}).items():
        if fld not in record:
            continue
        value = record[fld]
        if not isinstance(value, types) or (
            isinstance(value, bool) and bool not in types
        ):
            errors.append(f"{kind}: field {fld!r} has type {type(value).__name__}")
    if kind == "drop" and record.get("reason") not in DROP_REASONS:
        errors.append(f"drop: unknown reason {record.get('reason')!r}")
    return errors


def write_jsonl(records: Iterable[dict], path: Union[str, Path]) -> int:
    """Write records as JSON Lines; returns how many were written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Load every record from a JSON Lines trace file."""
    records: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON ({exc})") from exc
    return records


def validate_file(path: Union[str, Path]) -> Tuple[int, List[str]]:
    """(record count, schema errors) for a JSONL trace file."""
    errors: List[str] = []
    records = read_jsonl(path)
    for index, record in enumerate(records):
        for error in validate_record(record):
            errors.append(f"record {index}: {error}")
    if not records:
        errors.append("trace is empty")
    elif records[0].get("kind") != "meta":
        errors.append("first record must be 'meta'")
    return len(records), errors
