"""Per-connection transport probes: cwnd, srtt, inflight, RTO as series.

A probe rides the connection's own ACK/RTO processing (no extra timers, no
extra kernel events): every processed ACK appends one
:class:`TransportSample`, every RTO fire appends one with
``event="timeout"`` so the exponential backoff is visible in the series.
Samples land in ``Observability.transport_series`` keyed by
``(host, flow)`` — or ``(host, flow, subflow)`` for multipath subflows —
and, when tracing is on, are mirrored as ``transport`` trace records.

Connections discover their probe through ``device.obs_ctx`` at
construction time, so both :class:`~repro.transport.connection.Connection`
and :class:`~repro.transport.multipath.MultipathConnection` are covered no
matter how they were created.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._compat import hot_dataclass
from typing import List, Optional


@hot_dataclass
class TransportSample:
    """One snapshot of a connection's (or subflow's) control state."""

    time: float
    cwnd_bytes: float
    srtt: Optional[float]
    rto: float
    inflight_bytes: int
    event: str = "ack"  # "ack" | "timeout"
    subflow: Optional[int] = None


@dataclass
class TransportSeries:
    """All samples for one (host, flow[, subflow])."""

    host: str
    flow_id: int
    subflow: Optional[int] = None
    samples: List[TransportSample] = field(default_factory=list)

    def max_cwnd_bytes(self) -> float:
        return max((s.cwnd_bytes for s in self.samples), default=0.0)

    def srtt_series(self) -> List[tuple]:
        return [(s.time, s.srtt) for s in self.samples if s.srtt is not None]

    def timeouts(self) -> int:
        return sum(1 for s in self.samples if s.event == "timeout")


class ConnectionProbe:
    """Probe for a single-path :class:`Connection` endpoint."""

    __slots__ = ("series", "trace", "host", "flow_id", "c_timeouts")

    def __init__(self, obs, host: str, flow_id: int) -> None:
        self.host = host
        self.flow_id = flow_id
        self.series = TransportSeries(host=host, flow_id=flow_id)
        obs.transport_series[(host, flow_id)] = self.series
        self.trace = obs.trace
        self.c_timeouts = obs.registry.counter(
            "transport.timeouts", host=host, flow=flow_id
        )

    def _sample(self, conn, event: str, subflow: Optional[int] = None) -> TransportSample:
        return TransportSample(
            time=conn.sim.now,
            cwnd_bytes=conn.cc.cwnd_bytes,
            srtt=conn.rtt.srtt,
            rto=conn.rtt.rto,
            inflight_bytes=conn.bytes_in_flight,
            event=event,
            subflow=subflow,
        )

    def _emit(self, sample: TransportSample) -> None:
        self.series.samples.append(sample)
        if self.trace is not None:
            self.trace.append(
                {
                    "kind": "transport",
                    "time": sample.time,
                    "host": self.host,
                    "flow": self.flow_id,
                    "cwnd_bytes": sample.cwnd_bytes,
                    "srtt": sample.srtt,
                    "rto": sample.rto,
                    "inflight_bytes": sample.inflight_bytes,
                    "event": sample.event,
                    "subflow": sample.subflow,
                }
            )

    def on_ack(self, conn) -> None:
        self._emit(self._sample(conn, "ack"))

    def on_timeout(self, conn) -> None:
        self.c_timeouts.inc()
        self._emit(self._sample(conn, "timeout"))


class MultipathProbe(ConnectionProbe):
    """Probe for a :class:`MultipathConnection`: one series per subflow."""

    __slots__ = ("obs", "_subflow_series")

    def __init__(self, obs, host: str, flow_id: int) -> None:
        super().__init__(obs, host, flow_id)
        self.obs = obs
        self._subflow_series = {}

    def _series_for(self, subflow_index: int) -> TransportSeries:
        series = self._subflow_series.get(subflow_index)
        if series is None:
            series = TransportSeries(
                host=self.host, flow_id=self.flow_id, subflow=subflow_index
            )
            self._subflow_series[subflow_index] = series
            self.obs.transport_series[(self.host, self.flow_id, subflow_index)] = series
        return series

    def _emit_subflow(self, mp_conn, subflow, event: str) -> None:
        sample = TransportSample(
            time=mp_conn.sim.now,
            cwnd_bytes=subflow.cc.cwnd_bytes,
            srtt=subflow.rtt.srtt,
            rto=subflow.rtt.rto,
            inflight_bytes=subflow.in_flight,
            event=event,
            subflow=subflow.channel_index,
        )
        self._series_for(subflow.channel_index).samples.append(sample)
        if self.trace is not None:
            self.trace.append(
                {
                    "kind": "transport",
                    "time": sample.time,
                    "host": self.host,
                    "flow": self.flow_id,
                    "cwnd_bytes": sample.cwnd_bytes,
                    "srtt": sample.srtt,
                    "rto": sample.rto,
                    "inflight_bytes": sample.inflight_bytes,
                    "event": sample.event,
                    "subflow": sample.subflow,
                }
            )

    def on_subflow_ack(self, mp_conn, subflow) -> None:
        self._emit_subflow(mp_conn, subflow, "ack")

    def on_subflow_timeout(self, mp_conn, subflow) -> None:
        self.c_timeouts.inc()
        self._emit_subflow(mp_conn, subflow, "timeout")


def probe_for(device, flow_id: int, multipath: bool = False):
    """The probe a transport endpoint on ``device`` should use, or None.

    The device exposes its observability context as ``obs_ctx`` once
    :func:`repro.obs.trace.wire_network` has run; probes stay off (and the
    transport pays a single ``None`` check per ACK) otherwise.
    """
    obs = getattr(device, "obs_ctx", None)
    if obs is None or not obs.probes:
        return None
    cls = MultipathProbe if multipath else ConnectionProbe
    return cls(obs, device.name, flow_id)
