"""``python -m repro.obs`` — alias for ``python -m repro obs``."""

import sys

from repro.obs.cli import main

sys.exit(main())
