"""Scripted channel dynamics: outages and handover-style events.

Traces capture *continuous* variation; this module scripts *discrete*
events — a URLLC grant revoked for two seconds, a Wi-Fi link going down
during a handover, an eMBB cell switch — on top of any channel::

    timeline = ChannelTimeline(sim, net.channel_named("urllc"))
    timeline.outage(start=5.0, duration=2.0)
    timeline.at(10.0, lambda ch: ch.set_up(False))

Events are ordinary simulator callbacks, so they compose with everything
else and stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.errors import NetworkError
from repro.net.channel import Channel
from repro.sim.kernel import Simulator


@dataclass
class ChannelEvent:
    """One scheduled change, recorded for inspection."""

    time: float
    description: str


class ChannelTimeline:
    """Schedules administrative events against one channel."""

    def __init__(self, sim: Simulator, channel: Channel) -> None:
        self.sim = sim
        self.channel = channel
        self.events: List[ChannelEvent] = []

    def at(self, time: float, action: Callable[[Channel], None], description: str = "") -> None:
        """Run ``action(channel)`` at absolute simulation time ``time``."""
        if time < self.sim.now:
            raise NetworkError(
                f"cannot schedule channel event at {time}; now is {self.sim.now}"
            )
        self.events.append(ChannelEvent(time=time, description=description or "custom"))
        self.sim.schedule_at(time, action, self.channel)

    def outage(self, start: float, duration: float) -> None:
        """Take the channel down at ``start`` for ``duration`` seconds.

        Outages hold the channel down via :meth:`Channel.fail` /
        :meth:`Channel.restore` reference counting, so overlapping outages
        compose: the channel comes back only when the *last* active outage
        ends (an earlier outage's end no longer re-enables the channel
        mid-way through a later one).
        """
        if duration <= 0:
            raise NetworkError(f"outage duration must be positive, got {duration}")
        self.at(start, lambda ch: ch.fail(), f"outage begin ({duration:.2f}s)")
        self.at(start + duration, lambda ch: ch.restore(), "outage end")

    def flap(self, start: float, period: float, count: int, down_fraction: float = 0.5) -> None:
        """``count`` down/up cycles of ``period`` seconds from ``start``.

        Each cycle is down for ``down_fraction`` of the period, then up.
        """
        if not 0 < down_fraction < 1:
            raise NetworkError(f"down_fraction must be in (0,1), got {down_fraction}")
        if period <= 0 or count < 1:
            raise NetworkError("period must be positive and count >= 1")
        for i in range(count):
            self.outage(start + i * period, period * down_fraction)
