"""Packet taps: pcap-style event capture for debugging and analysis.

A :class:`PacketTap` subscribes to a device's send/receive hooks (and the
channels' departure hooks) and records one event row per packet milestone.
Records are plain dicts, exportable as JSON Lines, so steering decisions
can be audited after a run::

    tap = PacketTap(net)
    net.run(until=5.0)
    urllc_acks = [e for e in tap.events
                  if e["event"] == "send" and e["channel"] == 1
                  and e["ptype"] == "ack"]
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from repro.net.packet import Packet


class PacketTap:
    """Records packet events from an :class:`~repro.core.api.HvcNetwork`.

    ``predicate`` (if given) filters which packets are recorded; use it to
    keep long captures small (e.g. ``lambda p: p.flow_id == 7``).
    """

    def __init__(
        self,
        net,
        predicate: Optional[Callable[[Packet], bool]] = None,
        max_events: int = 1_000_000,
    ) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.net = net
        self.predicate = predicate
        self.max_events = max_events
        self.events: List[Dict] = []
        self.dropped_records = 0
        net.client.on_send_hooks.append(self._sender("client"))
        net.server.on_send_hooks.append(self._sender("server"))
        net.client.on_receive_hooks.append(self._receiver("client"))
        net.server.on_receive_hooks.append(self._receiver("server"))

    # ------------------------------------------------------------------
    def _record(self, event: str, host: str, packet: Packet, channel=None) -> None:
        if self.predicate is not None and not self.predicate(packet):
            return
        if len(self.events) >= self.max_events:
            self.dropped_records += 1
            return
        self.events.append(
            {
                "time": self.net.now,
                "event": event,
                "host": host,
                "packet_id": packet.packet_id,
                "flow": packet.flow_id,
                "ptype": packet.ptype.value,
                "bytes": packet.size_bytes,
                "seq": packet.seq,
                "channel": channel if channel is not None else packet.channel_index,
                "message_id": packet.message_id,
                "message_priority": packet.message_priority,
                "flow_priority": packet.flow_priority,
                "retransmission": packet.is_retransmission,
            }
        )

    def _sender(self, host: str):
        return lambda packet, channel: self._record("send", host, packet, channel)

    def _receiver(self, host: str):
        return lambda packet: self._record("receive", host, packet)

    # ------------------------------------------------------------------
    def flows(self) -> List[int]:
        """Flow ids seen, sorted."""
        return sorted({e["flow"] for e in self.events})

    def channel_share(self, event: str = "send") -> Dict[int, int]:
        """Bytes per channel for the given event type."""
        share: Dict[int, int] = {}
        for record in self.events:
            if record["event"] == event and record["channel"] is not None:
                share[record["channel"]] = share.get(record["channel"], 0) + record["bytes"]
        return share

    def to_jsonl(self) -> str:
        """All events as JSON Lines."""
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events)

    def write_jsonl(self, path: str) -> int:
        """Write events to ``path``; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
            if self.events:
                handle.write("\n")
        return len(self.events)
