"""Packets and the cross-layer tags they may carry.

A packet is the unit handed from the transport (or a datagram application)
to the device, steered onto a channel, and delivered to the peer device.

Cross-layer fields (``message_id``, ``message_priority``, ``message_last``,
``flow_priority``) are *optional tags*: network-layer steering policies must
work when they are ``None`` (the DChannel deployment model); cross-layer
policies read them. This mirrors the paper's argument that a general design
should exploit application hints when present but not require them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import field
from typing import Optional

from repro._compat import hot_dataclass
from repro.units import DEFAULT_HEADER_BYTES

_packet_ids = itertools.count()


class PacketType(enum.Enum):
    """Coarse classification used by steering heuristics.

    ``ACK`` means a *pure* acknowledgement (no payload); an ACK piggybacked
    on data is just ``DATA`` — the distinction matters because DChannel-style
    policies accelerate small control packets.
    """

    DATA = "data"
    ACK = "ack"
    SYN = "syn"
    FIN = "fin"
    PROBE = "probe"
    DATAGRAM = "datagram"

    @property
    def is_control(self) -> bool:
        """True for packets that carry protocol control, not payload."""
        return self in (PacketType.ACK, PacketType.SYN, PacketType.FIN, PacketType.PROBE)


@hot_dataclass
class Packet:
    """A simulated packet.

    ``size_bytes`` is the on-the-wire size (headers included) used for
    serialization and queueing; ``payload_bytes`` is the application/transport
    payload carried.
    """

    flow_id: int
    ptype: PacketType
    payload_bytes: int = 0
    header_bytes: int = DEFAULT_HEADER_BYTES

    # Transport bookkeeping (meaning is transport-specific).
    seq: int = 0
    end_seq: int = 0
    ack_seq: int = 0
    #: Selective-ACK ranges carried by pure ACKs: ((start, end), ...).
    sack: tuple = ()
    is_retransmission: bool = False
    #: Opaque reference back to the transport's segment record, if any.
    segment: Optional[object] = None

    # Cross-layer tags (optional; see module docstring).
    message_id: Optional[int] = None
    message_priority: Optional[int] = None
    #: True when this is the final packet of its message.
    message_last: bool = False
    #: Stream offset where this packet's message begins (reliable transport).
    message_start: Optional[int] = None
    #: Flow-level priority; lower value = more important. None = untagged.
    flow_priority: Optional[int] = None
    #: Channel index requested by a channel-aware transport (multipath
    #: subflows own their channel); bypasses the device's steering policy.
    channel_hint: Optional[int] = None

    # Filled in by the device / links.
    #: Shim-level per-flow sequence number used for cross-channel
    #: resequencing at the receiving device (DChannel's reorder buffer).
    shim_seq: Optional[int] = None
    #: How many distinct channels this flow's data has used so far, stamped
    #: by the sending shim. The receiver's FIFO loss proof needs delivery
    #: evidence from that many channels before declaring a hole lost.
    shim_channel_count: int = 1
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: On-the-wire size (payload + headers), fixed at construction. This
    #: is read several times per hop (steering, queues, serialization,
    #: congestion accounting), so it is a stored field rather than a
    #: computed property; construct packets with the right
    #: ``payload_bytes``/``header_bytes`` instead of mutating them later.
    size_bytes: int = field(init=False, default=0)
    #: Steering's control-packet test (pure control type, no payload),
    #: likewise fixed at construction.
    is_control: bool = field(init=False, default=False)
    created_at: float = 0.0
    sent_at: Optional[float] = None
    delivered_at: Optional[float] = None
    channel_index: Optional[int] = None
    #: Incremented each time a redundant copy is made (original is 0).
    copy_index: int = 0

    def __post_init__(self) -> None:
        self.size_bytes = self.payload_bytes + self.header_bytes
        self.is_control = self.ptype.is_control and self.payload_bytes == 0

    def copy_for_redundancy(self, copy_index: int) -> "Packet":
        """Duplicate this packet for replication across channels.

        The copy shares ``packet_id`` (so the receiving device can
        de-duplicate) but gets its own delivery bookkeeping.
        """
        clone = Packet(
            flow_id=self.flow_id,
            ptype=self.ptype,
            payload_bytes=self.payload_bytes,
            header_bytes=self.header_bytes,
            seq=self.seq,
            end_seq=self.end_seq,
            ack_seq=self.ack_seq,
            is_retransmission=self.is_retransmission,
            segment=self.segment,
            message_id=self.message_id,
            message_priority=self.message_priority,
            message_last=self.message_last,
            message_start=self.message_start,
            flow_priority=self.flow_priority,
        )
        clone.packet_id = self.packet_id
        clone.created_at = self.created_at
        clone.copy_index = copy_index
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.packet_id} flow={self.flow_id} {self.ptype.value}"
            f" seq={self.seq} {self.size_bytes}B ch={self.channel_index}>"
        )
