"""Packets and the cross-layer tags they may carry.

A packet is the unit handed from the transport (or a datagram application)
to the device, steered onto a channel, and delivered to the peer device.

Cross-layer fields (``message_id``, ``message_priority``, ``message_last``,
``flow_priority``) are *optional tags*: network-layer steering policies must
work when they are ``None`` (the DChannel deployment model); cross-layer
policies read them. This mirrors the paper's argument that a general design
should exploit application hints when present but not require them.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.units import DEFAULT_HEADER_BYTES

_packet_ids = itertools.count()


class PacketType(enum.Enum):
    """Coarse classification used by steering heuristics.

    ``ACK`` means a *pure* acknowledgement (no payload); an ACK piggybacked
    on data is just ``DATA`` — the distinction matters because DChannel-style
    policies accelerate small control packets.
    """

    DATA = "data"
    ACK = "ack"
    SYN = "syn"
    FIN = "fin"
    PROBE = "probe"
    DATAGRAM = "datagram"

    @property
    def is_control(self) -> bool:
        """True for packets that carry protocol control, not payload."""
        return self in (PacketType.ACK, PacketType.SYN, PacketType.FIN, PacketType.PROBE)


class Packet:
    """A simulated packet.

    ``size_bytes`` is the on-the-wire size (headers included) used for
    serialization and queueing; ``payload_bytes`` is the application/transport
    payload carried.

    ``payload_bytes``/``header_bytes`` are **fixed at construction**:
    ``size_bytes`` and ``is_control`` are read several times per hop
    (steering, queues, serialization, congestion accounting), so they are
    stored once rather than recomputed — a later mutation of the byte
    fields would silently desync queue byte accounting and steering's
    control test. Both are therefore exposed as read-only properties;
    construct a new packet instead of editing an existing one.
    """

    __slots__ = (
        "flow_id",
        "ptype",
        "_payload_bytes",
        "_header_bytes",
        "seq",
        "end_seq",
        "ack_seq",
        "sack",
        "is_retransmission",
        "segment",
        "message_id",
        "message_priority",
        "message_last",
        "message_start",
        "flow_priority",
        "channel_hint",
        "shim_seq",
        "shim_channel_count",
        "packet_id",
        "size_bytes",
        "is_control",
        "created_at",
        "sent_at",
        "delivered_at",
        "channel_index",
        "copy_index",
    )

    def __init__(
        self,
        flow_id: int,
        ptype: PacketType,
        payload_bytes: int = 0,
        header_bytes: int = DEFAULT_HEADER_BYTES,
        # Transport bookkeeping (meaning is transport-specific).
        seq: int = 0,
        end_seq: int = 0,
        ack_seq: int = 0,
        # Selective-ACK ranges carried by pure ACKs: ((start, end), ...).
        sack: tuple = (),
        is_retransmission: bool = False,
        # Opaque reference back to the transport's segment record, if any.
        segment: Optional[object] = None,
        # Cross-layer tags (optional; see module docstring).
        message_id: Optional[int] = None,
        message_priority: Optional[int] = None,
        # True when this is the final packet of its message.
        message_last: bool = False,
        # Stream offset where this packet's message begins.
        message_start: Optional[int] = None,
        # Flow-level priority; lower value = more important. None = untagged.
        flow_priority: Optional[int] = None,
        # Channel index requested by a channel-aware transport (multipath
        # subflows own their channel); bypasses the device's steering policy.
        channel_hint: Optional[int] = None,
        # Filled in by the device / links.
        # Shim-level per-flow sequence number used for cross-channel
        # resequencing at the receiving device (DChannel's reorder buffer).
        shim_seq: Optional[int] = None,
        # How many distinct channels this flow's data has used so far,
        # stamped by the sending shim. The receiver's FIFO loss proof needs
        # delivery evidence from that many channels before declaring a hole
        # lost.
        shim_channel_count: int = 1,
        packet_id: Optional[int] = None,
        created_at: float = 0.0,
        sent_at: Optional[float] = None,
        delivered_at: Optional[float] = None,
        channel_index: Optional[int] = None,
        # Incremented each time a redundant copy is made (original is 0).
        copy_index: int = 0,
    ) -> None:
        self.flow_id = flow_id
        self.ptype = ptype
        self._payload_bytes = payload_bytes
        self._header_bytes = header_bytes
        self.seq = seq
        self.end_seq = end_seq
        self.ack_seq = ack_seq
        self.sack = sack
        self.is_retransmission = is_retransmission
        self.segment = segment
        self.message_id = message_id
        self.message_priority = message_priority
        self.message_last = message_last
        self.message_start = message_start
        self.flow_priority = flow_priority
        self.channel_hint = channel_hint
        self.shim_seq = shim_seq
        self.shim_channel_count = shim_channel_count
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self.size_bytes = payload_bytes + header_bytes
        self.is_control = ptype.is_control and payload_bytes == 0
        self.created_at = created_at
        self.sent_at = sent_at
        self.delivered_at = delivered_at
        self.channel_index = channel_index
        self.copy_index = copy_index

    @property
    def payload_bytes(self) -> int:
        """Application/transport payload carried. Fixed at construction."""
        return self._payload_bytes

    @property
    def header_bytes(self) -> int:
        """Header overhead on the wire. Fixed at construction."""
        return self._header_bytes

    def copy_for_redundancy(self, copy_index: int) -> "Packet":
        """Duplicate this packet for replication across channels.

        The copy shares ``packet_id`` (so the receiving device can
        de-duplicate) but gets its own delivery bookkeeping.
        """
        clone = Packet(
            flow_id=self.flow_id,
            ptype=self.ptype,
            payload_bytes=self.payload_bytes,
            header_bytes=self.header_bytes,
            seq=self.seq,
            end_seq=self.end_seq,
            ack_seq=self.ack_seq,
            is_retransmission=self.is_retransmission,
            segment=self.segment,
            message_id=self.message_id,
            message_priority=self.message_priority,
            message_last=self.message_last,
            message_start=self.message_start,
            flow_priority=self.flow_priority,
        )
        clone.packet_id = self.packet_id
        clone.created_at = self.created_at
        clone.copy_index = copy_index
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.packet_id} flow={self.flow_id} {self.ptype.value}"
            f" seq={self.seq} {self.size_bytes}B ch={self.channel_index}>"
        )
