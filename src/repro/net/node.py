"""Hosts: the multi-channel device that flows and steering share.

Each endpoint owns a :class:`Device`. Flows (transport connections, datagram
sockets) register a per-flow delivery handler and call :meth:`Device.send`;
the device consults its steering policy for every packet — this shared
vantage point is what lets one policy arbitrate URLLC capacity across
competing flows (the Table 1 experiment).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import NetworkError, SteeringError
from repro.net.channel import Channel
from repro.net.packet import Packet, PacketType
from repro.net.resequencer import DEFAULT_HOLD_TIMEOUT, Resequencer
from repro.sim.kernel import Simulator

#: Per-flow window of remembered packet ids for redundancy de-duplication.
DEDUP_WINDOW = 4096


class ChannelView:
    """A host-side, read-only view of one channel's state.

    Steering policies receive a list of these; everything they may legally
    observe (DChannel's deployment model: local queues plus advertised
    channel characteristics) is exposed here.

    Steering consults views on every packet, so the hot accessors are
    flattened: the outbound link is resolved once at construction, the
    immutable spec fields (``index``/``name``/``cost_per_byte``/
    ``reliable``) are plain attributes, and trace-free links take a
    precomputed static path for rate/delay instead of re-branching through
    ``Link.current_rate``/``current_delay`` per read.
    """

    __slots__ = (
        "_channel",
        "_end",
        "_out",
        "_static",
        "_rate0",
        "_delay0",
        "index",
        "name",
        "cost_per_byte",
        "reliable",
    )

    def __init__(self, channel: Channel, end: int) -> None:
        self._channel = channel
        self._end = end
        out = channel.out_link(end)
        self._out = out
        #: Trace-driven links re-sample rate/delay from the trace at every
        #: read; fixed links only scale spec constants by the (mutable)
        #: fault factor/offset — precompute the constants for those.
        self._static = out.spec.trace is None
        self._rate0 = out.spec.rate_bps
        self._delay0 = out.spec.delay
        self.index = channel.index
        self.name = channel.spec.name
        self.cost_per_byte = channel.spec.cost_per_byte
        self.reliable = channel.spec.reliable

    @property
    def up(self) -> bool:
        channel = self._channel
        return channel._admin_up and channel._down_refs == 0

    @property
    def rate_bps(self) -> float:
        """Current outbound serialization rate (after background load)."""
        out = self._out
        if self._static:
            rate = self._rate0 * out._rate_factor - out._background_bps
            return rate if rate > 0.0 else 0.0
        return out.current_rate()

    @property
    def base_delay(self) -> float:
        """Current outbound propagation delay."""
        out = self._out
        if self._static:
            return self._delay0 + out.delay_offset
        return out.current_delay()

    @property
    def base_rtt(self) -> float:
        return self._channel.base_rtt()

    @property
    def capacity_bps(self) -> float:
        """Raw outbound link capacity (before background subtraction)."""
        return self._out.capacity_bps()

    @property
    def backlog_bytes(self) -> int:
        """Outbound bytes queued or in service on this host's side."""
        out = self._out
        serving = out._serving
        return out.queue.backlog_bytes + (
            serving.size_bytes if serving is not None else 0
        )

    @property
    def loss_rate(self) -> float:
        """Stationary outbound loss probability."""
        return self._out.loss.long_run_rate

    def queueing_delay(self, extra_bytes: int = 0) -> float:
        """Estimated wait before ``extra_bytes`` would finish serializing."""
        out = self._out
        if self._static:
            rate = self._rate0 * out._rate_factor - out._background_bps
        else:
            rate = out.current_rate()
        if rate <= 0:
            return float("inf")
        serving = out._serving
        backlog = out.queue.backlog_bytes + (
            serving.size_bytes if serving is not None else 0
        )
        return (backlog + extra_bytes) * 8 / rate

    def estimated_delivery_delay(self, packet_bytes: int) -> float:
        """One-way delay estimate for a packet offered right now.

        This is the quantity DChannel's reward heuristic compares across
        channels: local queueing + serialization + propagation. One fused
        read of the link (rate, delay, backlog) per estimate.
        """
        out = self._out
        if self._static:
            rate = self._rate0 * out._rate_factor
            delay = self._delay0 + out.delay_offset
        else:
            rate = out.current_rate()
            delay = out.current_delay()
        if rate <= 0:
            return float("inf")
        serving = out._serving
        backlog = out.queue.backlog_bytes + (
            serving.size_bytes if serving is not None else 0
        )
        return (backlog + packet_bytes) * 8 / rate + delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChannelView {self.index}:{self.name} backlog={self.backlog_bytes}B>"


@dataclass
class DeviceStats:
    """Lifetime counters for one device."""

    packets_sent: int = 0
    packets_received: int = 0
    duplicates_discarded: int = 0
    send_drops: int = 0
    #: Sends attempted while *no* channel was up (total blackout). Dropped
    #: at the device instead of raising: reliable transports retransmit
    #: after recovery, unreliable ones degrade (a lost frame is a lost
    #: frame).
    blackout_drops: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class Device:
    """One host's attachment to a set of channels."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "host",
        resequence: bool = True,
        resequence_timeout: float = DEFAULT_HOLD_TIMEOUT,
    ) -> None:
        self.sim = sim
        self.name = name
        self.channels: List[Channel] = []
        self.views: List[ChannelView] = []
        self.end: int = 0
        self.steerer: Optional[object] = None
        self.stats = DeviceStats()
        self._handlers: Dict[int, Callable[[Packet], None]] = {}
        self._default_handler: Optional[Callable[[Packet], None]] = None
        self._seen: Dict[int, set] = {}
        self._seen_order: Dict[int, deque] = {}
        #: Shim resequencing (see :mod:`repro.net.resequencer`): restores
        #: per-flow order for reliable DATA packets split across channels.
        self.resequencer: Optional[Resequencer] = (
            Resequencer(sim, self._dispatch, timeout=resequence_timeout)
            if resequence
            else None
        )
        self._shim_seq: Dict[int, int] = {}
        self._shim_channels: Dict[int, set] = {}
        #: Instrumentation hooks: fn(packet, channel_index).
        self.on_send_hooks: List[Callable[[Packet, int], None]] = []
        self.on_receive_hooks: List[Callable[[Packet], None]] = []
        #: Channel up/down observers: fn(channel, up, now). Transports
        #: subscribe to react to recovery (fast RTO re-probe, buffered
        #: datagram flush) without polling.
        self.on_channel_transition_hooks: List[Callable] = []
        #: Tracing adapter (:class:`repro.obs.DeviceObs`); ``None`` unless
        #: tracing is enabled.
        self.obs = None
        #: The :class:`repro.obs.Observability` context this device is wired
        #: into (set by ``wire_network`` even with tracing off) — transports
        #: look here at construction time to attach their probes.
        self.obs_ctx = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, channels: Sequence[Channel], end: int) -> None:
        """Connect this device to ``channels`` as side ``end`` (0=A, 1=B)."""
        self.channels = list(channels)
        self.end = end
        self.views = [ChannelView(ch, end) for ch in self.channels]
        for channel in self.channels:
            channel.in_link(end).connect(self._on_link_deliver)
            channel.on_transition.append(self._on_channel_transition)

    def set_steerer(self, steerer: object) -> None:
        """Install the steering policy (anything with ``choose``)."""
        self.steerer = steerer

    def register_flow(self, flow_id: int, handler: Callable[[Packet], None]) -> None:
        """Route delivered packets of ``flow_id`` to ``handler``."""
        if flow_id in self._handlers:
            raise NetworkError(f"flow {flow_id} already registered on {self.name}")
        self._handlers[flow_id] = handler

    def unregister_flow(self, flow_id: int) -> None:
        """Remove a flow's handler; late packets go to the default handler."""
        self._handlers.pop(flow_id, None)

    def set_default_handler(self, handler: Callable[[Packet], None]) -> None:
        """Handler for packets whose flow is not registered."""
        self._default_handler = handler

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def any_channel_up(self) -> bool:
        """False during a total blackout (every channel down)."""
        return any(channel.up for channel in self.channels)

    def send(self, packet: Packet) -> None:
        """Steer and transmit one packet (possibly onto several channels)."""
        if not self.channels:
            raise NetworkError(f"device {self.name} has no channels attached")
        if not self.any_channel_up():
            # Total blackout: no policy can route. Degrade gracefully —
            # count the drop and let the sender's recovery machinery
            # (RTO, datagram loss tolerance) handle it, instead of letting
            # a steering policy raise mid-run.
            self.stats.blackout_drops += 1
            if self.obs is not None:
                self.obs.on_blackout_drop(packet, self.sim.now)
            return
        if packet.channel_hint is not None:
            # A channel-aware transport (multipath subflow) owns placement.
            choices: Sequence[int] = (packet.channel_hint,)
        elif self.steerer is None:
            choices = (0,)
        else:
            choices = self.steerer.choose(packet, self.views, self.sim.now)
        if not choices:
            raise SteeringError(
                f"steering policy returned no channel for packet {packet.packet_id}"
            )
        if self.obs is not None:
            self.obs.on_steer(packet, choices, self.sim.now)
        packet.sent_at = self.sim.now
        # Channel-aware transports (channel_hint set) do their own
        # reassembly; the shim resequencer only protects legacy
        # single-sequence transports from cross-channel reordering.
        if (
            self.resequencer is not None
            and packet.ptype == PacketType.DATA
            and packet.channel_hint is None
        ):
            seq = self._shim_seq.get(packet.flow_id, 0)
            packet.shim_seq = seq
            self._shim_seq[packet.flow_id] = seq + 1
            used = self._shim_channels.setdefault(packet.flow_id, set())
            used.update(choices)
            packet.shim_channel_count = len(used)
        for copy_index, channel_index in enumerate(choices):
            self._transmit(packet, channel_index, copy_index)

    def _transmit(self, packet: Packet, channel_index: int, copy_index: int) -> None:
        if not 0 <= channel_index < len(self.channels):
            raise SteeringError(
                f"steering chose channel {channel_index}, device has {len(self.channels)}"
            )
        outgoing = packet if copy_index == 0 else packet.copy_for_redundancy(copy_index)
        outgoing.channel_index = channel_index
        channel = self.channels[channel_index]
        channel.cost_bytes += outgoing.size_bytes
        accepted = channel.out_link(self.end).send(outgoing)
        if accepted:
            self.stats.packets_sent += 1
            self.stats.bytes_sent += outgoing.size_bytes
            for hook in self.on_send_hooks:
                hook(outgoing, channel_index)
        else:
            self.stats.send_drops += 1

    def _on_link_deliver(self, packet: Packet) -> None:
        if self._is_duplicate(packet):
            self.stats.duplicates_discarded += 1
            return
        self.stats.packets_received += 1
        self.stats.bytes_received += packet.size_bytes
        if self.resequencer is not None and packet.ptype == PacketType.DATA:
            self.resequencer.push(packet)
        else:
            self._dispatch(packet)

    def _dispatch(self, packet: Packet) -> None:
        if self.obs is not None:
            self.obs.on_dispatch(packet, self.sim.now)
        for hook in self.on_receive_hooks:
            hook(packet)
        handler = self._handlers.get(packet.flow_id, self._default_handler)
        if handler is not None:
            handler(packet)

    def _on_channel_transition(self, channel: Channel, up: bool, now: float) -> None:
        for hook in list(self.on_channel_transition_hooks):
            hook(channel, up, now)

    def _is_duplicate(self, packet: Packet) -> bool:
        seen = self._seen.setdefault(packet.flow_id, set())
        order = self._seen_order.setdefault(packet.flow_id, deque())
        if packet.packet_id in seen:
            return True
        seen.add(packet.packet_id)
        order.append(packet.packet_id)
        if len(order) > DEDUP_WINDOW:
            seen.discard(order.popleft())
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Device {self.name} end={self.end} channels={len(self.channels)}>"
