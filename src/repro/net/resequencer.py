"""Receiver-side resequencing buffer (DChannel's shim reorder protection).

Splitting one flow's packets across channels with very different delays
re-orders them, and a SACK-based transport misreads the resulting holes as
loss. DChannel's shim therefore restores per-flow order at the receiver
before handing packets up, holding early arrivals until their predecessors
land or a timeout expires (the predecessor was genuinely lost).

Only in-order transports need this, so the device applies it to reliable
DATA packets; pure control packets (cumulative ACKs are order-tolerant) and
real-time datagrams bypass the buffer — holding them would destroy exactly
the acceleration steering buys.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.sim.events import Event
from repro.sim.kernel import Simulator

DEFAULT_HOLD_TIMEOUT = 0.08
#: Safety valve: flush if a flow accumulates this many held packets.
MAX_HELD_PACKETS = 2048

#: Debug fault: when True, :meth:`Resequencer._drain` releases the first
#: drained packet twice. Exists purely so the invariant monitor's
#: no-duplicate-release law can be demonstrated against a real violation
#: (``python -m repro chaos --seed-bug reseq-double-release``); never set
#: in production code paths.
DEBUG_DOUBLE_RELEASE = False


class Resequencer:
    """Per-flow in-order delivery with a hold timeout."""

    def __init__(
        self,
        sim: Simulator,
        deliver: Callable[[Packet], None],
        timeout: float = DEFAULT_HOLD_TIMEOUT,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.sim = sim
        self.deliver = deliver
        self.timeout = timeout
        self._expected: Dict[int, int] = {}
        #: flow → {shim_seq: (packet, deadline)}
        self._held: Dict[int, Dict[int, Tuple[Packet, float]]] = {}
        #: flow → channel → highest shim_seq delivered on that channel.
        #: Channels are FIFO, so once *every* channel a flow uses has
        #: delivered beyond seq s, a missing s is provably lost and its
        #: hole can be flushed immediately instead of waiting out the
        #: timeout (the timeout remains as a backstop for idle channels).
        self._chan_max: Dict[int, Dict[int, int]] = {}
        #: flow → channel count advertised by the sender's shim; the FIFO
        #: proof needs delivery evidence from this many channels.
        self._chan_count: Dict[int, int] = {}
        self._flush_events: Dict[int, Event] = {}
        self.packets_held = 0
        self.timeout_flushes = 0

    def push(self, packet: Packet) -> None:
        """Offer a packet; it is delivered now or once order permits."""
        if packet.shim_seq is None:
            self.deliver(packet)
            return
        flow = packet.flow_id
        if packet.channel_index is not None:
            marks = self._chan_max.setdefault(flow, {})
            previous = marks.get(packet.channel_index, -1)
            marks[packet.channel_index] = max(previous, packet.shim_seq)
        self._chan_count[flow] = max(
            self._chan_count.get(flow, 1), packet.shim_channel_count
        )
        expected = self._expected.get(flow, 0)
        if packet.shim_seq < expected:
            # A straggler whose hole was already flushed: pass it through.
            self.deliver(packet)
            return
        held = self._held.setdefault(flow, {})
        if packet.shim_seq in held:
            return  # duplicate copy of a held packet
        if packet.shim_seq == expected:
            self.deliver(packet)
            self._expected[flow] = expected + 1
            self._drain(flow)
        else:
            self.packets_held += 1
            held[packet.shim_seq] = (packet, self.sim.now + self.timeout)
            if len(held) > MAX_HELD_PACKETS:
                self._flush_through(flow, min(held))
            self._flush_proven_losses(flow)
            self._schedule_flush(flow)

    # ------------------------------------------------------------------
    def _flush_proven_losses(self, flow: int) -> None:
        """Flush holes below every channel's delivery high-water mark.

        Valid only once every channel the sender's shim has used for this
        flow has delivered something — a channel with no deliveries yet may
        still be carrying the missing packets.
        """
        marks = self._chan_max.get(flow)
        if not marks or len(marks) < self._chan_count.get(flow, 1):
            return
        safe = min(marks.values())
        if self._expected.get(flow, 0) <= safe:
            self._flush_through(flow, safe)

    @property
    def pending_count(self) -> int:
        """Packets currently held across every flow (audit hook)."""
        return sum(len(held) for held in self._held.values())

    def _drain(self, flow: int) -> None:
        held = self._held.get(flow)
        if not held:
            return
        expected = self._expected.get(flow, 0)
        first = True
        while expected in held:
            packet, _ = held.pop(expected)
            self.deliver(packet)
            if first and DEBUG_DOUBLE_RELEASE:
                self.deliver(packet)
            first = False
            expected += 1
        self._expected[flow] = expected
        self._reschedule_flush(flow)

    def _schedule_flush(self, flow: int) -> None:
        if flow in self._flush_events:
            return
        deadline = self._earliest_deadline(flow)
        if deadline is not None:
            self._flush_events[flow] = self.sim.schedule_at(
                deadline, self._on_flush_timer, flow
            )

    def _reschedule_flush(self, flow: int) -> None:
        event = self._flush_events.pop(flow, None)
        if event is not None:
            self.sim.cancel(event)
        self._schedule_flush(flow)

    def _earliest_deadline(self, flow: int) -> Optional[float]:
        held = self._held.get(flow)
        if not held:
            return None
        return min(deadline for _, deadline in held.values())

    def _on_flush_timer(self, flow: int) -> None:
        self._flush_events.pop(flow, None)
        held = self._held.get(flow)
        if not held:
            return
        expired = [
            seq for seq, (_, deadline) in held.items() if deadline <= self.sim.now
        ]
        if expired:
            self.timeout_flushes += 1
            self._flush_through(flow, max(expired))
        self._schedule_flush(flow)

    def _flush_through(self, flow: int, seq: int) -> None:
        """Give up on holes at or below ``seq``; deliver held packets in order."""
        held = self._held.get(flow, {})
        ready = sorted(s for s in held if s <= seq)
        for s in ready:
            packet, _ = held.pop(s)
            self.deliver(packet)
        self._expected[flow] = max(self._expected.get(flow, 0), seq + 1)
        self._drain(flow)
