"""Unidirectional links: serializer + drop-tail buffer + propagation delay.

A link models the classic bottleneck pipeline: packets wait in a byte-bounded
FIFO, are serialized one at a time at the link's (possibly time-varying)
rate, may be lost by a stochastic process on departure, and arrive at the
receiver one propagation delay later. Delivery order is FIFO even when the
propagation delay shrinks mid-flight (as in trace-driven 5G links).

Serialization sweeps (:class:`LinkBatch`): on a fixed-rate FIFO link the
future is knowable — when a backlog builds, the finish time of every
queued packet is ``now + cumsum(tx_i)``. Instead of scheduling each
finish event from inside the previous one (one kernel push per packet,
forever), the link precomputes the whole window in one array pass
(numpy when the window is large, a plain list loop otherwise) and files
every finish event with a single bulk push. All *observable* transitions
keep their per-packet instants: busy-time accrues when a packet begins
service, the loss draw happens at departure (same RNG call order), the
delivery is scheduled at departure using the delay *then* in force. A
sweep is only a bet that the rate stays put and the queue stays FIFO —
anything that breaks the bet (fault rate scaling, a flush) bumps the
sweep epoch, so in-flight sweep events turn into no-ops and the packet
mid-serializer re-arms through the classic per-packet path at the exact
same finish instant. Trace-driven links (time-varying rate) and
priority queues (reorderable head) never sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue, PriorityDropTailQueue
from repro.sim.core import sweep_times
from repro.sim.kernel import Simulator
from repro.units import transmission_time

try:  # pragma: no cover - exercised indirectly via LinkBatch
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: How long a link waits before re-checking a trace whose current rate is 0.
OUTAGE_POLL_INTERVAL = 1e-3

#: Queued packets (beyond the one entering service) needed before the
#: link bothers precomputing a sweep; short backlogs stay per-packet.
SWEEP_MIN_QUEUED = 3

#: Longest precomputed window. Bounds the bet the sweep places on the
#: rate staying constant, and the work discarded when it loses.
SWEEP_MAX = 64

#: Window size at and above which the numpy path beats the list loop
#: (array-construction overhead dominates below this).
SWEEP_NUMPY_MIN = 32


class LinkBatch:
    """One precomputed serialization window on a fixed-rate FIFO link.

    Array-of-structs layout: parallel tuples of packets, per-packet
    transmission times, and absolute finish instants, plus the sweep
    epoch the precomputation was valid for and a cursor. Built by
    :meth:`Link._start_sweep`, consumed one entry per finish event by
    :meth:`Link._sweep_finish`.
    """

    __slots__ = ("packets", "tx_times", "finish_times", "epoch", "pos")

    def __init__(
        self,
        packets: List[Packet],
        tx_times: List[float],
        finish_times: List[float],
        epoch: int,
    ) -> None:
        self.packets = packets
        self.tx_times = tx_times
        self.finish_times = finish_times
        self.epoch = epoch
        self.pos = 0

    @staticmethod
    def compute(
        packets: List[Packet], rate: float, now: float
    ) -> Tuple[List[float], List[float]]:
        """Vectorized ``tx`` and cumulative finish times for a window.

        Arithmetic matches the per-packet path exactly: each tx is
        ``(size * 8) / rate`` (same float rounding elementwise in
        numpy), and finish times accumulate sequentially — ``cumsum``
        is a sequential accumulation, so the sums round identically to
        the event-by-event additions they replace.
        """
        if _np is not None and len(packets) >= SWEEP_NUMPY_MIN:
            count = len(packets)
            buf = _np.empty(count + 1, dtype=_np.float64)
            buf[0] = now
            sizes = _np.fromiter(
                (p.size_bytes for p in packets), dtype=_np.float64, count=count
            )
            # Seeding the cumsum with ``now`` makes every partial sum the
            # sequential ``acc += tx`` chain, so finish instants round
            # bit-for-bit like the per-packet schedule they replace.
            _np.multiply(sizes, 8.0, out=sizes)
            _np.divide(sizes, rate, out=sizes)
            buf[1:] = sizes
            return sizes.tolist(), _np.cumsum(buf)[1:].tolist()
        # Scalar path: the selected core loop (mypyc-compiled when built,
        # pure-Python otherwise — see repro.sim.core). One call per sweep.
        return sweep_times([p.size_bytes for p in packets], rate, now)


@dataclass
class LinkSpec:
    """Static description of one link direction.

    Either give a fixed ``rate_bps``/``delay``, or a ``trace`` providing
    ``rate_at(t)`` and ``delay_at(t)`` (see :mod:`repro.traces.model`); the
    trace takes precedence when present.
    """

    rate_bps: float = 0.0
    delay: float = 0.0
    queue_bytes: int = 256_000
    loss: Optional[LossModel] = None
    trace: Optional[object] = None
    priority_queue: bool = False

    def validate(self) -> None:
        if self.trace is None and self.rate_bps <= 0:
            raise NetworkError(f"link needs a positive rate or a trace, got {self.rate_bps}")
        if self.delay < 0:
            raise NetworkError(f"delay must be non-negative, got {self.delay}")
        if self.queue_bytes <= 0:
            raise NetworkError(f"queue_bytes must be positive, got {self.queue_bytes}")


@dataclass
class LinkStats:
    """Lifetime counters for one link."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    overflow_drops: int = 0
    #: Packets discarded from the queue by a fault flush (handover blackout).
    flushed: int = 0
    bytes_delivered: int = 0
    busy_time: float = 0.0
    #: Bytes the fluid background engine charged to this link (fleet
    #: mode); not part of ``bytes_delivered``, which stays packet-level.
    background_bytes: int = 0


class Link:
    """One direction of a channel."""

    def __init__(
        self,
        sim: Simulator,
        spec: LinkSpec,
        name: str = "link",
        rng: Optional[random.Random] = None,
    ) -> None:
        spec.validate()
        self.sim = sim
        self.spec = spec
        self.name = name
        self.rng = rng if rng is not None else random.Random(0)
        self.loss: LossModel = spec.loss if spec.loss is not None else NoLoss()
        queue_cls = PriorityDropTailQueue if spec.priority_queue else DropTailQueue
        self.queue = queue_cls(spec.queue_bytes)
        self.stats = LinkStats()
        self.receiver: Optional[Callable[[Packet], None]] = None
        self.up = True
        #: Fault-injection overlays (see :mod:`repro.faults`): additive
        #: propagation delay (RTT spike) and multiplicative rate scaling
        #: (capacity collapse). Both compose with traces. ``rate_factor``
        #: is a property: changing it invalidates any precomputed sweep.
        self.delay_offset = 0.0
        self._rate_factor = 1.0
        #: Aggregate rate (bits/s) consumed by fluid background tenants
        #: (fleet mode); subtracted from the packet-level serialization
        #: rate. Set through :meth:`set_background_load`.
        self._background_bps = 0.0
        self._serving: Optional[Packet] = None
        self._last_delivery_time = -1.0
        #: Active serialization sweep (:class:`LinkBatch`) or ``None``.
        self._sweep: Optional[LinkBatch] = None
        #: Bumped whenever a precomputed sweep stops being trustworthy;
        #: pending sweep events carry the epoch they were computed under
        #: and no-op on mismatch.
        self._sweep_epoch = 0
        #: Sweeps require a knowable future: fixed rate and FIFO order.
        self._sweep_eligible = spec.trace is None and not spec.priority_queue
        #: Optional instrumentation hook called as ``fn(packet, link)``
        #: when a packet completes serialization (before loss is applied).
        self.on_depart: Optional[Callable[[Packet, "Link"], None]] = None
        #: Packet-lifecycle tracing adapter (:class:`repro.obs.LinkObs`);
        #: stays ``None`` unless tracing is enabled, so the off path is a
        #: single identity check per event.
        self.obs = None

    # ------------------------------------------------------------------
    # Time-varying characteristics
    # ------------------------------------------------------------------
    @property
    def rate_factor(self) -> float:
        """Multiplicative fault scaling on the serialization rate."""
        return self._rate_factor

    @rate_factor.setter
    def rate_factor(self, value: float) -> None:
        if value != self._rate_factor:
            self._rate_factor = value
            # Precomputed finish times assumed the old rate; the packet
            # in service keeps its begin-time rate (per-packet semantics)
            # but everything not yet begun must be re-planned.
            self._invalidate_sweep()

    def capacity_bps(self) -> float:
        """Raw link capacity right now (bits/s), before background load.

        This is what the fluid background engine budgets against and what
        :class:`~repro.net.monitor.ChannelMonitor` records as the rate, so
        utilization = (packet bytes + background bytes) / capacity stays a
        true fraction of the physical link.
        """
        if self.spec.trace is not None:
            return float(self.spec.trace.rate_at(self.sim.now)) * self._rate_factor
        return self.spec.rate_bps * self._rate_factor

    def current_rate(self) -> float:
        """Serialization rate available to packets right now (bits/s).

        0 during a trace outage; reduced by any fluid background load
        (fleet mode), which models background tenants occupying their
        share of the serializer.
        """
        rate = self.capacity_bps()
        if self._background_bps > 0.0:
            rate -= self._background_bps
            if rate < 0.0:
                return 0.0
        return rate

    @property
    def background_bps(self) -> float:
        """Aggregate fluid background load currently applied (bits/s)."""
        return self._background_bps

    def set_background_load(self, bps: float) -> None:
        """Install the fluid tenants' aggregate rate on this direction.

        Mirrors the ``rate_factor`` fault overlay: a change invalidates any
        precomputed serialization sweep (its finish times assumed the old
        available rate), while the packet already in service keeps its
        begin-time rate. Idempotent when the load is unchanged, so a coarse
        tick that re-applies a steady rate costs one comparison.
        """
        if bps < 0.0:
            raise NetworkError(f"background load must be non-negative, got {bps}")
        if bps != self._background_bps:
            self._background_bps = bps
            self._invalidate_sweep()

    def current_delay(self) -> float:
        """One-way propagation delay right now (seconds)."""
        if self.spec.trace is not None:
            return float(self.spec.trace.delay_at(self.sim.now)) + self.delay_offset
        return self.spec.delay + self.delay_offset

    @property
    def backlog_bytes(self) -> int:
        """Bytes waiting or in service (the sender-visible backlog)."""
        serving = self._serving.size_bytes if self._serving is not None else 0
        return self.queue.backlog_bytes + serving

    @property
    def pending_packets(self) -> int:
        """Packets queued or in service (not yet transmitted).

        The invariant monitor balances this against its enqueue/transmit
        counters; packets already propagating are *not* included (they have
        transmitted and are tracked by delivery/loss events).
        """
        return len(self.queue) + (1 if self._serving is not None else 0)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def connect(self, receiver: Callable[[Packet], None]) -> None:
        """Set the delivery callback at the far end."""
        self.receiver = receiver

    def send(self, packet: Packet) -> bool:
        """Offer a packet to the link; returns False if tail-dropped."""
        obs = self.obs
        if not self.up:
            self.stats.overflow_drops += 1
            if obs is not None:
                obs.on_overflow(packet, self.sim.now, reason="down")
            return False
        self.stats.sent += 1
        if obs is not None:
            obs.on_offered()
        if not self.queue.try_enqueue(packet):
            self.stats.overflow_drops += 1
            if obs is not None:
                obs.on_overflow(packet, self.sim.now)
            return False
        if obs is not None:
            obs.on_enqueue(packet, self.sim.now)
        if self._serving is None:
            self._start_next()
        return True

    def flush(self) -> int:
        """Discard every queued packet (handover blackout semantics).

        Models a base-station handover dropping the buffered downlink/uplink
        queue. The packet currently serializing and packets already
        propagating are "in the air" and unaffected. Returns the number of
        packets discarded.
        """
        # Queued sweep members are about to vanish; the packet in the
        # serializer is in the air and keeps its precomputed finish.
        self._invalidate_sweep()
        flushed = 0
        while True:
            packet = self.queue.dequeue()
            if packet is None:
                break
            flushed += 1
            if self.obs is not None:
                self.obs.on_overflow(packet, self.sim.now, reason="flush")
        self.stats.flushed += flushed
        return flushed

    # ------------------------------------------------------------------
    # Internal pipeline
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._serving = None
            return
        self._serving = packet
        if self._sweep_eligible and len(self.queue) >= SWEEP_MIN_QUEUED:
            rate = self.current_rate()
            if rate > 0:
                self._start_sweep(packet, rate)
                return
        self._begin_serialization(packet)

    def _begin_serialization(self, packet: Packet) -> None:
        rate = self.current_rate()
        if rate <= 0:
            # Trace outage: re-check shortly; the packet stays in service.
            self.sim.schedule_transient(OUTAGE_POLL_INTERVAL, self._begin_serialization, packet)
            return
        tx_time = transmission_time(packet.size_bytes, rate)
        self.stats.busy_time += tx_time
        # Serialization/delivery events are fire-and-forget: nobody holds
        # or cancels them, so they ride the event pool (transient).
        self.sim.schedule_transient(tx_time, self._finish_serialization, packet)

    def _start_sweep(self, head: Packet, rate: float) -> None:
        """Precompute the backlog's finish times; bulk-file the events.

        ``head`` has just been dequeued into the serializer; the rest of
        the window stays physically queued (capacity accounting, flush
        semantics and ``pending_packets`` are untouched) and is dequeued
        packet-by-packet as each finish event begins the next service.
        """
        window = [head]
        window.extend(self.queue.peek_window(SWEEP_MAX - 1))
        tx_times, finish_times = LinkBatch.compute(window, rate, self.sim.now)
        epoch = self._sweep_epoch
        self._sweep = LinkBatch(window, tx_times, finish_times, epoch)
        self.stats.busy_time += tx_times[0]
        finish = self._sweep_finish
        args = (epoch,)
        self.sim.schedule_transient_bulk(
            [(t, finish, args) for t in finish_times]
        )

    def _sweep_finish(self, epoch: int) -> None:
        sweep = self._sweep
        if sweep is None or epoch != sweep.epoch:
            return  # the sweep's bet was lost after this event was filed
        pos = sweep.pos
        packet = sweep.packets[pos]
        self._transmit(packet)
        pos += 1
        if pos < len(sweep.packets):
            nxt = sweep.packets[pos]
            dequeued = self.queue.dequeue()
            if dequeued is not nxt:  # pragma: no cover - sweep invariant
                raise NetworkError(
                    f"link {self.name!r} sweep desync: expected "
                    f"{nxt!r} at the queue head, got {dequeued!r}"
                )
            self._serving = nxt
            sweep.pos = pos
            self.stats.busy_time += sweep.tx_times[pos]
        else:
            self._sweep = None
            self._start_next()

    def _invalidate_sweep(self) -> None:
        """The precomputed future is wrong; fall back to per-packet.

        Pending sweep events are orphaned by the epoch bump. The packet
        currently in the serializer already began at the old rate, so —
        exactly like the per-packet path, which fixes ``tx_time`` at
        begin — it keeps its precomputed finish instant, re-armed as a
        classic finish event.
        """
        sweep = self._sweep
        if sweep is None:
            return
        self._sweep = None
        self._sweep_epoch += 1
        self.sim.schedule_at_transient(
            sweep.finish_times[sweep.pos], self._finish_serialization, self._serving
        )

    def _finish_serialization(self, packet: Packet) -> None:
        self._transmit(packet)
        self._start_next()

    def _transmit(self, packet: Packet) -> None:
        """Departure instant: obs taps, loss draw, delivery scheduling."""
        obs = self.obs
        if obs is not None:
            obs.on_transmit(packet, self.sim.now)
        if self.on_depart is not None:
            self.on_depart(packet, self)
        if self.loss.should_drop(self.rng, self.sim.now):
            self.stats.lost += 1
            if obs is not None:
                obs.on_loss(packet, self.sim.now)
        else:
            delay = self.current_delay()
            arrival = self.sim.now + delay
            # FIFO delivery even if the propagation delay just dropped.
            if arrival <= self._last_delivery_time:
                arrival = self._last_delivery_time + 1e-9
            self._last_delivery_time = arrival
            self.sim.schedule_at_transient(arrival, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.size_bytes
        packet.delivered_at = self.sim.now
        if self.obs is not None:
            self.obs.on_deliver(packet, self.sim.now)
        if self.receiver is None:
            raise NetworkError(f"link {self.name!r} delivered a packet but has no receiver")
        self.receiver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} rate={self.current_rate():.0f}bps backlog={self.backlog_bytes}B>"
