"""Unidirectional links: serializer + drop-tail buffer + propagation delay.

A link models the classic bottleneck pipeline: packets wait in a byte-bounded
FIFO, are serialized one at a time at the link's (possibly time-varying)
rate, may be lost by a stochastic process on departure, and arrive at the
receiver one propagation delay later. Delivery order is FIFO even when the
propagation delay shrinks mid-flight (as in trace-driven 5G links).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import NetworkError
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue, PriorityDropTailQueue
from repro.sim.kernel import Simulator
from repro.units import transmission_time

#: How long a link waits before re-checking a trace whose current rate is 0.
OUTAGE_POLL_INTERVAL = 1e-3


@dataclass
class LinkSpec:
    """Static description of one link direction.

    Either give a fixed ``rate_bps``/``delay``, or a ``trace`` providing
    ``rate_at(t)`` and ``delay_at(t)`` (see :mod:`repro.traces.model`); the
    trace takes precedence when present.
    """

    rate_bps: float = 0.0
    delay: float = 0.0
    queue_bytes: int = 256_000
    loss: Optional[LossModel] = None
    trace: Optional[object] = None
    priority_queue: bool = False

    def validate(self) -> None:
        if self.trace is None and self.rate_bps <= 0:
            raise NetworkError(f"link needs a positive rate or a trace, got {self.rate_bps}")
        if self.delay < 0:
            raise NetworkError(f"delay must be non-negative, got {self.delay}")
        if self.queue_bytes <= 0:
            raise NetworkError(f"queue_bytes must be positive, got {self.queue_bytes}")


@dataclass
class LinkStats:
    """Lifetime counters for one link."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    overflow_drops: int = 0
    #: Packets discarded from the queue by a fault flush (handover blackout).
    flushed: int = 0
    bytes_delivered: int = 0
    busy_time: float = 0.0


class Link:
    """One direction of a channel."""

    def __init__(
        self,
        sim: Simulator,
        spec: LinkSpec,
        name: str = "link",
        rng: Optional[random.Random] = None,
    ) -> None:
        spec.validate()
        self.sim = sim
        self.spec = spec
        self.name = name
        self.rng = rng if rng is not None else random.Random(0)
        self.loss: LossModel = spec.loss if spec.loss is not None else NoLoss()
        queue_cls = PriorityDropTailQueue if spec.priority_queue else DropTailQueue
        self.queue = queue_cls(spec.queue_bytes)
        self.stats = LinkStats()
        self.receiver: Optional[Callable[[Packet], None]] = None
        self.up = True
        #: Fault-injection overlays (see :mod:`repro.faults`): additive
        #: propagation delay (RTT spike) and multiplicative rate scaling
        #: (capacity collapse). Both compose with traces.
        self.delay_offset = 0.0
        self.rate_factor = 1.0
        self._serving: Optional[Packet] = None
        self._last_delivery_time = -1.0
        #: Optional instrumentation hook called as ``fn(packet, link)``
        #: when a packet completes serialization (before loss is applied).
        self.on_depart: Optional[Callable[[Packet, "Link"], None]] = None
        #: Packet-lifecycle tracing adapter (:class:`repro.obs.LinkObs`);
        #: stays ``None`` unless tracing is enabled, so the off path is a
        #: single identity check per event.
        self.obs = None

    # ------------------------------------------------------------------
    # Time-varying characteristics
    # ------------------------------------------------------------------
    def current_rate(self) -> float:
        """Serialization rate right now (bits/s); 0 during a trace outage."""
        if self.spec.trace is not None:
            return float(self.spec.trace.rate_at(self.sim.now)) * self.rate_factor
        return self.spec.rate_bps * self.rate_factor

    def current_delay(self) -> float:
        """One-way propagation delay right now (seconds)."""
        if self.spec.trace is not None:
            return float(self.spec.trace.delay_at(self.sim.now)) + self.delay_offset
        return self.spec.delay + self.delay_offset

    @property
    def backlog_bytes(self) -> int:
        """Bytes waiting or in service (the sender-visible backlog)."""
        serving = self._serving.size_bytes if self._serving is not None else 0
        return self.queue.backlog_bytes + serving

    @property
    def pending_packets(self) -> int:
        """Packets queued or in service (not yet transmitted).

        The invariant monitor balances this against its enqueue/transmit
        counters; packets already propagating are *not* included (they have
        transmitted and are tracked by delivery/loss events).
        """
        return len(self.queue) + (1 if self._serving is not None else 0)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def connect(self, receiver: Callable[[Packet], None]) -> None:
        """Set the delivery callback at the far end."""
        self.receiver = receiver

    def send(self, packet: Packet) -> bool:
        """Offer a packet to the link; returns False if tail-dropped."""
        obs = self.obs
        if not self.up:
            self.stats.overflow_drops += 1
            if obs is not None:
                obs.on_overflow(packet, self.sim.now, reason="down")
            return False
        self.stats.sent += 1
        if obs is not None:
            obs.on_offered()
        if not self.queue.try_enqueue(packet):
            self.stats.overflow_drops += 1
            if obs is not None:
                obs.on_overflow(packet, self.sim.now)
            return False
        if obs is not None:
            obs.on_enqueue(packet, self.sim.now)
        if self._serving is None:
            self._start_next()
        return True

    def flush(self) -> int:
        """Discard every queued packet (handover blackout semantics).

        Models a base-station handover dropping the buffered downlink/uplink
        queue. The packet currently serializing and packets already
        propagating are "in the air" and unaffected. Returns the number of
        packets discarded.
        """
        flushed = 0
        while True:
            packet = self.queue.dequeue()
            if packet is None:
                break
            flushed += 1
            if self.obs is not None:
                self.obs.on_overflow(packet, self.sim.now, reason="flush")
        self.stats.flushed += flushed
        return flushed

    # ------------------------------------------------------------------
    # Internal pipeline
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._serving = None
            return
        self._serving = packet
        self._begin_serialization(packet)

    def _begin_serialization(self, packet: Packet) -> None:
        rate = self.current_rate()
        if rate <= 0:
            # Trace outage: re-check shortly; the packet stays in service.
            self.sim.schedule_transient(OUTAGE_POLL_INTERVAL, self._begin_serialization, packet)
            return
        tx_time = transmission_time(packet.size_bytes, rate)
        self.stats.busy_time += tx_time
        # Serialization/delivery events are fire-and-forget: nobody holds
        # or cancels them, so they ride the event pool (transient).
        self.sim.schedule_transient(tx_time, self._finish_serialization, packet)

    def _finish_serialization(self, packet: Packet) -> None:
        obs = self.obs
        if obs is not None:
            obs.on_transmit(packet, self.sim.now)
        if self.on_depart is not None:
            self.on_depart(packet, self)
        if self.loss.should_drop(self.rng, self.sim.now):
            self.stats.lost += 1
            if obs is not None:
                obs.on_loss(packet, self.sim.now)
        else:
            delay = self.current_delay()
            arrival = self.sim.now + delay
            # FIFO delivery even if the propagation delay just dropped.
            if arrival <= self._last_delivery_time:
                arrival = self._last_delivery_time + 1e-9
            self._last_delivery_time = arrival
            self.sim.schedule_at_transient(arrival, self._deliver, packet)
        self._start_next()

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.size_bytes
        packet.delivered_at = self.sim.now
        if self.obs is not None:
            self.obs.on_deliver(packet, self.sim.now)
        if self.receiver is None:
            raise NetworkError(f"link {self.name!r} delivered a packet but has no receiver")
        self.receiver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} rate={self.current_rate():.0f}bps backlog={self.backlog_bytes}B>"
