"""Network substrate: packets, links, channels, hosts.

The model is a pair of hosts connected by one or more *channels*; each
channel is a bidirectional pair of unidirectional links with their own rate,
base delay, queue and loss process. A host's :class:`~repro.net.node.Device`
multiplexes all of its flows over the attached channels, consulting a
steering policy (:mod:`repro.steering`) for every outgoing packet.
"""

from repro.net.packet import Packet, PacketType
from repro.net.queue import DropTailQueue
from repro.net.loss import NoLoss, BernoulliLoss, GilbertElliottLoss
from repro.net.link import Link, LinkSpec
from repro.net.channel import Channel, ChannelSpec, DirectionSpec
from repro.net.node import Device, ChannelView

__all__ = [
    "Packet",
    "PacketType",
    "DropTailQueue",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "Link",
    "LinkSpec",
    "Channel",
    "ChannelSpec",
    "DirectionSpec",
    "Device",
    "ChannelView",
]
