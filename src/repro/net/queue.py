"""Queue disciplines for link transmit buffers."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.net.packet import Packet


@dataclass
class QueueStats:
    """Counters a queue maintains over its lifetime."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    bytes_enqueued: int = 0
    bytes_dropped: int = 0
    max_backlog_bytes: int = 0


class DropTailQueue:
    """FIFO queue bounded in bytes; arrivals that overflow are dropped.

    This is the buffer model used by both DChannel's emulation and Mahimahi:
    a byte-capacity drop-tail queue in front of the bottleneck serializer.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._packets: Deque[Packet] = deque()
        self.backlog_bytes = 0
        self.stats = QueueStats()

    def try_enqueue(self, packet: Packet) -> bool:
        """Append ``packet`` unless it would overflow; returns success."""
        if self.backlog_bytes + packet.size_bytes > self.capacity_bytes:
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size_bytes
            return False
        self._packets.append(packet)
        self.backlog_bytes += packet.size_bytes
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size_bytes
        if self.backlog_bytes > self.stats.max_backlog_bytes:
            self.stats.max_backlog_bytes = self.backlog_bytes
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or ``None`` when empty."""
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self.backlog_bytes -= packet.size_bytes
        self.stats.dequeued += 1
        return packet

    def peek(self) -> Optional[Packet]:
        """The head packet without removing it, or ``None``."""
        return self._packets[0] if self._packets else None

    def peek_window(self, count: int) -> list:
        """The first ``count`` packets in dequeue order, without removal.

        Feeds the link's serialization sweep (:class:`repro.net.link.LinkBatch`):
        for a FIFO discipline the window *is* the future dequeue order, so
        finish times can be precomputed for the whole run. Priority queues
        don't honor this (an express arrival reorders the head) — the link
        never sweeps those.
        """
        packets = self._packets
        if count >= len(packets):
            return list(packets)
        return [packets[i] for i in range(count)]

    def __len__(self) -> int:
        return len(self._packets)

    def __bool__(self) -> bool:
        return bool(self._packets)


class PriorityDropTailQueue(DropTailQueue):
    """Two-band variant: control packets jump ahead of data packets.

    Used to model TSN-style express lanes inside a single channel. The byte
    bound is shared across both bands.
    """

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._express: Deque[Packet] = deque()

    def try_enqueue(self, packet: Packet) -> bool:
        if self.backlog_bytes + packet.size_bytes > self.capacity_bytes:
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size_bytes
            return False
        if packet.is_control:
            self._express.append(packet)
        else:
            self._packets.append(packet)
        self.backlog_bytes += packet.size_bytes
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size_bytes
        if self.backlog_bytes > self.stats.max_backlog_bytes:
            self.stats.max_backlog_bytes = self.backlog_bytes
        return True

    def dequeue(self) -> Optional[Packet]:
        source = self._express if self._express else self._packets
        if not source:
            return None
        packet = source.popleft()
        self.backlog_bytes -= packet.size_bytes
        self.stats.dequeued += 1
        return packet

    def peek(self) -> Optional[Packet]:
        if self._express:
            return self._express[0]
        return self._packets[0] if self._packets else None

    def __len__(self) -> int:
        return len(self._express) + len(self._packets)

    def __bool__(self) -> bool:
        return bool(self._express) or bool(self._packets)
