"""Stochastic loss processes applied by links.

Loss is evaluated when a packet finishes serialization, i.e. it models the
wireless air interface rather than buffer overflow (drop-tail handles that).
"""

from __future__ import annotations

import random


class LossModel:
    """Interface: decide whether a departing packet is lost."""

    def should_drop(self, rng: random.Random, now: float) -> bool:
        raise NotImplementedError

    @property
    def long_run_rate(self) -> float:
        """The stationary loss probability (used by steering estimators)."""
        raise NotImplementedError


class NoLoss(LossModel):
    """A perfectly reliable link (e.g. URLLC's 99.999% is modelled as 0)."""

    def should_drop(self, rng: random.Random, now: float) -> bool:
        return False

    @property
    def long_run_rate(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Independent loss with fixed probability per packet."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"probability must be in [0, 1), got {probability}")
        self.probability = probability

    def should_drop(self, rng: random.Random, now: float) -> bool:
        return rng.random() < self.probability

    @property
    def long_run_rate(self) -> float:
        return self.probability

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.probability})"


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (good/bad) — the classic wireless fading model.

    Parameters are per-packet transition probabilities. In the *good* state
    packets are lost with ``good_loss``; in the *bad* state with ``bad_loss``.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.2,
        good_loss: float = 0.0,
        bad_loss: float = 0.5,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if p_bad_to_good == 0.0 and p_good_to_bad > 0.0:
            raise ValueError("bad state would be absorbing (p_bad_to_good=0)")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self._in_bad_state = False

    def should_drop(self, rng: random.Random, now: float) -> bool:
        if self._in_bad_state:
            if rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        loss = self.bad_loss if self._in_bad_state else self.good_loss
        return rng.random() < loss

    @property
    def long_run_rate(self) -> float:
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.good_loss
        pi_bad = self.p_good_to_bad / denom
        return pi_bad * self.bad_loss + (1 - pi_bad) * self.good_loss

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(g2b={self.p_good_to_bad}, b2g={self.p_bad_to_good}, "
            f"good={self.good_loss}, bad={self.bad_loss})"
        )
