"""Ready-made HVC channel profiles (§2 of the paper).

Each factory returns a :class:`~repro.net.channel.ChannelSpec`; combine them
into a channel set with :func:`repro.core.scenario.build_channels` or use
them directly. Defaults follow the numbers the paper quotes:

* URLLC: 5 ms RTT, 2 Mbps, effectively loss-free (five-nines).
* eMBB (Fig. 1 emulation): 50 ms RTT, 60 Mbps.
* eMBB (trace-driven): Lowband / mmWave, stationary / driving.
* Wi-Fi MLO: two lossy mid-band links (bandwidth vs reliability trade-off).
* cISP-style: low latency, low bandwidth, charged per byte.
* LEO: lower latency than fiber WAN, moderate bandwidth, bursty loss.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.channel import ChannelSpec, DirectionSpec
from repro.net.loss import BernoulliLoss, GilbertElliottLoss
from repro.traces.model import NetworkTrace
from repro.units import kib, mbps, ms

#: Default eMBB buffer: deep enough to show bufferbloat under load (~330 ms
#: at 60 Mbps), matching cellular base-station buffering behaviour.
EMBB_QUEUE_BYTES = kib(2440)
#: Default URLLC buffer: small — the channel is meant for tiny messages; a
#: full buffer is ~256 ms at 2 Mbps, enough to show the Table 1 queue
#: build-up caused by background flows.
URLLC_QUEUE_BYTES = kib(64)


def urllc_spec(queue_bytes: int = URLLC_QUEUE_BYTES) -> ChannelSpec:
    """URLLC per the paper's emulation: 2 Mbps, 5 ms RTT, reliable."""
    direction = DirectionSpec(rate_bps=mbps(2), delay=ms(2.5), queue_bytes=queue_bytes)
    down = DirectionSpec(rate_bps=mbps(2), delay=ms(2.5), queue_bytes=queue_bytes)
    return ChannelSpec(name="urllc", up=direction, down=down, reliable=True)


def fixed_embb_spec(
    rate_bps: float = mbps(60),
    rtt: float = ms(50),
    queue_bytes: int = EMBB_QUEUE_BYTES,
) -> ChannelSpec:
    """The static eMBB used in Fig. 1: 60 Mbps, 50 ms RTT."""
    one_way = rtt / 2.0
    up = DirectionSpec(rate_bps=rate_bps, delay=one_way, queue_bytes=queue_bytes)
    down = DirectionSpec(rate_bps=rate_bps, delay=one_way, queue_bytes=queue_bytes)
    return ChannelSpec(name="embb", up=up, down=down)


def traced_embb_spec(
    trace: NetworkTrace,
    uplink_trace: Optional[NetworkTrace] = None,
    uplink_rate_factor: float = 0.25,
    queue_bytes: int = EMBB_QUEUE_BYTES,
) -> ChannelSpec:
    """Trace-driven eMBB.

    ``trace`` drives the downlink (the direction cellular measurements
    report); the uplink uses ``uplink_trace`` if given, otherwise the same
    trace with rates scaled by ``uplink_rate_factor`` — commercial 5G uplink
    is a small fraction of downlink (60 Mbps vs 2 Gbps in [32]).
    """
    if uplink_trace is None:
        uplink_trace = trace.scaled(rate_factor=uplink_rate_factor)
    up = DirectionSpec(trace=uplink_trace, queue_bytes=queue_bytes)
    down = DirectionSpec(trace=trace, queue_bytes=queue_bytes)
    return ChannelSpec(name=f"embb[{trace.name}]", up=up, down=down)


def wifi_mlo_specs(
    rate_bps: float = mbps(120),
    rtt: float = ms(12),
    loss_burstiness: Tuple[float, float] = (0.02, 0.25),
    bad_loss: float = 0.35,
    queue_bytes: int = kib(512),
) -> Tuple[ChannelSpec, ChannelSpec]:
    """Two Wi-Fi MLO links on different bands, each with bursty loss.

    Used for the bandwidth-vs-reliability trade-off: replicating packets
    across both links (redundant steering) halves usable bandwidth but
    survives either link fading.
    """
    p_g2b, p_b2g = loss_burstiness
    specs = []
    for band in ("5GHz", "6GHz"):
        up = DirectionSpec(
            rate_bps=rate_bps,
            delay=rtt / 2.0,
            queue_bytes=queue_bytes,
            loss=GilbertElliottLoss(p_g2b, p_b2g, good_loss=0.001, bad_loss=bad_loss),
        )
        down = DirectionSpec(
            rate_bps=rate_bps,
            delay=rtt / 2.0,
            queue_bytes=queue_bytes,
            loss=GilbertElliottLoss(p_g2b, p_b2g, good_loss=0.001, bad_loss=bad_loss),
        )
        specs.append(ChannelSpec(name=f"wifi-mlo-{band}", up=up, down=down))
    return specs[0], specs[1]


def wifi_tsn_spec(
    rate_bps: float = mbps(40),
    rtt: float = ms(6),
    queue_bytes: int = kib(256),
) -> ChannelSpec:
    """A Wi-Fi TSN channel: 802.1Qbv-style time-aware scheduling (§2.2).

    Modelled as a contention-free link whose queue gives control traffic an
    express lane (:class:`~repro.net.queue.PriorityDropTailQueue`), the
    service 802.1AS synchronization + Qbv gating provide. Deterministic
    latency for the express band, ordinary queueing for the rest.
    """
    up = DirectionSpec(
        rate_bps=rate_bps, delay=rtt / 2.0, queue_bytes=queue_bytes, priority_queue=True
    )
    down = DirectionSpec(
        rate_bps=rate_bps, delay=rtt / 2.0, queue_bytes=queue_bytes, priority_queue=True
    )
    return ChannelSpec(name="wifi-tsn", up=up, down=down, reliable=True)


def cisp_spec(
    rate_bps: float = mbps(10),
    rtt: float = ms(8),
    cost_per_byte: float = 1e-6,
    loss_rate: float = 0.005,
    queue_bytes: int = kib(128),
) -> ChannelSpec:
    """A cISP-style speed-of-light WAN channel: fast, narrow, and billed.

    Microwave links are less reliable than fiber, hence the small Bernoulli
    loss. ``cost_per_byte`` feeds the latency-vs-cost steering policy.
    """
    up = DirectionSpec(
        rate_bps=rate_bps, delay=rtt / 2.0, queue_bytes=queue_bytes, loss=BernoulliLoss(loss_rate)
    )
    down = DirectionSpec(
        rate_bps=rate_bps, delay=rtt / 2.0, queue_bytes=queue_bytes, loss=BernoulliLoss(loss_rate)
    )
    return ChannelSpec(name="cisp", up=up, down=down, cost_per_byte=cost_per_byte)


def fiber_wan_spec(
    rate_bps: float = mbps(200),
    rtt: float = ms(40),
    queue_bytes: int = kib(4096),
) -> ChannelSpec:
    """A conventional terrestrial WAN path (the cISP companion channel)."""
    up = DirectionSpec(rate_bps=rate_bps, delay=rtt / 2.0, queue_bytes=queue_bytes)
    down = DirectionSpec(rate_bps=rate_bps, delay=rtt / 2.0, queue_bytes=queue_bytes)
    return ChannelSpec(name="fiber-wan", up=up, down=down)


def leo_spec(
    rate_bps: float = mbps(50),
    rtt: float = ms(25),
    loss_rate: float = 0.01,
    queue_bytes: int = kib(1024),
) -> ChannelSpec:
    """A LEO satellite path: lower latency than long fiber, radio-limited."""
    up = DirectionSpec(
        rate_bps=rate_bps, delay=rtt / 2.0, queue_bytes=queue_bytes, loss=BernoulliLoss(loss_rate)
    )
    down = DirectionSpec(
        rate_bps=rate_bps, delay=rtt / 2.0, queue_bytes=queue_bytes, loss=BernoulliLoss(loss_rate)
    )
    return ChannelSpec(name="leo", up=up, down=down)
