"""Periodic channel monitoring: utilization, backlog and delay time series.

Experiments attach a :class:`ChannelMonitor` to sample every channel at a
fixed period; the resulting series drive per-channel plots (e.g. "how much
of URLLC did the background flows eat") and the utilization numbers in
EXPERIMENTS.md.

The monitor is rebased on :mod:`repro.obs`: pass an
:class:`~repro.obs.Observability` context and every sample also updates the
per-channel gauges in its metrics registry and (when tracing is enabled)
appends a ``channel`` trace record, so ``repro obs summarize`` can rebuild
these exact series from an exported trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._compat import hot_dataclass
from typing import Dict, List, Optional, Sequence

from repro.net.channel import Channel
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer


@hot_dataclass
class ChannelSample:
    """One instantaneous observation of one channel.

    ``up_rate_bps``/``down_rate_bps`` record the *raw capacity*
    (:meth:`~repro.net.link.Link.capacity_bps`) rather than the
    background-reduced packet rate, so utilization stays a fraction of
    the physical link. The ``*_background_*`` fields record what the
    fleet fluid engine consumed; they are 0 outside fleet mode.
    """

    time: float
    up_backlog_bytes: int
    down_backlog_bytes: int
    up_delivered_bytes: int
    down_delivered_bytes: int
    up_rate_bps: float
    down_rate_bps: float
    base_rtt: float
    #: Cumulative bytes the fluid background charged to each direction.
    up_background_bytes: int = 0
    down_background_bytes: int = 0
    #: Instantaneous aggregate background rate on each direction.
    up_background_bps: float = 0.0
    down_background_bps: float = 0.0


@dataclass
class ChannelSeries:
    """All samples for one channel plus derived summaries."""

    name: str
    samples: List[ChannelSample] = field(default_factory=list)
    #: Incremented whenever :meth:`utilization` had to clamp a >1.0 value
    #: (the capacity integral under-resolved a rate change mid-interval).
    clamp_warnings: int = 0

    def utilization(self, direction: str = "down") -> float:
        """Mean fraction of capacity carried between first and last sample.

        Capacity is integrated across each sampling interval (trapezoid of
        the rates observed at the interval's endpoints), so a trace-driven
        channel whose rate rises mid-interval is credited with the capacity
        it actually had rather than the stale rate at the interval's start.
        The result is clamped to 1.0; clamping bumps :attr:`clamp_warnings`
        because it means the sampling period under-resolved the rate trace.
        """
        if direction not in ("up", "down"):
            raise ValueError(f"direction must be 'up' or 'down', got {direction!r}")
        if len(self.samples) < 2:
            return 0.0
        used = 0.0
        possible = 0.0
        for prev, curr in zip(self.samples, self.samples[1:]):
            dt = curr.time - prev.time
            if dt <= 0:
                continue
            if direction == "down":
                used += (curr.down_delivered_bytes - prev.down_delivered_bytes) * 8
                used += (curr.down_background_bytes - prev.down_background_bytes) * 8
                possible += 0.5 * (prev.down_rate_bps + curr.down_rate_bps) * dt
            else:
                used += (curr.up_delivered_bytes - prev.up_delivered_bytes) * 8
                used += (curr.up_background_bytes - prev.up_background_bytes) * 8
                possible += 0.5 * (prev.up_rate_bps + curr.up_rate_bps) * dt
        if possible <= 0:
            return 0.0
        value = used / possible
        if value > 1.0:
            self.clamp_warnings += 1
            value = 1.0
        return value

    def peak_backlog_bytes(self, direction: str = "down") -> int:
        if not self.samples:
            return 0
        if direction == "down":
            return max(s.down_backlog_bytes for s in self.samples)
        return max(s.up_backlog_bytes for s in self.samples)

    def backlog_series(self, direction: str = "down") -> List[tuple]:
        key = "down_backlog_bytes" if direction == "down" else "up_backlog_bytes"
        return [(s.time, getattr(s, key)) for s in self.samples]


class ChannelMonitor:
    """Samples a set of channels on a fixed period.

    With ``obs`` given, each sample also sets the registry gauges
    ``channel.backlog_bytes`` / ``channel.rate_bps`` (labelled by channel
    and direction) and, when tracing is on, emits one ``channel`` trace
    record carrying the full :class:`ChannelSample` payload.
    """

    def __init__(
        self,
        sim: Simulator,
        channels: Sequence[Channel],
        period: float = 0.1,
        obs=None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.sim = sim
        self.channels = list(channels)
        self.obs = obs
        self.series: Dict[str, ChannelSeries] = {
            channel.name: ChannelSeries(name=channel.name) for channel in self.channels
        }
        self._gauges: Dict[tuple, object] = {}
        if obs is not None:
            for channel in self.channels:
                for direction in ("up", "down"):
                    labels = {"channel": channel.name, "direction": direction}
                    self._gauges[(channel.name, direction, "backlog")] = (
                        obs.registry.gauge("channel.backlog_bytes", **labels)
                    )
                    self._gauges[(channel.name, direction, "rate")] = (
                        obs.registry.gauge("channel.rate_bps", **labels)
                    )
                    self._gauges[(channel.name, direction, "background")] = (
                        obs.registry.gauge("channel.background_bps", **labels)
                    )
        self._timer = PeriodicTimer(sim, period, self._sample, start_delay=0.0)

    def _sample(self) -> None:
        obs = self.obs
        for channel in self.channels:
            up = channel.uplink
            down = channel.downlink
            sample = ChannelSample(
                time=self.sim.now,
                up_backlog_bytes=up.backlog_bytes,
                down_backlog_bytes=down.backlog_bytes,
                up_delivered_bytes=up.stats.bytes_delivered,
                down_delivered_bytes=down.stats.bytes_delivered,
                up_rate_bps=up.capacity_bps(),
                down_rate_bps=down.capacity_bps(),
                base_rtt=channel.base_rtt(),
                up_background_bytes=up.stats.background_bytes,
                down_background_bytes=down.stats.background_bytes,
                up_background_bps=up.background_bps,
                down_background_bps=down.background_bps,
            )
            self.series[channel.name].samples.append(sample)
            if obs is not None:
                name = channel.name
                self._gauges[(name, "up", "backlog")].set(sample.up_backlog_bytes)
                self._gauges[(name, "down", "backlog")].set(sample.down_backlog_bytes)
                self._gauges[(name, "up", "rate")].set(sample.up_rate_bps)
                self._gauges[(name, "down", "rate")].set(sample.down_rate_bps)
                self._gauges[(name, "up", "background")].set(sample.up_background_bps)
                self._gauges[(name, "down", "background")].set(
                    sample.down_background_bps
                )
                if obs.trace is not None:
                    obs.trace.append(
                        {
                            "kind": "channel",
                            "time": sample.time,
                            "channel": name,
                            "up_backlog_bytes": sample.up_backlog_bytes,
                            "down_backlog_bytes": sample.down_backlog_bytes,
                            "up_delivered_bytes": sample.up_delivered_bytes,
                            "down_delivered_bytes": sample.down_delivered_bytes,
                            "up_rate_bps": sample.up_rate_bps,
                            "down_rate_bps": sample.down_rate_bps,
                            "base_rtt": sample.base_rtt,
                            "up_background_bytes": sample.up_background_bytes,
                            "down_background_bytes": sample.down_background_bytes,
                            "up_background_bps": sample.up_background_bps,
                            "down_background_bps": sample.down_background_bps,
                        }
                    )

    def stop(self) -> None:
        """Stop sampling (existing series remain readable)."""
        self._timer.stop()

    def __getitem__(self, channel_name: str) -> ChannelSeries:
        return self.series[channel_name]
