"""Periodic channel monitoring: utilization, backlog and delay time series.

Experiments attach a :class:`ChannelMonitor` to sample every channel at a
fixed period; the resulting series drive per-channel plots (e.g. "how much
of URLLC did the background flows eat") and the utilization numbers in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.net.channel import Channel
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer


@dataclass
class ChannelSample:
    """One instantaneous observation of one channel."""

    time: float
    up_backlog_bytes: int
    down_backlog_bytes: int
    up_delivered_bytes: int
    down_delivered_bytes: int
    up_rate_bps: float
    down_rate_bps: float
    base_rtt: float


@dataclass
class ChannelSeries:
    """All samples for one channel plus derived summaries."""

    name: str
    samples: List[ChannelSample] = field(default_factory=list)

    def utilization(self, direction: str = "down") -> float:
        """Mean fraction of capacity carried between first and last sample.

        Uses delivered-byte deltas against the instantaneous rate at each
        sample, so it remains meaningful for trace-driven channels.
        """
        if direction not in ("up", "down"):
            raise ValueError(f"direction must be 'up' or 'down', got {direction!r}")
        if len(self.samples) < 2:
            return 0.0
        used = 0.0
        possible = 0.0
        for prev, curr in zip(self.samples, self.samples[1:]):
            dt = curr.time - prev.time
            if dt <= 0:
                continue
            if direction == "down":
                used += (curr.down_delivered_bytes - prev.down_delivered_bytes) * 8
                possible += prev.down_rate_bps * dt
            else:
                used += (curr.up_delivered_bytes - prev.up_delivered_bytes) * 8
                possible += prev.up_rate_bps * dt
        return used / possible if possible > 0 else 0.0

    def peak_backlog_bytes(self, direction: str = "down") -> int:
        if not self.samples:
            return 0
        if direction == "down":
            return max(s.down_backlog_bytes for s in self.samples)
        return max(s.up_backlog_bytes for s in self.samples)

    def backlog_series(self, direction: str = "down") -> List[tuple]:
        key = "down_backlog_bytes" if direction == "down" else "up_backlog_bytes"
        return [(s.time, getattr(s, key)) for s in self.samples]


class ChannelMonitor:
    """Samples a set of channels on a fixed period."""

    def __init__(
        self,
        sim: Simulator,
        channels: Sequence[Channel],
        period: float = 0.1,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.sim = sim
        self.channels = list(channels)
        self.series: Dict[str, ChannelSeries] = {
            channel.name: ChannelSeries(name=channel.name) for channel in self.channels
        }
        self._timer = PeriodicTimer(sim, period, self._sample, start_delay=0.0)

    def _sample(self) -> None:
        for channel in self.channels:
            self.series[channel.name].samples.append(
                ChannelSample(
                    time=self.sim.now,
                    up_backlog_bytes=channel.uplink.backlog_bytes,
                    down_backlog_bytes=channel.downlink.backlog_bytes,
                    up_delivered_bytes=channel.uplink.stats.bytes_delivered,
                    down_delivered_bytes=channel.downlink.stats.bytes_delivered,
                    up_rate_bps=channel.uplink.current_rate(),
                    down_rate_bps=channel.downlink.current_rate(),
                    base_rtt=channel.base_rtt(),
                )
            )

    def stop(self) -> None:
        """Stop sampling (existing series remain readable)."""
        self._timer.stop()

    def __getitem__(self, channel_name: str) -> ChannelSeries:
        return self.series[channel_name]
