"""Bidirectional channels: the HVC unit of steering.

A channel bundles an *uplink* (host A → host B) and a *downlink*
(host B → host A), plus steering-relevant metadata: monetary cost per byte,
a reliability flag (e.g. URLLC's five-nines / MLO-replicated service), and a
human-readable name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from repro.errors import NetworkError
from repro.net.link import Link, LinkSpec
from repro.sim.kernel import Simulator

#: Index of the client (A) side of a channel.
END_A = 0
#: Index of the server (B) side of a channel.
END_B = 1


@dataclass
class DirectionSpec:
    """Per-direction shorthand that expands into a :class:`LinkSpec`."""

    rate_bps: float = 0.0
    delay: float = 0.0
    queue_bytes: int = 256_000
    loss: Optional[object] = None
    trace: Optional[object] = None
    priority_queue: bool = False

    def to_link_spec(self) -> LinkSpec:
        return LinkSpec(
            rate_bps=self.rate_bps,
            delay=self.delay,
            queue_bytes=self.queue_bytes,
            loss=self.loss,
            trace=self.trace,
            priority_queue=self.priority_queue,
        )


@dataclass
class ChannelSpec:
    """Full description of one HVC."""

    name: str
    up: DirectionSpec
    down: DirectionSpec
    #: Monetary cost of carrying one byte (for latency-vs-cost steering).
    cost_per_byte: float = 0.0
    #: Hint that the channel offers a reliability guarantee.
    reliable: bool = False

    @classmethod
    def symmetric(
        cls,
        name: str,
        rate_bps: float,
        one_way_delay: float,
        queue_bytes: int = 256_000,
        loss: Optional[object] = None,
        cost_per_byte: float = 0.0,
        reliable: bool = False,
    ) -> "ChannelSpec":
        """Identical characteristics in both directions.

        Note the two directions still get *separate* queues and loss-model
        instances must not be shared; pass a loss factory result per call if
        the model is stateful (handled by :class:`Channel`, which never
        shares one instance across directions — supply distinct instances
        via explicit up/down specs when using stateful loss).
        """
        up = DirectionSpec(rate_bps=rate_bps, delay=one_way_delay, queue_bytes=queue_bytes, loss=loss)
        down = DirectionSpec(rate_bps=rate_bps, delay=one_way_delay, queue_bytes=queue_bytes, loss=loss)
        return cls(name=name, up=up, down=down, cost_per_byte=cost_per_byte, reliable=reliable)


class Channel:
    """A live bidirectional channel between host ends A and B."""

    def __init__(
        self,
        sim: Simulator,
        spec: ChannelSpec,
        index: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.index = index
        rng = rng if rng is not None else random.Random(index)
        self.uplink = Link(sim, spec.up.to_link_spec(), name=f"{spec.name}.up", rng=rng)
        self.downlink = Link(sim, spec.down.to_link_spec(), name=f"{spec.name}.down", rng=rng)
        #: Administrative master switch (:meth:`set_up`).
        self._admin_up = True
        #: Active fault holds (:meth:`fail`/:meth:`restore`). Reference
        #: counting is what makes overlapping outages compose: the channel
        #: is up only when *every* hold has been released.
        self._down_refs = 0
        #: Observers called as ``fn(channel, up, now)`` on every up/down
        #: *transition* (redundant holds do not re-fire).
        self.on_transition: List[Callable[["Channel", bool, float], None]] = []
        #: Down/up bookkeeping for resilience metrics.
        self.outage_count = 0
        self.downtime_total = 0.0
        self.last_down_at: Optional[float] = None
        self.last_up_at: float = 0.0
        #: Total bytes billed on this channel (both directions).
        self.cost_bytes = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def out_link(self, end: int) -> Link:
        """The link a host at ``end`` transmits on."""
        if end == END_A:
            return self.uplink
        if end == END_B:
            return self.downlink
        raise NetworkError(f"channel end must be {END_A} or {END_B}, got {end}")

    def in_link(self, end: int) -> Link:
        """The link a host at ``end`` receives from."""
        return self.out_link(END_B if end == END_A else END_A)

    def base_rtt(self) -> float:
        """Propagation-only round-trip time right now."""
        return self.uplink.current_delay() + self.downlink.current_delay()

    @property
    def up(self) -> bool:
        """Up iff administratively enabled *and* no fault holds it down."""
        return self._admin_up and self._down_refs == 0

    @property
    def fault_holds(self) -> int:
        """Outstanding :meth:`fail` holds (the invariant monitor audits
        this against the injector's set of active outage faults)."""
        return self._down_refs

    def set_up(self, up: bool) -> None:
        """Administratively enable/disable both directions.

        This is the master switch; it composes with fault holds — an
        administratively-disabled channel stays down however many holds
        are released.
        """
        was_up = self.up
        self._admin_up = up
        self._apply_state(was_up)

    def fail(self) -> None:
        """Acquire one fault hold (the channel goes down if it was up)."""
        was_up = self.up
        self._down_refs += 1
        self._apply_state(was_up)

    def restore(self) -> None:
        """Release one fault hold (up again once all holds are released)."""
        if self._down_refs <= 0:
            raise NetworkError(f"channel {self.name!r}: restore() without fail()")
        was_up = self.up
        self._down_refs -= 1
        self._apply_state(was_up)

    def _apply_state(self, was_up: bool) -> None:
        now_up = self.up
        self.uplink.up = now_up
        self.downlink.up = now_up
        if now_up == was_up:
            return
        now = self.sim.now
        if now_up:
            self.last_up_at = now
            if self.last_down_at is not None:
                self.downtime_total += now - self.last_down_at
                self.last_down_at = None
        else:
            self.outage_count += 1
            self.last_down_at = now
        for hook in self.on_transition:
            hook(self, now_up, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.index}:{self.name} rtt={self.base_rtt() * 1e3:.1f}ms>"
