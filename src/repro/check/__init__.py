"""Runtime invariant checking and seeded chaos campaigns.

Two halves, one goal — catching conservation-law bugs the moment they
happen instead of three experiments later:

* :class:`InvariantMonitor` (:mod:`repro.check.monitor`) taps a live
  network's kernel/link/device/transport/fault seams and raises
  :class:`~repro.errors.InvariantError` with a minimal structured report
  the instant a law breaks.
* The chaos campaign (:mod:`repro.check.chaos`, ``python -m repro chaos``)
  hammers randomized scenario × fault-schedule × policy combinations with
  the monitor armed, writes a self-contained JSON repro bundle per failure
  (:mod:`repro.check.bundle`), and replays bundles deterministically.

Quickstart::

    from repro import HvcNetwork
    from repro.check import InvariantMonitor

    net = HvcNetwork([...])
    monitor = InvariantMonitor(net).arm()   # before workloads
    ...
    net.run(until=10.0)
    monitor.final_check()
"""

from repro.check.bundle import read_bundle, same_violation, write_bundle
from repro.check.chaos import (
    chaos_unit,
    random_scenario,
    replay_bundle,
    run_campaign,
    run_scenario,
)
from repro.check.monitor import InvariantMonitor

__all__ = [
    "InvariantMonitor",
    "chaos_unit",
    "random_scenario",
    "read_bundle",
    "replay_bundle",
    "run_campaign",
    "run_scenario",
    "same_violation",
    "write_bundle",
]
