"""Runtime invariant checking for a live :class:`~repro.core.api.HvcNetwork`.

The :class:`InvariantMonitor` taps the same instrumentation seams the
observability layer uses — the kernel's batch invariant hook (one call
per sorted dispatch run, batches of one on the per-event fallback loop),
the per-link and per-device ``obs`` adapter slots, the resequencer's
release callback — and
continuously asserts the stack's conservation laws while a simulation runs:

========================== ==========================================
law                         guards
========================== ==========================================
clock-monotonic             kernel: the clock never moves backwards
link-fifo                   link: delivery order == serialization order
link-exactly-once           link: no packet delivered twice by one link
link-loss-order             link: losses strike the departing packet
link-deliver-monotonic      link: arrival timestamps never regress
link-conservation           link: enqueued == transmitted+flushed+pending,
                            transmitted == delivered+lost+propagating
link-stats-reconcile        link: live taps agree with ``LinkStats``
device-conservation         device: sends/receives balance link totals;
                            dispatches == receives − resequencer holds
reseq-no-dup-release        resequencer: each (flow, shim_seq) released once
transport-sequence          connection: 0 ≤ snd_una ≤ snd_nxt ≤ write_end
transport-flight            connection: flight ledger == Σ live segments
transport-segments          connection: segment list sorted and disjoint
transport-bytes             connection: bytes ACKed ≤ bytes sent
transport-receive           connection: OOO ranges disjoint, above rcv_nxt
transport-cross             pair: sender's ACKed prefix ≤ peer's contiguous
                            receive prefix ≤ sender's sent prefix
transport-cc-bounds         connection: cwnd finite and > 0, pacing rate
                            (when paced) finite and > 0, RTO in [min, max]
fault-balance               injector: channel holds / link overlays match
                            the set of applied-but-unreverted faults
fault-final                 injector: everything reverted past the horizon
========================== ==========================================

Event-level laws (FIFO, exactly-once, duplicate release, clock) fire the
instant they are violated; ledger laws run from a periodic audit event plus
:meth:`InvariantMonitor.final_check`. A violation raises
:class:`~repro.errors.InvariantError` carrying a minimal structured report:
time, law, entity, the counter deltas that disagree, and the last few
events the monitor observed.

Arm the monitor on a freshly built network, *before* creating workloads
(packets the taps never saw enqueue cannot be audited) and after
``attach_obs`` if observability is also wanted (the taps chain to whatever
adapter already occupies the ``obs`` slot)::

    net = HvcNetwork([...])
    monitor = InvariantMonitor(net).arm()
    injector = FaultInjector(net, schedule).arm()
    monitor.watch_injector(injector)
    ... workloads ...
    net.run(until=duration)
    monitor.final_check()

When no monitor is armed the production code paths pay nothing beyond the
pre-existing ``obs is None`` checks plus one branch per kernel event
(``benchmarks/test_bench_check.py`` gates this at ≤ 3%).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InvariantError
from repro.faults.injector import FaultLossOverlay

#: Default audit period (simulated seconds).
DEFAULT_AUDIT_PERIOD = 0.1
#: Default size of the recent-event ring included in violation reports.
DEFAULT_RECENT_EVENTS = 40
#: Per-link window of remembered deliveries for the exactly-once law.
DELIVERED_WINDOW = 4096
#: Per-flow cap on remembered resequencer releases before compaction.
RELEASED_CAP = 65536
#: Absolute tolerance for additive float state (delay offsets).
ADDITIVE_EPS = 1e-9
#: Relative tolerance for multiplicative float state (rate factors).
RELATIVE_EPS = 1e-9


class _LinkLedger:
    """Event-driven bookkeeping for one link, chained before any obs adapter.

    Implements the :class:`repro.obs.trace.LinkObs` protocol so it can sit
    in the link's single ``obs`` slot, forwarding every callback to the
    adapter (if any) it displaced.
    """

    __slots__ = (
        "monitor", "link", "name", "inner",
        "offered", "enqueued", "overflow", "down_drops", "flushed",
        "transmitted", "lost", "delivered", "bytes_delivered",
        "propagating", "delivered_recent", "delivered_order",
        "last_deliver_time",
        "base_sent", "base_delivered", "base_lost", "base_overflow",
        "base_flushed", "base_bytes",
    )

    def __init__(self, monitor: "InvariantMonitor", link, inner) -> None:
        self.monitor = monitor
        self.link = link
        self.name = link.name
        self.inner = inner
        self.offered = 0
        self.enqueued = 0
        self.overflow = 0       # queue-full drops (counted in offered)
        self.down_drops = 0     # link-down drops (not offered)
        self.flushed = 0
        self.transmitted = 0
        self.lost = 0
        self.delivered = 0
        self.bytes_delivered = 0
        #: (packet_id, copy) keys in serialization order, still in the air.
        self.propagating = deque()
        #: Recently delivered keys, for the exactly-once law.
        self.delivered_recent: Set[Tuple[int, int]] = set()
        self.delivered_order = deque()
        self.last_deliver_time = -1.0
        stats = link.stats
        self.base_sent = stats.sent
        self.base_delivered = stats.delivered
        self.base_lost = stats.lost
        self.base_overflow = stats.overflow_drops
        self.base_flushed = stats.flushed
        self.base_bytes = stats.bytes_delivered

    # -- LinkObs protocol ------------------------------------------------
    def on_offered(self) -> None:
        self.offered += 1
        if self.inner is not None:
            self.inner.on_offered()

    def on_enqueue(self, packet, now: float) -> None:
        self.enqueued += 1
        self.monitor._observe("enqueue", self.name, packet, now)
        if self.inner is not None:
            self.inner.on_enqueue(packet, now)

    def on_overflow(self, packet, now: float, reason: str = "overflow") -> None:
        if reason == "flush":
            self.flushed += 1
        elif reason == "down":
            self.down_drops += 1
        else:
            self.overflow += 1
        self.monitor._observe(f"drop[{reason}]", self.name, packet, now)
        if self.inner is not None:
            self.inner.on_overflow(packet, now, reason=reason)

    def on_transmit(self, packet, now: float) -> None:
        self.transmitted += 1
        self.propagating.append((packet.packet_id, packet.copy_index))
        self.monitor._observe("transmit", self.name, packet, now)
        if self.inner is not None:
            self.inner.on_transmit(packet, now)

    def on_loss(self, packet, now: float) -> None:
        self.lost += 1
        key = (packet.packet_id, packet.copy_index)
        if self.propagating and self.propagating[-1] == key:
            self.propagating.pop()
        elif key in self.propagating:
            self.monitor._violate(
                "link-loss-order",
                self.name,
                f"loss of packet {key} which is not the departing packet",
                departing=self.propagating[-1] if self.propagating else None,
            )
        self.monitor._observe("loss", self.name, packet, now)
        if self.inner is not None:
            self.inner.on_loss(packet, now)

    def on_deliver(self, packet, now: float) -> None:
        key = (packet.packet_id, packet.copy_index)
        if key in self.delivered_recent:
            self.monitor._violate(
                "link-exactly-once",
                self.name,
                f"packet {key} delivered twice by the same link",
            )
        if self.propagating and self.propagating[0] == key:
            self.propagating.popleft()
        elif key in self.propagating:
            self.monitor._violate(
                "link-fifo",
                self.name,
                f"packet {key} delivered ahead of {self.propagating[0]}",
                in_flight=len(self.propagating),
            )
        if now < self.last_deliver_time:
            self.monitor._violate(
                "link-deliver-monotonic",
                self.name,
                f"delivery at t={now:.9f} after one at t={self.last_deliver_time:.9f}",
            )
        self.last_deliver_time = now
        self.delivered += 1
        self.bytes_delivered += packet.size_bytes
        self.delivered_recent.add(key)
        self.delivered_order.append(key)
        if len(self.delivered_order) > DELIVERED_WINDOW:
            self.delivered_recent.discard(self.delivered_order.popleft())
        self.monitor._observe("deliver", self.name, packet, now)
        if self.inner is not None:
            self.inner.on_deliver(packet, now)

    # -- audit -----------------------------------------------------------
    def audit(self) -> None:
        check = self.monitor._check
        pending = self.link.pending_packets
        check(
            "link-conservation", self.name,
            self.enqueued == self.transmitted + self.flushed + pending,
            "enqueued != transmitted + flushed + pending",
            enqueued=self.enqueued, transmitted=self.transmitted,
            flushed=self.flushed, pending=pending,
        )
        check(
            "link-conservation", self.name,
            self.transmitted == self.delivered + self.lost + len(self.propagating),
            "transmitted != delivered + lost + propagating",
            transmitted=self.transmitted, delivered=self.delivered,
            lost=self.lost, propagating=len(self.propagating),
        )
        check(
            "link-conservation", self.name,
            self.offered == self.enqueued + self.overflow,
            "offered != enqueued + overflow drops",
            offered=self.offered, enqueued=self.enqueued, overflow=self.overflow,
        )
        stats = self.link.stats
        for label, live, recorded in (
            ("sent", self.offered, stats.sent - self.base_sent),
            ("delivered", self.delivered, stats.delivered - self.base_delivered),
            ("lost", self.lost, stats.lost - self.base_lost),
            ("flushed", self.flushed, stats.flushed - self.base_flushed),
            (
                "overflow_drops",
                self.overflow + self.down_drops,
                stats.overflow_drops - self.base_overflow,
            ),
            (
                "bytes_delivered",
                self.bytes_delivered,
                stats.bytes_delivered - self.base_bytes,
            ),
        ):
            check(
                "link-stats-reconcile", self.name,
                live == recorded,
                f"tap count disagrees with LinkStats.{label}",
                tap=live, stats=recorded, counter=label,
            )


class _DeviceLedger:
    """Device-slot tap: steering/dispatch counts, chained like the link tap."""

    __slots__ = ("monitor", "device", "inner", "steered", "dispatched",
                 "blackout_drops", "base_stats")

    def __init__(self, monitor: "InvariantMonitor", device, inner) -> None:
        self.monitor = monitor
        self.device = device
        self.inner = inner
        self.steered = 0
        self.dispatched = 0
        self.blackout_drops = 0
        stats = device.stats
        self.base_stats = (
            stats.packets_sent,
            stats.packets_received,
            stats.duplicates_discarded,
            stats.blackout_drops,
        )

    # -- DeviceObs protocol ----------------------------------------------
    def on_steer(self, packet, choices, now: float) -> None:
        self.steered += 1
        if self.inner is not None:
            self.inner.on_steer(packet, choices, now)

    def on_blackout_drop(self, packet, now: float) -> None:
        self.blackout_drops += 1
        self.monitor._observe("blackout-drop", self.device.name, packet, now)
        if self.inner is not None:
            self.inner.on_blackout_drop(packet, now)

    def on_dispatch(self, packet, now: float) -> None:
        self.dispatched += 1
        self.monitor._observe("dispatch", self.device.name, packet, now)
        if self.inner is not None:
            self.inner.on_dispatch(packet, now)

    # -- audit -----------------------------------------------------------
    def audit(self, out_ledgers: List[_LinkLedger], in_ledgers: List[_LinkLedger]) -> None:
        check = self.monitor._check
        stats = self.device.stats
        base_sent, base_received, base_dupes, base_blackout = self.base_stats
        sent = stats.packets_sent - base_sent
        received = stats.packets_received - base_received
        dupes = stats.duplicates_discarded - base_dupes
        blackout = stats.blackout_drops - base_blackout
        enqueued = sum(ledger.enqueued for ledger in out_ledgers)
        delivered = sum(ledger.delivered for ledger in in_ledgers)
        check(
            "device-conservation", self.device.name,
            sent == enqueued,
            "packets_sent != packets accepted by outbound links",
            packets_sent=sent, link_enqueued=enqueued,
        )
        check(
            "device-conservation", self.device.name,
            received + dupes == delivered,
            "received + duplicates != inbound link deliveries",
            received=received, duplicates=dupes, link_delivered=delivered,
        )
        check(
            "device-conservation", self.device.name,
            blackout == self.blackout_drops,
            "DeviceStats.blackout_drops disagrees with the device tap",
            stats=blackout, tap=self.blackout_drops,
        )
        reseq = self.device.resequencer
        held = reseq.pending_count if reseq is not None else 0
        check(
            "device-conservation", self.device.name,
            self.dispatched + held == received,
            "dispatched + resequencer holds != packets received",
            dispatched=self.dispatched, held=held, received=received,
        )


class InvariantMonitor:
    """Continuously asserts the stack's conservation laws on one network.

    Parameters
    ----------
    net:
        The :class:`~repro.core.api.HvcNetwork` to guard.
    period:
        Simulated seconds between ledger audits (event-level laws are
        always immediate). The audit event reschedules itself for as long
        as the simulation keeps running.
    recent:
        How many recently observed events to include in a violation report.
    """

    def __init__(
        self,
        net,
        period: float = DEFAULT_AUDIT_PERIOD,
        recent: int = DEFAULT_RECENT_EVENTS,
    ) -> None:
        if period <= 0:
            raise ValueError(f"audit period must be positive, got {period}")
        self.net = net
        self.period = period
        self.recent = deque(maxlen=recent)
        self.armed = False
        self.checks_run = 0
        self.audits_run = 0
        self.events_seen = 0
        self.violation: Optional[dict] = None
        self._link_ledgers: List[_LinkLedger] = []
        self._device_ledgers: Dict[str, _DeviceLedger] = {}
        self._out_links: Dict[str, List[_LinkLedger]] = {}
        self._in_links: Dict[str, List[_LinkLedger]] = {}
        self._injectors: List[object] = []
        #: flow -> (floor, released-set) for the no-duplicate-release law.
        self._released: Dict[int, Tuple[int, Set[int]]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def arm(self) -> "InvariantMonitor":
        """Install every tap and start the periodic audit.

        Arm on a freshly wired network, before workloads send traffic and
        after ``attach_obs`` (the taps chain to installed obs adapters).
        """
        if self.armed:
            raise InvariantError("invariant monitor already armed")
        self.armed = True
        net = self.net
        ledger_for = {}
        for channel in net.channels:
            for link in (channel.uplink, channel.downlink):
                ledger = _LinkLedger(self, link, link.obs)
                link.obs = ledger
                self._link_ledgers.append(ledger)
                ledger_for[link.name] = ledger
        for device in (net.client, net.server):
            tap = _DeviceLedger(self, device, device.obs)
            device.obs = tap
            self._device_ledgers[device.name] = tap
            self._out_links[device.name] = [
                ledger_for[ch.out_link(device.end).name] for ch in net.channels
            ]
            self._in_links[device.name] = [
                ledger_for[ch.in_link(device.end).name] for ch in net.channels
            ]
            if device.resequencer is not None:
                self._wrap_resequencer(device)
        # Batched hook: one call per dispatched bucket keeps the monitor
        # off the kernel's per-event fast path. A sorted batch makes one
        # first-event monotonicity check equivalent to checking every
        # event (see Simulator.attach_batch_invariant_hook); both run()
        # and run_per_event() honor the batch hook, the latter with
        # batches of one, so events_seen stays exact either way.
        net.sim.attach_batch_invariant_hook(self._on_kernel_batch)
        net.sim.schedule(self.period, self._audit_event)
        return self

    def watch_injector(self, injector) -> "InvariantMonitor":
        """Audit a :class:`~repro.faults.FaultInjector`'s apply/revert balance.

        Valid when the injector is the only holder of ``Channel.fail`` on
        this network (true for every experiment in this repo; scripted
        :class:`~repro.net.dynamics.ChannelTimeline` uses the admin switch).
        """
        self._injectors.append(injector)
        return self

    def _wrap_resequencer(self, device) -> None:
        reseq = device.resequencer
        inner = reseq.deliver
        released = self._released

        def checked_deliver(packet):
            seq = packet.shim_seq
            if seq is not None:
                floor, seen = released.setdefault(packet.flow_id, (-1, set()))
                if seq <= floor or seq in seen:
                    self._violate(
                        "reseq-no-dup-release",
                        device.name,
                        f"flow {packet.flow_id} shim_seq {seq} released twice",
                        flow=packet.flow_id, shim_seq=seq,
                    )
                seen.add(seq)
                if len(seen) > RELEASED_CAP:
                    floor = self._compact_released(packet.flow_id, floor, seen)
                released[packet.flow_id] = (floor, seen)
            inner(packet)

        reseq.deliver = checked_deliver

    @staticmethod
    def _compact_released(flow: int, floor: int, seen: Set[int]) -> int:
        # Advance the contiguous floor, then (if holes pin the set) drop the
        # oldest half — a late straggler below the new floor would misreport
        # as a duplicate, but only after 2**16 releases with a live hole.
        while floor + 1 in seen:
            floor += 1
            seen.discard(floor)
        if len(seen) > RELEASED_CAP // 2:
            for seq in sorted(seen)[: len(seen) // 2]:
                seen.discard(seq)
                floor = max(floor, seq)
        return floor

    # ------------------------------------------------------------------
    # Event-level hooks
    # ------------------------------------------------------------------
    def _on_kernel_event(self, now: float, event_time: float) -> None:
        self.events_seen += 1
        if event_time < now:
            self._violate(
                "clock-monotonic",
                "kernel",
                f"event at t={event_time:.9f} dispatched with clock at t={now:.9f}",
                now=now, event_time=event_time,
            )

    def _on_kernel_batch(self, now: float, first_time: float, count: int) -> None:
        """Per-batch clock law: the batch is a sorted run, so its first
        event at or after ``now`` certifies every event in it."""
        self.events_seen += count
        if first_time < now:
            self._violate(
                "clock-monotonic",
                "kernel",
                f"batch of {count} starting at t={first_time:.9f} dispatched "
                f"with clock at t={now:.9f}",
                now=now, event_time=first_time, batch=count,
            )

    def _observe(self, kind: str, entity: str, packet, now: float) -> None:
        self.recent.append(
            {
                "time": round(now, 9),
                "kind": kind,
                "entity": entity,
                "packet": packet.packet_id,
                "copy": packet.copy_index,
                "flow": packet.flow_id,
            }
        )

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------
    def _audit_event(self) -> None:
        self.audit()
        self.net.sim.schedule(self.period, self._audit_event)

    def audit(self) -> None:
        """Run every ledger law right now (also called periodically)."""
        self.audits_run += 1
        for ledger in self._link_ledgers:
            ledger.audit()
        for name, tap in self._device_ledgers.items():
            tap.audit(self._out_links[name], self._in_links[name])
        for pair in self.net.connections:
            self._audit_connection("client", pair.client)
            self._audit_connection("server", pair.server)
            self._audit_pair(pair)
        for injector in self._injectors:
            self._audit_injector(injector)

    def final_check(self) -> None:
        """Full audit plus end-state laws; call once the run is over."""
        self.audit()
        for injector in self._injectors:
            if self.net.sim.now >= injector.schedule.horizon:
                self._check(
                    "fault-final", "injector",
                    not injector.active,
                    "faults still active past the schedule horizon",
                    active=[f.describe() for f in injector.active],
                    horizon=injector.schedule.horizon,
                )

    # -- transport laws --------------------------------------------------
    def _audit_connection(self, side: str, conn) -> None:
        state = conn.audit_state()
        entity = f"{side}/flow{conn.flow_id}"
        check = self._check
        snd_una, snd_nxt = state["snd_una"], state["snd_nxt"]
        check(
            "transport-sequence", entity,
            0 <= snd_una <= snd_nxt <= state["write_end"],
            "sequence bounds violated (need 0 <= una <= nxt <= write_end)",
            snd_una=snd_una, snd_nxt=snd_nxt, write_end=state["write_end"],
        )
        check(
            "transport-flight", entity,
            state["flight_bytes"] == state["segment_flight"],
            "flight-byte ledger disagrees with the live segment list",
            flight_bytes=state["flight_bytes"],
            segment_flight=state["segment_flight"],
        )
        check(
            "transport-flight", entity,
            0 <= state["flight_bytes"] <= snd_nxt - snd_una,
            "flight bytes outside [0, outstanding]",
            flight_bytes=state["flight_bytes"], outstanding=snd_nxt - snd_una,
        )
        segments = state["segments"]
        ok = all(
            seg[0] < seg[1] and seg[1] <= snd_nxt and seg[1] > snd_una
            for seg in segments
        ) and all(
            segments[i][1] <= segments[i + 1][0] for i in range(len(segments) - 1)
        )
        check(
            "transport-segments", entity, ok,
            "segment list not sorted/disjoint within (snd_una, snd_nxt]",
            segments=segments[:8], snd_una=snd_una, snd_nxt=snd_nxt,
        )
        check(
            "transport-bytes", entity,
            state["bytes_acked"] <= state["bytes_sent"],
            "bytes ACKed exceed bytes sent",
            bytes_acked=state["bytes_acked"], bytes_sent=state["bytes_sent"],
        )
        ranges = state["ooo_ranges"]
        rcv_nxt = state["rcv_nxt"]
        ok = all(lo < hi for lo, hi in ranges) and all(
            ranges[i][1] < ranges[i + 1][0] + 1 for i in range(len(ranges) - 1)
        ) and all(lo > rcv_nxt for lo, _ in ranges)
        check(
            "transport-receive", entity, ok,
            "out-of-order ranges overlap or sit inside the contiguous prefix",
            rcv_nxt=rcv_nxt, ranges=ranges[:8],
        )
        check(
            "transport-cc-bounds", entity,
            state["cwnd_bytes"] > 0 and math.isfinite(state["cwnd_bytes"]),
            "congestion window collapsed to zero or escaped to infinity",
            cwnd_bytes=state["cwnd_bytes"],
        )
        pacing_rate = state.get("pacing_rate_bps")
        check(
            "transport-cc-bounds", entity,
            pacing_rate is None
            or (pacing_rate > 0 and math.isfinite(pacing_rate)),
            "pacing rate is zero, negative, or non-finite",
            pacing_rate_bps=pacing_rate,
        )
        check(
            "transport-cc-bounds", entity,
            state["min_rto"] - ADDITIVE_EPS <= state["rto"] <= state["max_rto"] + ADDITIVE_EPS,
            "RTO escaped its [min_rto, max_rto] envelope",
            rto=state["rto"], min_rto=state["min_rto"], max_rto=state["max_rto"],
        )

    def _audit_pair(self, pair) -> None:
        for sender, receiver, label in (
            (pair.client, pair.server, "client->server"),
            (pair.server, pair.client, "server->client"),
        ):
            s = sender.audit_state()
            r = receiver.audit_state()
            entity = f"{label}/flow{sender.flow_id}"
            self._check(
                "transport-cross", entity,
                s["snd_una"] <= r["rcv_nxt"] <= s["snd_nxt"],
                "ACKed prefix / receive prefix / sent prefix out of order",
                snd_una=s["snd_una"], peer_rcv_nxt=r["rcv_nxt"],
                snd_nxt=s["snd_nxt"],
            )

    # -- fault laws ------------------------------------------------------
    def _audit_injector(self, injector) -> None:
        active = injector.active
        by_channel: Dict[str, List] = {}
        for fault in active:
            by_channel.setdefault(fault.channel, []).append(fault)
        for channel in self.net.channels:
            faults = by_channel.get(channel.name, [])
            holds = sum(1 for f in faults if f.kind in ("outage", "blackout"))
            self._check(
                "fault-balance", channel.name,
                channel.fault_holds == holds,
                "channel fault holds != active outage/blackout faults",
                fault_holds=channel.fault_holds, active_outages=holds,
                active=[f.describe() for f in faults],
            )
            spike = sum(f.severity for f in faults if f.kind == "rtt_spike")
            factor = 1.0
            for f in faults:
                if f.kind == "capacity":
                    factor *= f.severity
            bursts = sorted(f.severity for f in faults if f.kind == "loss_burst")
            for link in (channel.uplink, channel.downlink):
                self._check(
                    "fault-balance", link.name,
                    abs(link.delay_offset - spike) <= ADDITIVE_EPS,
                    "link delay offset != sum of active rtt_spike severities",
                    delay_offset=link.delay_offset, expected=spike,
                )
                self._check(
                    "fault-balance", link.name,
                    abs(link.rate_factor - factor) <= RELATIVE_EPS * max(1.0, factor),
                    "link rate factor != product of active capacity faults",
                    rate_factor=link.rate_factor, expected=factor,
                )
                overlay_active = (
                    sorted(link.loss.active)
                    if isinstance(link.loss, FaultLossOverlay)
                    else []
                )
                self._check(
                    "fault-balance", link.name,
                    overlay_active == bursts,
                    "loss overlay stack != active loss_burst severities",
                    overlay=overlay_active, expected=bursts,
                )

    # ------------------------------------------------------------------
    # Violation machinery
    # ------------------------------------------------------------------
    def _check(self, law: str, entity: str, ok: bool, message: str, **deltas) -> None:
        self.checks_run += 1
        if not ok:
            self._violate(law, entity, message, **deltas)

    def _violate(self, law: str, entity: str, message: str, **deltas) -> None:
        now = self.net.sim.now
        report = {
            "law": law,
            "entity": entity,
            "time": round(now, 9),
            "message": message,
            "deltas": {k: v for k, v in deltas.items()},
            "recent_events": list(self.recent),
            "checks_run": self.checks_run,
        }
        self.violation = report
        rendered = ", ".join(f"{k}={v!r}" for k, v in deltas.items())
        tail = "\n".join(
            f"    t={e['time']:.6f} {e['kind']:<14} {e['entity']} "
            f"pkt={e['packet']}/{e['copy']} flow={e['flow']}"
            for e in list(self.recent)[-10:]
        )
        raise InvariantError(
            f"[{law}] {entity} at t={now:.6f}: {message}"
            + (f" ({rendered})" if rendered else "")
            + (f"\n  last events:\n{tail}" if tail else ""),
            report=report,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InvariantMonitor armed={self.armed} checks={self.checks_run} "
            f"audits={self.audits_run}>"
        )
