"""Self-contained repro bundles for chaos-campaign failures.

When a chaos scenario trips an invariant, the campaign writes everything
needed to re-execute that exact scenario into one JSON file: the scenario's
primitive parameters (seed, topology preset, policies, workload, fault
rows), the violation report the monitor raised, and enough campaign context
to find where it came from. ``python -m repro chaos --replay <bundle>``
re-runs the scenario in-process and checks that the same law fails on the
same entity at the same simulated time — the determinism contract.

Bundles are plain JSON on purpose: they can be attached to CI artifacts,
diffed, and hand-edited while bisecting (e.g. deleting fault rows to
minimize the failing schedule).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Optional

from repro.errors import ScenarioError

#: Format tag; bump when the bundle layout changes incompatibly.
FORMAT = "repro-chaos-bundle/1"

#: Simulated-time tolerance when matching a replayed violation against the
#: recorded one (violation times are deterministic; the slack only absorbs
#: JSON float round-tripping).
TIME_TOLERANCE = 1e-6


def write_bundle(
    directory,
    scenario: dict,
    violation: dict,
    campaign: Optional[dict] = None,
) -> Path:
    """Write one failure bundle; returns its path.

    The filename encodes the scenario index and violated law so a directory
    of bundles scans at a glance.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    law = str(violation.get("law", "unknown")).replace("/", "-")
    index = scenario.get("index", 0)
    path = directory / f"chaos-{index:05d}-{law}.json"
    payload = {
        "format": FORMAT,
        "scenario": scenario,
        "violation": violation,
        "campaign": campaign or {},
        "environment": {"python": platform.python_version()},
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return path


def read_bundle(path) -> dict:
    """Load and validate a bundle written by :func:`write_bundle`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ScenarioError(f"cannot read chaos bundle {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise ScenarioError(
            f"{path} is not a chaos repro bundle (expected format {FORMAT!r})"
        )
    for key in ("scenario", "violation"):
        if not isinstance(payload.get(key), dict):
            raise ScenarioError(f"chaos bundle {path} is missing its {key!r} section")
    return payload


def same_violation(recorded: dict, replayed: dict) -> bool:
    """Did the replay trip the same law, entity and simulated time?

    Packet/flow identifiers inside the reports may differ between processes
    (they come from module-level counters), so equality is defined on the
    deterministic coordinates of the failure.
    """
    return (
        recorded.get("law") == replayed.get("law")
        and recorded.get("entity") == replayed.get("entity")
        and abs(float(recorded.get("time", 0.0)) - float(replayed.get("time", 0.0)))
        <= TIME_TOLERANCE
    )
