"""Seeded chaos campaign: random scenarios executed with invariants armed.

Each scenario is a random point in (topology preset × steering policy ×
congestion controller × workload shape × fault schedule) space, encoded as
a primitive dict so it can ride inside a :class:`~repro.runner.RunUnit`,
hash into the result cache, and round-trip through a JSON repro bundle.
The campaign executes scenarios through
:meth:`~repro.runner.ParallelRunner.run_outcomes` — a crashing or hanging
scenario yields an outcome, not a dead campaign — with the
:class:`~repro.check.monitor.InvariantMonitor` armed on every network.

A violated invariant produces a self-contained bundle (see
:mod:`repro.check.bundle`); ``--replay <bundle>`` re-executes the recorded
scenario in-process and verifies the same law fails on the same entity at
the same simulated time. ``--seed-bug reseq-double-release`` arms the
deliberately planted resequencer bug to demonstrate the whole
catch → bundle → replay loop end to end (that mode *expects* violations and
fails if none are caught).

CLI::

    python -m repro chaos                       # 200 scenarios, seed 0
    python -m repro chaos --quick               # CI smoke scale
    python -m repro chaos --scenarios 50 --jobs 8 --seed 7
    python -m repro chaos --seed-bug reseq-double-release
    python -m repro chaos --replay chaos_bundles/chaos-00012-link-fifo.json
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Dict, List, Optional, Sequence

from repro.errors import InvariantError, ScenarioError

#: Known planted bugs (--seed-bug); each exists to prove a law can fire.
SEED_BUGS = ("reseq-double-release",)

#: Workload shapes a scenario can draw.
WORKLOADS = ("bulk", "two-flows", "mixed", "datagram")

#: Steering policies safe to instantiate with no extra configuration.
STEERINGS = (
    "single",
    "round-robin",
    "rate-weighted",
    "min-rtt",
    "ecf",
    "flow-pinned",
    "dchannel",
    "general",
    "redundant",
    "cost-aware",
)

#: Congestion controllers drawn for reliable flows.
CCAS = (
    "reno", "cubic", "bbr", "bbr2", "bbr2+", "copa", "vegas", "vivace",
    "req-latency", "req-throughput", "req-deadline", "req-background",
    "hvc-reno", "hvc-cubic", "hvc-bbr", "hvc-bbr2+",
)

#: Trace presets a scenario can derive its fault schedule from instead of
#: drawing a random one (see :meth:`FaultSchedule.from_trace`). Derivation
#: happens at draw time; the resulting primitive rows ride in
#: ``scenario["fault_rows"]`` so bundles replay without re-deriving.
TRACE_FAULT_SOURCES = ("starlink-leo", "wifi-5g-handoff")

#: Trace window used when deriving chaos fault schedules. Both presets
#: place their first disruption around t=3-4s, so a 6 s window yields a
#: non-trivial schedule; ``run_scenario`` already extends the run past the
#: schedule horizon, whatever the scenario's nominal duration.
TRACE_FAULT_DURATION = 6.0

#: Default campaign scale (the acceptance bar runs >= 200 scenarios).
DEFAULT_SCENARIOS = 200
DEFAULT_DURATION = 1.5
QUICK_SCENARIOS = 24
QUICK_DURATION = 0.6
DEFAULT_BUNDLE_DIR = "chaos_bundles"

#: Slack past the fault horizon so every revert lands before final_check.
HORIZON_SLACK = 0.05


def channel_preset(name: str) -> list:
    """Materialize a named channel set (fresh spec instances each call)."""
    from repro.net.hvc import (
        cisp_spec,
        fiber_wan_spec,
        fixed_embb_spec,
        leo_spec,
        urllc_spec,
        wifi_mlo_specs,
    )

    presets = {
        "embb": lambda: [fixed_embb_spec()],
        "embb+urllc": lambda: [fixed_embb_spec(), urllc_spec()],
        "embb+leo": lambda: [fixed_embb_spec(), leo_spec()],
        "cisp+wan": lambda: [cisp_spec(), fiber_wan_spec()],
        "wifi-mlo": lambda: list(wifi_mlo_specs()),
        "embb+urllc+leo": lambda: [fixed_embb_spec(), urllc_spec(), leo_spec()],
    }
    try:
        return presets[name]()
    except KeyError:
        known = ", ".join(sorted(presets))
        raise ScenarioError(f"unknown channel preset {name!r}; known: {known}") from None


#: Channel names per preset, needed to draw fault schedules without
#: materializing specs (must match the ChannelSpec names above).
PRESET_CHANNELS: Dict[str, Sequence[str]] = {
    "embb": ("embb",),
    "embb+urllc": ("embb", "urllc"),
    "embb+leo": ("embb", "leo"),
    "cisp+wan": ("cisp", "fiber-wan"),
    "wifi-mlo": ("wifi-mlo-5GHz", "wifi-mlo-6GHz"),
    "embb+urllc+leo": ("embb", "urllc", "leo"),
}


def random_scenario(
    rng: random.Random,
    index: int,
    duration: float = DEFAULT_DURATION,
    seed_bug: Optional[str] = None,
) -> dict:
    """Draw one scenario as a primitive, bundle-able dict.

    A fifth of ordinary draws source their fault schedule from a trace
    preset (``fault_source`` in :data:`TRACE_FAULT_SOURCES`) via
    :meth:`FaultSchedule.from_trace` rather than from the random fault
    generator — exercising exactly the disruption shapes real link traces
    produce (handoff micro-outages, rate collapses, delay spikes).

    With ``seed_bug`` set the draw is biased toward configurations where
    the planted bug can actually express itself (the resequencer only
    drains when multi-channel reordering makes it hold packets).
    """
    if seed_bug is not None and seed_bug not in SEED_BUGS:
        known = ", ".join(SEED_BUGS)
        raise ScenarioError(f"unknown seed bug {seed_bug!r}; known: {known}")
    if seed_bug == "reseq-double-release":
        preset = rng.choice(("embb+urllc", "embb+leo", "embb+urllc+leo"))
        steering = rng.choice(("round-robin", "dchannel", "min-rtt"))
        workload = rng.choice(("bulk", "two-flows"))
        resequence = True
    else:
        preset = rng.choice(tuple(PRESET_CHANNELS))
        steering = rng.choice(STEERINGS)
        workload = rng.choice(WORKLOADS)
        resequence = rng.random() < 0.85
    channels = PRESET_CHANNELS[preset]
    from repro.faults.schedule import FaultSchedule

    fault_source = "random"
    if seed_bug is None and rng.random() < 0.2:
        fault_source = rng.choice(TRACE_FAULT_SOURCES)
    if fault_source != "random":
        from repro.traces.catalog import get_trace

        trace = get_trace(fault_source, duration=TRACE_FAULT_DURATION)
        schedule = FaultSchedule.from_trace(trace, channel=rng.choice(channels))
    else:
        schedule = FaultSchedule.random(
            channels,
            duration,
            rng=rng,
            outage_rate=rng.choice((0.0, 0.2, 0.5)),
            outage_mean=0.2,
            loss_burst_rate=rng.choice((0.0, 0.3)),
            loss_burst_mean=0.3,
            loss_burst_severity=rng.uniform(0.05, 0.4),
            rtt_spike_rate=rng.choice((0.0, 0.3)),
            rtt_spike_mean=0.25,
            rtt_spike_delay=rng.uniform(0.01, 0.08),
            blackout_rate=rng.choice((0.0, 0.0, 0.3)),
            blackout_mean=0.15,
            capacity_rate=rng.choice((0.0, 0.0, 0.3)),
            capacity_mean=0.3,
            capacity_factor=rng.uniform(0.1, 0.5),
        )
    return {
        "index": index,
        "seed": rng.randrange(2**31),
        "channels": preset,
        "steering": steering,
        "cca": rng.choice(CCAS),
        "workload": workload,
        "resequence": resequence,
        "datagram_blackout": rng.choice(("drop", "buffer")),
        "duration": duration,
        "fault_source": fault_source,
        "fault_rows": schedule.to_params(),
        "seed_bug": seed_bug,
    }


def _build_workload(net, scenario: dict) -> None:
    """Create the scenario's flows with *deterministic* flow ids.

    Explicit ids matter: the global flow-id counter differs between a
    campaign worker and a replay process, and policies like ``flow-pinned``
    key on the id — bundles would not replay without pinning it.
    """
    from repro.apps.bulk import BACKLOG_BYTES

    kind = scenario["workload"]
    cca = scenario["cca"]
    sim = net.sim
    if kind in ("bulk", "two-flows", "mixed"):
        pair = net.open_connection(cc=cca, flow_id=101)
        pair.client.send_message(BACKLOG_BYTES, message_id=1)
    if kind == "two-flows":
        second = net.open_connection(cc=cca, flow_id=102, flow_priority=1)
        second.client.send_message(BACKLOG_BYTES, message_id=1)
    if kind in ("mixed", "datagram"):
        sock = net.open_datagram(
            flow_id=201, blackout=scenario["datagram_blackout"]
        )
        duration = scenario["duration"]
        messages = 40
        for i in range(messages):
            sim.schedule_at(
                i * duration / messages,
                _send_datagram, sock.client, 8_000, i + 1,
            )


def _send_datagram(socket, size: int, message_id: int) -> None:
    if not socket._closed:
        socket.send_message(size, message_id=message_id)


def run_scenario(scenario: dict) -> dict:
    """Execute one scenario with invariants armed; raises on violation.

    Returns run statistics on a clean pass. An
    :class:`~repro.errors.InvariantError` propagates to the caller —
    :func:`chaos_unit` converts it into a structured payload for campaign
    transport, while tests and ``--replay`` consume the raise directly.
    """
    from repro.check.monitor import InvariantMonitor
    from repro.core.api import HvcNetwork
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule
    from repro.net import resequencer as reseq_mod

    seed_bug = scenario.get("seed_bug")
    if seed_bug is not None and seed_bug not in SEED_BUGS:
        known = ", ".join(SEED_BUGS)
        raise ScenarioError(f"unknown seed bug {seed_bug!r}; known: {known}")
    if seed_bug == "reseq-double-release":
        reseq_mod.DEBUG_DOUBLE_RELEASE = True
    try:
        net = HvcNetwork(
            channel_preset(scenario["channels"]),
            steering=scenario["steering"],
            seed=scenario["seed"],
            resequence=scenario["resequence"],
        )
        monitor = InvariantMonitor(net).arm()
        schedule = FaultSchedule.from_params(scenario["fault_rows"])
        if len(schedule):
            injector = FaultInjector(net, schedule).arm()
            monitor.watch_injector(injector)
        _build_workload(net, scenario)
        until = max(scenario["duration"], schedule.horizon + HORIZON_SLACK)
        net.run(until=until)
        monitor.final_check()
    finally:
        reseq_mod.DEBUG_DOUBLE_RELEASE = False
    return {
        "ok": True,
        "checks": monitor.checks_run,
        "audits": monitor.audits_run,
        "events": monitor.events_seen,
        "faults": len(scenario["fault_rows"]),
    }


def chaos_unit(scenario: dict, seed: int = 0) -> dict:
    """Unit-function wrapper: violations become data, not exceptions.

    A campaign wants the violation report back through the worker pool as a
    plain payload (and a clean separation from *infrastructure* failures,
    which stay exceptions and surface as error outcomes).
    """
    try:
        return run_scenario(scenario)
    except InvariantError as exc:
        return {"ok": False, "violation": exc.report, "message": str(exc)}


def run_campaign(
    scenarios: int = DEFAULT_SCENARIOS,
    seed: int = 0,
    duration: float = DEFAULT_DURATION,
    jobs: int = 1,
    bundle_dir: str = DEFAULT_BUNDLE_DIR,
    seed_bug: Optional[str] = None,
    runner=None,
    timeout: Optional[float] = 120.0,
    progress=None,
) -> dict:
    """Run a seeded campaign; returns a summary dict.

    The same ``(scenarios, seed, duration, seed_bug)`` always produces the
    same scenario list — "chaos" refers to what happens *inside* each
    simulation, never to the campaign's own reproducibility.
    """
    from repro.check.bundle import write_bundle
    from repro.runner import ParallelRunner, RunUnit

    rng = random.Random(seed)
    scenario_list = [
        random_scenario(rng, index=i, duration=duration, seed_bug=seed_bug)
        for i in range(scenarios)
    ]
    units = [
        RunUnit.make("chaos", "repro.check.chaos:chaos_unit", scenario=scn)
        for scn in scenario_list
    ]
    if runner is None:
        runner = ParallelRunner(jobs=jobs)
    outcomes = runner.run_outcomes(units, timeout=timeout)

    bundles: List[str] = []
    violations = 0
    errors = []
    checks = 0
    for scn, outcome in zip(scenario_list, outcomes):
        if not outcome.ok:
            errors.append(
                {"index": scn["index"], "status": outcome.status, "error": outcome.error}
            )
            continue
        payload = outcome.value
        if payload.get("ok"):
            checks += payload.get("checks", 0)
            continue
        violations += 1
        path = write_bundle(
            bundle_dir,
            scn,
            payload["violation"],
            campaign={"seed": seed, "scenarios": scenarios, "duration": duration},
        )
        bundles.append(str(path))
        if progress is not None:
            progress(f"[chaos] scenario {scn['index']}: {payload['message'].splitlines()[0]}")
            progress(f"[chaos]   bundle: {path}")
    return {
        "scenarios": scenarios,
        "clean": scenarios - violations - len(errors),
        "violations": violations,
        "bundles": bundles,
        "errors": errors,
        "checks": checks,
        "seed": seed,
        "seed_bug": seed_bug,
    }


def replay_bundle(path, progress=None) -> dict:
    """Re-execute a bundle's scenario and compare the violation.

    Returns ``{"reproduced": bool, "recorded": ..., "replayed": ...}``;
    ``replayed`` is ``None`` when the scenario unexpectedly ran clean.
    """
    from repro.check.bundle import read_bundle, same_violation

    payload = read_bundle(path)
    recorded = payload["violation"]
    try:
        run_scenario(payload["scenario"])
        replayed = None
    except InvariantError as exc:
        replayed = exc.report
    reproduced = replayed is not None and same_violation(recorded, replayed)
    if progress is not None:
        want = f"[{recorded.get('law')}] {recorded.get('entity')} t={recorded.get('time')}"
        if replayed is None:
            progress(f"[chaos] replay ran CLEAN — recorded violation {want} did not recur")
        else:
            got = f"[{replayed.get('law')}] {replayed.get('entity')} t={replayed.get('time')}"
            verdict = "reproduced" if reproduced else "DIVERGED"
            progress(f"[chaos] replay {verdict}: recorded {want}, replayed {got}")
    return {"reproduced": reproduced, "recorded": recorded, "replayed": replayed}


# ----------------------------------------------------------------------
# CLI (`python -m repro chaos ...`)
# ----------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Seeded chaos campaign: random workload x fault schedule x "
            "policy scenarios executed with runtime invariants armed."
        ),
    )
    parser.add_argument("--scenarios", type=int, default=DEFAULT_SCENARIOS)
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--duration", type=float, default=None, help="per-scenario sim seconds"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke scale ({QUICK_SCENARIOS} scenarios x {QUICK_DURATION}s)",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-scenario wall-clock budget in seconds (0 disables)",
    )
    parser.add_argument("--bundle-dir", default=DEFAULT_BUNDLE_DIR, metavar="DIR")
    parser.add_argument(
        "--seed-bug", choices=SEED_BUGS, default=None,
        help="arm a planted bug; the campaign then EXPECTS violations",
    )
    parser.add_argument(
        "--replay", metavar="BUNDLE", default=None,
        help="re-execute a failure bundle and verify it reproduces",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:  # pragma: no cover - exercised via __main__
        argv = sys.argv[1:]
    args = _build_parser().parse_args(argv)
    if args.replay is not None:
        result = replay_bundle(args.replay, progress=print)
        return 0 if result["reproduced"] else 1
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    scenarios = args.scenarios
    duration = args.duration
    if args.quick:
        scenarios = min(scenarios, QUICK_SCENARIOS)
        duration = duration if duration is not None else QUICK_DURATION
    elif duration is None:
        duration = DEFAULT_DURATION
    summary = run_campaign(
        scenarios=scenarios,
        seed=args.seed,
        duration=duration,
        jobs=args.jobs,
        bundle_dir=args.bundle_dir,
        seed_bug=args.seed_bug,
        timeout=args.timeout if args.timeout > 0 else None,
        progress=print,
    )
    print(
        f"[chaos] {summary['scenarios']} scenarios (seed={summary['seed']}): "
        f"{summary['clean']} clean, {summary['violations']} violations, "
        f"{len(summary['errors'])} errors, {summary['checks']} invariant checks"
    )
    for error in summary["errors"]:
        print(f"[chaos] scenario {error['index']} {error['status']}: "
              f"{str(error['error']).splitlines()[-1] if error['error'] else '?'}")
    if args.seed_bug is not None:
        # Demo mode: the planted bug must be caught, and each bundle must
        # replay to the same violation — the full triage loop, verified.
        if summary["violations"] == 0:
            print(f"[chaos] seeded bug {args.seed_bug!r} was NOT caught")
            return 1
        replays = [replay_bundle(p, progress=print) for p in summary["bundles"]]
        return 0 if all(r["reproduced"] for r in replays) else 1
    return 0 if summary["violations"] == 0 and not summary["errors"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI dispatch
    sys.exit(main())
