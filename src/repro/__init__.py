"""hvc-repro: heterogeneous virtual channels, reproduced in simulation.

A from-scratch Python implementation of the systems behind *"Boosting
Application Performance using Heterogeneous Virtual Channels: Challenges
and Opportunities"* (HotNets 2023): a deterministic network simulator with
trace-driven 5G channels, a message-aware reliable transport with pluggable
congestion control (CUBIC/BBR/Vegas/Vivace + an HVC-aware variant), the
DChannel packet-steering heuristic and its cross-layer extensions, and the
paper's three workloads (bulk transfer, SVC real-time video, web browsing).

Entry points:

* :class:`repro.HvcNetwork` — build a client/server pair over channels.
* :mod:`repro.net.hvc` — ready-made channel profiles (eMBB, URLLC, MLO…).
* :mod:`repro.steering` — steering policies by name.
* :mod:`repro.experiments` — the paper's figures/tables as functions.
"""

from repro._version import __version__
from repro.core.api import HvcNetwork
from repro.core.metrics import Cdf, percentile, throughput_series
from repro.core.results import ExperimentResult, Table
from repro.obs import Observability
from repro import units

__all__ = [
    "__version__",
    "HvcNetwork",
    "Cdf",
    "percentile",
    "throughput_series",
    "ExperimentResult",
    "Table",
    "Observability",
    "units",
]
