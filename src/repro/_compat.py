"""Version compatibility shims.

``hot_dataclass`` is :func:`dataclasses.dataclass` with ``slots=True``
on Python 3.10+ and a plain dataclass on 3.9, where the keyword does not
exist. Use it for per-packet / per-ACK record types on the hot path:
slotted instances skip the per-object ``__dict__`` (smaller, faster
attribute access) without giving up dataclass ergonomics.

Code must not rely on slotted behaviour for correctness — on 3.9 the
classes silently fall back to dict-backed instances.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

HAS_DATACLASS_SLOTS = sys.version_info >= (3, 10)

if HAS_DATACLASS_SLOTS:

    def hot_dataclass(cls=None, /, **kwargs):
        """``@dataclass(slots=True)`` where supported, plain otherwise."""
        kwargs.setdefault("slots", True)
        if cls is None:
            return dataclass(**kwargs)
        return dataclass(**kwargs)(cls)

else:  # pragma: no cover - exercised only on Python < 3.10

    def hot_dataclass(cls=None, /, **kwargs):
        """``@dataclass(slots=True)`` where supported, plain otherwise."""
        kwargs.pop("slots", None)
        if cls is None:
            return dataclass(**kwargs)
        return dataclass(**kwargs)(cls)
