"""Unit helpers and physical constants.

Internally the library uses SI base units throughout:

* time in **seconds** (float),
* data sizes in **bytes** (int),
* rates in **bits per second** (float).

These helpers exist so that scenario code reads naturally
(``bandwidth=mbps(60)``, ``delay=ms(5)``) and so unit mistakes are
grep-able instead of silent.
"""

from __future__ import annotations

#: Conventional maximum transmission unit used for segmentation (bytes).
DEFAULT_MTU = 1500

#: Bytes of header overhead assumed per packet (IP + transport, rounded).
DEFAULT_HEADER_BYTES = 40

#: Default maximum segment size: MTU minus header overhead (bytes).
DEFAULT_MSS = DEFAULT_MTU - DEFAULT_HEADER_BYTES

BITS_PER_BYTE = 8


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1e-6


def seconds(value: float) -> float:
    """Identity, for symmetry in scenario code."""
    return float(value)


def to_ms(value_seconds: float) -> float:
    """Seconds to milliseconds."""
    return value_seconds * 1e3


def kbps(value: float) -> float:
    """Kilobits/s to bits/s."""
    return value * 1e3


def mbps(value: float) -> float:
    """Megabits/s to bits/s."""
    return value * 1e6


def gbps(value: float) -> float:
    """Gigabits/s to bits/s."""
    return value * 1e9


def to_mbps(bits_per_second: float) -> float:
    """Bits/s to megabits/s."""
    return bits_per_second / 1e6


def kib(value: float) -> int:
    """Kibibytes to bytes."""
    return int(value * 1024)


def kb(value: float) -> int:
    """Kilobytes (10^3) to bytes."""
    return int(value * 1000)


def mib(value: float) -> int:
    """Mebibytes to bytes."""
    return int(value * 1024 * 1024)


def bytes_to_bits(num_bytes: float) -> float:
    """Bytes to bits."""
    return num_bytes * BITS_PER_BYTE


def bits_to_bytes(num_bits: float) -> float:
    """Bits to bytes."""
    return num_bits / BITS_PER_BYTE


def transmission_time(num_bytes: float, rate_bps: float) -> float:
    """Serialization delay of ``num_bytes`` at ``rate_bps`` (seconds).

    Raises :class:`ValueError` for non-positive rates; an unserviceable link
    should be modelled explicitly (e.g. link down), never as rate 0.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return bytes_to_bits(num_bytes) / rate_bps
