"""HAR-style export of page load results.

The paper measures PLT via the ``onLoad`` event as defined by the HAR 1.2
spec [Odvarko]. This module renders a :class:`PageLoadResult` into the
same structure (the subset a simulator can know), so loads can be inspected
with standard HAR tooling or diffed across steering policies.

Times are in milliseconds relative to the load start, as HAR prescribes.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.apps.web.browser import PageLoadResult
from repro.units import to_ms


def to_har(result: PageLoadResult, title: str = "") -> Dict:
    """Render one completed page load as a HAR-shaped dict."""
    if not result.complete:
        raise ValueError(f"page {result.page.name!r} did not finish; no HAR")
    page_id = result.page.name
    entries = []
    for obj in result.page.objects:
        finished = result.object_finish_times[obj.object_id]
        entries.append(
            {
                "pageref": page_id,
                "startedDateTime": to_ms(result.started_at),
                "time": to_ms(finished - result.started_at),
                "request": {
                    "method": "GET",
                    "url": f"https://{page_id}/obj/{obj.object_id}",
                },
                "response": {
                    "status": 200,
                    "bodySize": obj.size_bytes,
                },
                "_dependsOn": list(obj.depends_on),
            }
        )
    return {
        "log": {
            "version": "1.2",
            "creator": {"name": "hvc-repro", "version": "1.0"},
            "pages": [
                {
                    "id": page_id,
                    "title": title or page_id,
                    "pageTimings": {"onLoad": to_ms(result.plt)},
                }
            ],
            "entries": entries,
        }
    }


def to_har_json(result: PageLoadResult, title: str = "") -> str:
    """The HAR as a JSON string (pretty-printed)."""
    return json.dumps(to_har(result, title=title), indent=2, sort_keys=True)
