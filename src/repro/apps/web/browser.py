"""HTTP/2-style page loader and server.

One multiplexed reliable connection per page load (HTTP/2 over TCP, like
the paper's Chromium + Mahimahi-replay setup): the browser requests the
root document, discovers subresources as their dependencies complete, and
fires ``onLoad`` — the PLT instant — when the last object finishes.

Requests and responses are transport *messages* sharing the object id, so
the whole exchange is visible to cross-layer steering; the flow carries
``flow_priority`` 0 (interactive) by default, which is what Table 1's
flow-priority policy distinguishes from the background flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.web.page import WebPage
from repro.core.api import HvcNetwork
from repro.transport.connection import Connection, MessageReceipt
from repro.transport import next_flow_id

#: An HTTP/2 HEADERS frame plus cookies — what a GET costs on the wire.
REQUEST_BYTES = 420
#: Response messages get ids offset so they never collide with requests.
RESPONSE_ID_OFFSET = 100_000
#: TLS setup exchange, modelled as one round trip (TLS 1.3): ClientHello
#: up, ServerHello + certificate chain down.
TLS_REQUEST_ID = 90_000
TLS_CLIENT_HELLO_BYTES = 350
TLS_SERVER_REPLY_BYTES = 4200
#: DNS query/response sizes (datagram exchange before the connection).
DNS_QUERY_BYTES = 60
DNS_REPLY_BYTES = 140
#: Resolver processing time.
DNS_SERVER_DELAY = 0.020
#: Server-side time to produce a response (app logic, disk, upstream).
DEFAULT_THINK_TIME = 0.030
#: Browser-side parse/execute time before an object's dependents are
#: discovered and requested (Chromium's main-thread work).
DEFAULT_PROCESSING_DELAY = 0.020


@dataclass
class PageLoadResult:
    """Outcome of one page load."""

    page: WebPage
    started_at: float
    finished_at: Optional[float] = None
    object_finish_times: Dict[int, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.finished_at is not None

    @property
    def plt(self) -> float:
        """Page load time (onLoad) in seconds."""
        if self.finished_at is None:
            raise RuntimeError(f"page {self.page.name!r} did not finish loading")
        return self.finished_at - self.started_at


class WebServer:
    """Serves one page's objects over one connection."""

    def __init__(
        self,
        connection: Connection,
        page: WebPage,
        think_time: float = DEFAULT_THINK_TIME,
    ) -> None:
        self.connection = connection
        self.page = page
        self.think_time = think_time
        connection.on_message = self._on_request

    def _on_request(self, receipt: MessageReceipt) -> None:
        object_id = receipt.message_id
        if object_id == TLS_REQUEST_ID:
            # TLS handshake reply carries no server think time.
            self.connection.send_message(
                TLS_SERVER_REPLY_BYTES,
                message_id=RESPONSE_ID_OFFSET + TLS_REQUEST_ID,
                priority=receipt.priority,
            )
            return
        if self.think_time > 0:
            self.connection.sim.schedule(self.think_time, self._respond, object_id, receipt.priority)
        else:
            self._respond(object_id, receipt.priority)

    def _respond(self, object_id: int, priority) -> None:
        self.connection.send_message(
            self.page.size_of(object_id),
            message_id=RESPONSE_ID_OFFSET + object_id,
            priority=priority,
        )


class Browser:
    """Loads one page over one connection, honoring the dependency DAG."""

    def __init__(
        self,
        connection: Connection,
        page: WebPage,
        on_load=None,
        processing_delay: float = DEFAULT_PROCESSING_DELAY,
        tls: bool = True,
    ) -> None:
        page.validate()
        self.connection = connection
        self.page = page
        self.on_load = on_load
        self.processing_delay = processing_delay
        self.result = PageLoadResult(page=page, started_at=connection.sim.now)
        self._requested: set = set()
        self._completed: set = set()
        self._processed: set = set()
        connection.on_message = self._on_response
        if tls:
            # ClientHello; the root request goes out once the ServerHello +
            # certificates land (one extra round trip, TLS 1.3).
            self.connection.send_message(
                TLS_CLIENT_HELLO_BYTES, message_id=TLS_REQUEST_ID, priority=0
            )
        else:
            self._request(0)

    def _request(self, object_id: int) -> None:
        self._requested.add(object_id)
        self.connection.send_message(REQUEST_BYTES, message_id=object_id, priority=0)

    def _on_response(self, receipt: MessageReceipt) -> None:
        object_id = receipt.message_id - RESPONSE_ID_OFFSET
        if object_id == TLS_REQUEST_ID:
            self._request(0)
            return
        if object_id < 0 or object_id in self._completed:
            return
        self._completed.add(object_id)
        self.result.object_finish_times[object_id] = receipt.completed_at
        if len(self._completed) == self.page.object_count:
            self.result.finished_at = receipt.completed_at
            if self.on_load is not None:
                self.on_load(self.result)
            return
        # Dependents are discovered only after the browser parses/executes
        # the object (main-thread work).
        if self.processing_delay > 0:
            self.connection.sim.schedule(
                self.processing_delay, self._mark_processed, object_id
            )
        else:
            self._mark_processed(object_id)

    def _mark_processed(self, object_id: int) -> None:
        self._processed.add(object_id)
        for obj in self.page.objects:
            if obj.object_id in self._requested:
                continue
            if all(dep in self._processed for dep in obj.depends_on):
                self._request(obj.object_id)


def load_page(
    net: HvcNetwork,
    page: WebPage,
    cc: str = "cubic",
    flow_priority: int = 0,
    timeout: float = 60.0,
    tls: bool = True,
    dns: bool = True,
) -> PageLoadResult:
    """Load ``page`` over ``net`` and return the result (runs the sim).

    The paper's methodology clears browser and DNS caches before each load,
    so by default the load pays the full cold-start sequence: a DNS
    exchange, a TCP-style handshake, and a TLS round trip before the first
    request.
    """
    from repro.transport.datagram import DatagramSocket

    started_at = net.now
    if dns:
        _dns_lookup(net, timeout=timeout)
    flow_id = next_flow_id()
    client_conn = Connection(
        net.sim, net.client, flow_id, cc=cc, flow_priority=flow_priority, handshake=True
    )
    server_conn = Connection(net.sim, net.server, flow_id, cc=cc, flow_priority=flow_priority)
    WebServer(server_conn, page)
    browser = Browser(client_conn, page, tls=tls)
    browser.result.started_at = started_at  # PLT includes DNS time
    deadline = started_at + timeout
    while not browser.result.complete and net.now < deadline and net.sim.pending_events:
        net.run(until=min(net.now + 0.5, deadline))
    client_conn.close()
    server_conn.close()
    return browser.result


def _dns_lookup(net: HvcNetwork, timeout: float) -> None:
    """One UDP query/response exchange plus resolver think time."""
    from repro.transport import next_flow_id as _next_flow_id
    from repro.transport.datagram import DatagramSocket

    flow_id = _next_flow_id()
    done = []
    client = DatagramSocket(
        net.sim, net.client, flow_id, flow_priority=0,
        on_message=lambda m: done.append(m),
    )
    server = DatagramSocket(net.sim, net.server, flow_id, flow_priority=0)

    def on_query(message) -> None:
        net.sim.schedule(
            DNS_SERVER_DELAY,
            lambda: server.send_message(DNS_REPLY_BYTES, message_id=2),
        )

    server.on_message = on_query
    client.send_message(DNS_QUERY_BYTES, message_id=1)
    deadline = net.now + min(timeout, 5.0)
    while not done and net.now < deadline and net.sim.pending_events:
        net.run(until=min(net.now + 0.05, deadline))
    client.close()
    server.close()
