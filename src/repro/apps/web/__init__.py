"""Web page loading over HVCs (the Table 1 application).

* :mod:`repro.apps.web.page` — page model: objects with sizes and a
  dependency DAG (HTML → CSS/JS → images/XHR).
* :mod:`repro.apps.web.corpus` — synthetic Hispar-like page corpus.
* :mod:`repro.apps.web.browser` — HTTP/2-style loader (one multiplexed
  connection, dependency-driven requests) + server; computes PLT (onLoad).
* :mod:`repro.apps.web.background` — the low-value JSON upload/download
  loops that compete for URLLC in Table 1.
"""

from repro.apps.web.page import WebObject, WebPage
from repro.apps.web.corpus import generate_corpus, generate_page
from repro.apps.web.browser import Browser, PageLoadResult, WebServer, load_page
from repro.apps.web.background import BackgroundFlows

__all__ = [
    "WebObject",
    "WebPage",
    "generate_corpus",
    "generate_page",
    "Browser",
    "WebServer",
    "PageLoadResult",
    "load_page",
    "BackgroundFlows",
]
