"""Web page model: object sizes + a fetch-dependency DAG.

Object 0 is the root HTML document; every other object becomes fetchable
only after all of its dependencies have finished downloading (how a browser
discovers subresources). Page load time is when the last object lands —
the ``onLoad`` event the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ScenarioError


@dataclass
class WebObject:
    """One fetchable resource on a page."""

    object_id: int
    size_bytes: int
    depends_on: List[int] = field(default_factory=list)


@dataclass
class WebPage:
    """A named page: a list of objects forming a DAG rooted at object 0."""

    name: str
    objects: List[WebObject]

    def validate(self) -> None:
        if not self.objects:
            raise ScenarioError(f"page {self.name!r} has no objects")
        ids = [obj.object_id for obj in self.objects]
        if ids != list(range(len(self.objects))):
            raise ScenarioError(
                f"page {self.name!r}: object ids must be 0..n-1 in order"
            )
        if self.objects[0].depends_on:
            raise ScenarioError(f"page {self.name!r}: root object cannot have deps")
        for obj in self.objects:
            if obj.size_bytes <= 0:
                raise ScenarioError(
                    f"page {self.name!r}: object {obj.object_id} has size "
                    f"{obj.size_bytes}"
                )
            for dep in obj.depends_on:
                if dep >= obj.object_id or dep < 0:
                    raise ScenarioError(
                        f"page {self.name!r}: object {obj.object_id} depends on "
                        f"{dep}; dependencies must point to earlier objects"
                    )

    @property
    def total_bytes(self) -> int:
        return sum(obj.size_bytes for obj in self.objects)

    @property
    def object_count(self) -> int:
        return len(self.objects)

    def depth(self) -> int:
        """Longest dependency chain (levels of discovery)."""
        depths: Dict[int, int] = {}
        for obj in self.objects:
            if not obj.depends_on:
                depths[obj.object_id] = 1
            else:
                depths[obj.object_id] = 1 + max(depths[d] for d in obj.depends_on)
        return max(depths.values())

    def size_of(self, object_id: int) -> int:
        try:
            return self.objects[object_id].size_bytes
        except IndexError:
            raise ScenarioError(
                f"page {self.name!r} has no object {object_id}"
            ) from None
