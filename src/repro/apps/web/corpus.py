"""Synthetic page corpus standing in for the paper's Hispar sample.

The paper replays 30 landing and internal pages from the Hispar corpus.
We generate pages whose aggregate statistics follow published web
measurements (HTTP Archive / the Hispar paper's own characterization):

* tens of objects per page (log-normal, medians ~25 landing / ~15 internal);
* heavy-tailed object sizes (log-normal, median ~10 kB, occasional 100s kB);
* a discovery DAG 2–4 levels deep (HTML → CSS/JS → fonts/images/XHR),
  which is what makes page loads latency-bound rather than bandwidth-bound.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import random
from typing import List

from repro.apps.web.page import WebObject, WebPage
from repro.errors import ScenarioError
from repro.units import kb

#: Root HTML size distribution (log-normal around ~52 kB).
HTML_MEDIAN_BYTES = 52_000
HTML_SIGMA = 0.5
#: Subresource size distribution.
OBJECT_MEDIAN_BYTES = 14_000
OBJECT_SIGMA = 1.15
OBJECT_MAX_BYTES = 800_000
#: Object-count distribution (HTTP Archive medians: ~70 requests/page;
#: we model the same-origin subset a single connection serves).
LANDING_MEDIAN_OBJECTS = 42
INTERNAL_MEDIAN_OBJECTS = 26
COUNT_SIGMA = 0.45
MAX_OBJECTS = 150


def _lognormal_int(rng: random.Random, median: float, sigma: float, lo: int, hi: int) -> int:
    value = int(round(rng.lognormvariate(0.0, sigma) * median))
    return max(lo, min(hi, value))


def generate_page(name: str, seed: int, landing: bool = True) -> WebPage:
    """Generate one synthetic page, deterministically from ``seed``."""
    rng = random.Random(f"page:{seed}")
    median_objects = LANDING_MEDIAN_OBJECTS if landing else INTERNAL_MEDIAN_OBJECTS
    count = _lognormal_int(rng, median_objects, COUNT_SIGMA, 4, MAX_OBJECTS)

    objects: List[WebObject] = [
        WebObject(0, _lognormal_int(rng, HTML_MEDIAN_BYTES, HTML_SIGMA, 5_000, 300_000))
    ]
    # First discovery wave: CSS/JS referenced by the HTML (~25% of objects).
    wave1_count = max(1, int(count * 0.25))
    for i in range(1, wave1_count + 1):
        size = _lognormal_int(rng, OBJECT_MEDIAN_BYTES, OBJECT_SIGMA, 400, OBJECT_MAX_BYTES)
        objects.append(WebObject(i, size, depends_on=[0]))
    # Later waves: resources discovered by scripts/styles; a healthy share
    # chains onto recently discovered objects, so landing pages develop the
    # 5-8-level critical paths real page loads show.
    while len(objects) < count:
        object_id = len(objects)
        size = _lognormal_int(rng, OBJECT_MEDIAN_BYTES, OBJECT_SIGMA, 400, OBJECT_MAX_BYTES)
        roll = rng.random()
        if roll < 0.6 or object_id <= wave1_count + 1:
            parent = rng.randint(1, wave1_count)
        elif roll < 0.85:
            parent = rng.randint(wave1_count + 1, object_id - 1)
        else:
            # Chain onto one of the most recent discoveries (deep path).
            parent = rng.randint(max(1, object_id - 5), object_id - 1)
        objects.append(WebObject(object_id, size, depends_on=[parent]))

    page = WebPage(name=name, objects=objects)
    page.validate()
    return page


def generate_corpus(count: int = 30, seed: int = 0) -> List[WebPage]:
    """Generate the experiment corpus: half landing, half internal pages."""
    if count <= 0:
        raise ScenarioError(f"corpus count must be positive, got {count}")
    pages = []
    for i in range(count):
        landing = i % 2 == 0
        kind = "landing" if landing else "internal"
        pages.append(
            generate_page(f"page-{i:02d}-{kind}", seed=seed * 1000 + i, landing=landing)
        )
    return pages
