"""HTTP/1.1-style page loading: several parallel connections, one request
in flight per connection.

The paper's experiments use HTTP/2 over a single connection (see
:mod:`repro.apps.web.browser`); this loader models the older delivery mode
browsers still fall back to — up to ``max_connections`` persistent
connections per origin, each serving one object at a time. Comparing the
two over HVCs shows how transport structure changes what steering can do:
H1's many small flows give flow-level policies more room, while H2's single
multiplexed flow leans on per-packet steering.

Note: each H1 connection pays a transport handshake but (charitably) no
TLS round trip or DNS lookup; H2 still wins the benchmark comparison even
with that head start.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.apps.web.browser import (
    DEFAULT_PROCESSING_DELAY,
    DEFAULT_THINK_TIME,
    PageLoadResult,
    REQUEST_BYTES,
    RESPONSE_ID_OFFSET,
    WebServer,
)
from repro.apps.web.page import WebPage
from repro.core.api import HvcNetwork
from repro.transport import next_flow_id
from repro.transport.connection import Connection, MessageReceipt

DEFAULT_MAX_CONNECTIONS = 6


class _H1Connection:
    """One persistent connection serving one object at a time."""

    def __init__(self, loader: "H1Loader", net: HvcNetwork, cc: str, flow_priority: int) -> None:
        self.loader = loader
        flow_id = next_flow_id()
        self.client = Connection(
            net.sim, net.client, flow_id, cc=cc, flow_priority=flow_priority,
            handshake=True, on_message=self._on_response,
        )
        server_conn = Connection(
            net.sim, net.server, flow_id, cc=cc, flow_priority=flow_priority
        )
        WebServer(server_conn, loader.page, think_time=loader.think_time)
        self.server = server_conn
        self.busy = False

    def fetch(self, object_id: int) -> None:
        self.busy = True
        self.client.send_message(REQUEST_BYTES, message_id=object_id, priority=0)

    def _on_response(self, receipt: MessageReceipt) -> None:
        object_id = receipt.message_id - RESPONSE_ID_OFFSET
        self.busy = False
        self.loader._object_done(object_id, receipt.completed_at)

    def close(self) -> None:
        self.client.close()
        self.server.close()


class H1Loader:
    """Dependency-driven page loading over parallel H1 connections."""

    def __init__(
        self,
        net: HvcNetwork,
        page: WebPage,
        cc: str = "cubic",
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        flow_priority: int = 0,
        think_time: float = DEFAULT_THINK_TIME,
        processing_delay: float = DEFAULT_PROCESSING_DELAY,
    ) -> None:
        page.validate()
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        self.net = net
        self.page = page
        self.think_time = think_time
        self.processing_delay = processing_delay
        self.result = PageLoadResult(page=page, started_at=net.now)
        self._connections: List[_H1Connection] = [
            _H1Connection(self, net, cc, flow_priority) for _ in range(max_connections)
        ]
        self._ready: Deque[int] = deque()
        self._requested: set = set()
        self._processed: set = set()
        self._completed: set = set()
        self._enqueue_ready()
        self._dispatch()

    # ------------------------------------------------------------------
    def _enqueue_ready(self) -> None:
        for obj in self.page.objects:
            if obj.object_id in self._requested or obj.object_id in self._ready:
                continue
            if all(dep in self._processed for dep in obj.depends_on):
                self._ready.append(obj.object_id)

    def _dispatch(self) -> None:
        for connection in self._connections:
            if not self._ready:
                return
            if not connection.busy:
                object_id = self._ready.popleft()
                self._requested.add(object_id)
                connection.fetch(object_id)

    def _object_done(self, object_id: int, at: float) -> None:
        if object_id in self._completed:
            return
        self._completed.add(object_id)
        self.result.object_finish_times[object_id] = at
        if len(self._completed) == self.page.object_count:
            self.result.finished_at = at
            return
        self.net.sim.schedule(self.processing_delay, self._mark_processed, object_id)
        self._dispatch()

    def _mark_processed(self, object_id: int) -> None:
        self._processed.add(object_id)
        self._enqueue_ready()
        self._dispatch()

    def close(self) -> None:
        for connection in self._connections:
            connection.close()


def load_page_h1(
    net: HvcNetwork,
    page: WebPage,
    cc: str = "cubic",
    max_connections: int = DEFAULT_MAX_CONNECTIONS,
    flow_priority: int = 0,
    timeout: float = 60.0,
) -> PageLoadResult:
    """Load ``page`` over parallel H1 connections (runs the sim)."""
    loader = H1Loader(
        net, page, cc=cc, max_connections=max_connections, flow_priority=flow_priority
    )
    deadline = net.now + timeout
    while not loader.result.complete and net.now < deadline and net.sim.pending_events:
        net.run(until=min(net.now + 0.5, deadline))
    loader.close()
    return loader.result
