"""Background flows: the JSON upload/download loops of Table 1.

Two flows that "do not contribute to PLT": one continuously uploads 5 kB
JSON objects (mobile apps shipping logs), one continuously downloads 10 kB
objects (prefetch). Each loop issues its next transfer the moment the
previous one completes — the paper's cURL-in-a-loop clients.

Flows are tagged ``flow_priority=2`` (background). Whether steering *uses*
that tag is the Table 1 comparison: plain DChannel lets their packets — and
their ACK streams — squat on URLLC; the flow-priority filter bars them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.api import HvcNetwork
from repro.transport import next_flow_id
from repro.transport.connection import Connection, MessageReceipt
from repro.units import kb

UPLOAD_BYTES = kb(5)
DOWNLOAD_BYTES = kb(10)
#: Tiny request that triggers one download.
REQUEST_BYTES = 200
BACKGROUND_PRIORITY = 2


@dataclass
class BackgroundStats:
    uploads_completed: int = 0
    downloads_completed: int = 0


class BackgroundFlows:
    """The two competing background flows."""

    def __init__(self, net: HvcNetwork, cc: str = "cubic") -> None:
        self.net = net
        self.stats = BackgroundStats()
        self._stopped = False

        up_id = next_flow_id()
        self._up_client = Connection(
            net.sim, net.client, up_id, cc=cc, flow_priority=BACKGROUND_PRIORITY
        )
        self._up_server = Connection(
            net.sim, net.server, up_id, cc=cc, flow_priority=BACKGROUND_PRIORITY,
            on_message=self._on_upload_received,
        )

        down_id = next_flow_id()
        self._down_client = Connection(
            net.sim, net.client, down_id, cc=cc, flow_priority=BACKGROUND_PRIORITY,
            on_message=self._on_download_received,
        )
        self._down_server = Connection(
            net.sim, net.server, down_id, cc=cc, flow_priority=BACKGROUND_PRIORITY,
            on_message=self._on_download_request,
        )

        self._next_upload_id = 0
        self._next_download_id = 0
        self._send_upload()
        self._request_download()

    # -- upload loop ---------------------------------------------------
    def _send_upload(self) -> None:
        if self._stopped:
            return
        self._up_client.send_message(UPLOAD_BYTES, message_id=self._next_upload_id)
        self._next_upload_id += 1

    def _on_upload_received(self, receipt: MessageReceipt) -> None:
        self.stats.uploads_completed += 1
        self._send_upload()

    # -- download loop ---------------------------------------------------
    def _request_download(self) -> None:
        if self._stopped:
            return
        self._down_client.send_message(REQUEST_BYTES, message_id=self._next_download_id)
        self._next_download_id += 1

    def _on_download_request(self, receipt: MessageReceipt) -> None:
        self._down_server.send_message(
            DOWNLOAD_BYTES, message_id=100_000 + receipt.message_id
        )

    def _on_download_received(self, receipt: MessageReceipt) -> None:
        self.stats.downloads_completed += 1
        self._request_download()

    def stop(self) -> None:
        """Cease issuing new transfers (in-flight ones complete normally)."""
        self._stopped = True

    def close(self) -> None:
        self.stop()
        for conn in (
            self._up_client,
            self._up_server,
            self._down_client,
            self._down_server,
        ):
            conn.close()
