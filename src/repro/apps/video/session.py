"""End-to-end video session wiring and summary metrics (Fig. 2 harness)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.video.quality import SsimModel
from repro.apps.video.receiver import DecodedFrame, VideoReceiver
from repro.apps.video.sender import VideoSender
from repro.apps.video.svc import SvcEncoderModel
from repro.core.api import HvcNetwork
from repro.core.metrics import Cdf


@dataclass
class VideoSessionResult:
    """Per-frame outcomes plus the distributions Fig. 2 plots."""

    frames: List[DecodedFrame]
    ssim_values: List[float]
    frames_sent: int

    @property
    def frames_decoded(self) -> int:
        return sum(1 for f in self.frames if f.decoded)

    @property
    def frames_missing(self) -> int:
        """Frames that never produced output (base layer lost/too late)."""
        return self.frames_sent - len(self.frames)

    def latency_cdf(self) -> Cdf:
        """Latency distribution of decoded frames (seconds)."""
        return Cdf([f.latency for f in self.frames if f.decoded])

    def ssim_cdf(self) -> Cdf:
        return Cdf(self.ssim_values)


class VideoSession:
    """A sender/receiver pair over an :class:`HvcNetwork`."""

    def __init__(
        self,
        net: HvcNetwork,
        encoder: Optional[SvcEncoderModel] = None,
        ssim_model: Optional[SsimModel] = None,
        duration: Optional[float] = None,
    ) -> None:
        self.net = net
        self.encoder = encoder if encoder is not None else SvcEncoderModel()
        self.ssim_model = ssim_model if ssim_model is not None else SsimModel()
        pair = net.open_datagram()
        self.sender = VideoSender(net.sim, pair.client, self.encoder, duration=duration)
        self.receiver = VideoReceiver(net.sim, pair.server, self.encoder)

    def result(self) -> VideoSessionResult:
        frames = sorted(self.receiver.frames, key=lambda f: f.frame_index)
        ssim_values = [
            self.ssim_model.ssim(f.frame_index, f.decoded_layer) for f in frames
        ]
        return VideoSessionResult(
            frames=frames,
            ssim_values=ssim_values,
            frames_sent=self.sender.frames_sent,
        )


def run_video_session(
    net: HvcNetwork,
    duration: float = 60.0,
    encoder: Optional[SvcEncoderModel] = None,
    ssim_model: Optional[SsimModel] = None,
    drain: float = 2.0,
) -> VideoSessionResult:
    """Run one video session for ``duration`` seconds and summarize it.

    ``drain`` extra seconds let in-flight frames complete decoding after
    the sender stops.
    """
    session = VideoSession(net, encoder=encoder, ssim_model=ssim_model, duration=duration)
    net.run(until=duration + drain)
    return session.result()
