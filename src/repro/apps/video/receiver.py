"""Video receiver: the paper's decode-wait rule + SVC dependency rules.

Decode timing (§3.3): on receiving layer 0 of frame *i*, wait 60 ms **or**
until layer 0 of frames *i+1* and *i+2* have arrived, whichever is first,
then decode frame *i* at the highest usable layer. The wait trades latency
for quality — decode immediately and you only ever get layer 0; wait
forever and frames are stale.

Layer usability: layer *l* of frame *i* requires (a) layers 0..l of frame
*i* fully received by decode time, and (b) layer *l* of frame *i−1* decoded
(temporal prediction), except at keyframes, which depend on nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.apps.video.sender import (
    MESSAGE_ID_STRIDE,
    frame_of_message,
    layer_of_message,
)
from repro.apps.video.svc import SvcEncoderModel
from repro.sim.kernel import Simulator
from repro.transport.datagram import DatagramMessage, DatagramSocket
from repro.units import ms

DEFAULT_DECODE_WAIT = ms(60)
#: How many subsequent layer-0 arrivals cut the wait short.
EARLY_DECODE_LOOKAHEAD = 2


@dataclass
class DecodedFrame:
    """One frame's decode outcome."""

    frame_index: int
    sent_at: float
    decoded_at: float
    decoded_layer: int  # -1 if the frame could not be decoded at all

    @property
    def latency(self) -> float:
        return self.decoded_at - self.sent_at

    @property
    def decoded(self) -> bool:
        return self.decoded_layer >= 0


class VideoReceiver:
    """Reassembles layers, applies the decode-wait rule, records outcomes."""

    def __init__(
        self,
        sim: Simulator,
        socket: DatagramSocket,
        encoder: SvcEncoderModel,
        decode_wait: float = DEFAULT_DECODE_WAIT,
    ) -> None:
        self.sim = sim
        self.socket = socket
        self.encoder = encoder
        self.decode_wait = decode_wait
        self.frames: List[DecodedFrame] = []
        self._layers_complete: Dict[int, Set[int]] = {}
        self._frame_sent_at: Dict[int, float] = {}
        self._decode_events: Dict[int, object] = {}
        self._decoded_layer: Dict[int, int] = {}
        self._decoded_frames: Set[int] = set()
        socket.on_message = self._on_message

    # ------------------------------------------------------------------
    def _on_message(self, message: DatagramMessage) -> None:
        frame = frame_of_message(message.message_id)
        layer = layer_of_message(message.message_id)
        self._layers_complete.setdefault(frame, set()).add(layer)
        if message.sent_at is not None:
            known = self._frame_sent_at.get(frame)
            if known is None or message.sent_at < known:
                self._frame_sent_at[frame] = message.sent_at
        if layer == 0:
            self._on_base_layer(frame)

    def _on_base_layer(self, frame: int) -> None:
        if frame not in self._decoded_frames and frame not in self._decode_events:
            self._decode_events[frame] = self.sim.schedule(
                self.decode_wait, self._decode, frame
            )
        # A base-layer arrival may release earlier frames still waiting.
        for earlier in range(max(0, frame - EARLY_DECODE_LOOKAHEAD), frame):
            if earlier in self._decode_events and self._lookahead_ready(earlier):
                self.sim.cancel(self._decode_events[earlier])
                del self._decode_events[earlier]
                self._decode(earlier)

    def _lookahead_ready(self, frame: int) -> bool:
        return all(
            0 in self._layers_complete.get(frame + offset, set())
            for offset in range(1, EARLY_DECODE_LOOKAHEAD + 1)
        )

    # ------------------------------------------------------------------
    def _decode(self, frame: int) -> None:
        self._decode_events.pop(frame, None)
        if frame in self._decoded_frames:
            return
        self._decoded_frames.add(frame)
        received = self._layers_complete.get(frame, set())
        usable = self._usable_layer(frame, received)
        self._decoded_layer[frame] = usable
        sent_at = self._frame_sent_at.get(frame, self.sim.now)
        self.frames.append(
            DecodedFrame(
                frame_index=frame,
                sent_at=sent_at,
                decoded_at=self.sim.now,
                decoded_layer=usable,
            )
        )
        # Reassembly state for this frame is no longer needed.
        self.socket.discard_before((frame - 4) * MESSAGE_ID_STRIDE)

    def _usable_layer(self, frame: int, received: Set[int]) -> int:
        # Contiguity: layers 0..l must all be present.
        contiguous = -1
        for layer in range(len(self.encoder.layers)):
            if layer in received:
                contiguous = layer
            else:
                break
        if contiguous < 0:
            return -1
        if self.encoder.is_keyframe(frame):
            return contiguous
        previous = self._decoded_layer.get(frame - 1)
        if previous is None:
            # Previous frame unseen/undecoded: only the base layer is safe
            # (it is independently decodable in our SVC configuration).
            return 0 if contiguous >= 0 else -1
        return min(contiguous, max(previous, 0))

    # ------------------------------------------------------------------
    @property
    def decoded_frames(self) -> List[DecodedFrame]:
        """Frames that produced output, in decode order."""
        return [f for f in self.frames if f.decoded]

    @property
    def dropped_frames(self) -> int:
        """Frames decoded with no usable layer."""
        return sum(1 for f in self.frames if not f.decoded)
