"""Video sender: ships each frame's layers as tagged datagram messages.

Every ``1/fps`` seconds the sender emits one message per SVC layer. The
message id encodes (frame, layer) and the *message priority equals the
layer index* — exactly the custom application header of §3.3 that the
priority-aware steering policy reads (layer 0 → low-latency channel).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.video.svc import SvcEncoderModel
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.transport.datagram import DatagramSocket

#: message_id = frame_index * STRIDE + layer_index.
MESSAGE_ID_STRIDE = 16


def message_id_for(frame_index: int, layer_index: int) -> int:
    return frame_index * MESSAGE_ID_STRIDE + layer_index


def frame_of_message(message_id: int) -> int:
    return message_id // MESSAGE_ID_STRIDE


def layer_of_message(message_id: int) -> int:
    return message_id % MESSAGE_ID_STRIDE


class VideoSender:
    """Paces an SVC stream into a datagram socket."""

    def __init__(
        self,
        sim: Simulator,
        socket: DatagramSocket,
        encoder: SvcEncoderModel,
        duration: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.socket = socket
        self.encoder = encoder
        self.duration = duration
        self.frames_sent = 0
        self.frame_send_times = {}
        self._timer = PeriodicTimer(
            sim, encoder.frame_interval, self._send_frame, start_delay=0.0
        )

    def _send_frame(self) -> None:
        if self.duration is not None and self.sim.now >= self.duration:
            self._timer.stop()
            return
        frame = self.frames_sent
        self.frame_send_times[frame] = self.sim.now
        sizes = self.encoder.frame_layer_sizes(frame)
        for layer_index, size in enumerate(sizes):
            self.socket.send_message(
                size,
                message_id=message_id_for(frame, layer_index),
                priority=layer_index,
            )
        self.frames_sent += 1

    def stop(self) -> None:
        self._timer.stop()
