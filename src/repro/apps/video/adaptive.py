"""Sender-side layer adaptation driven by receiver feedback.

The paper's video setup (adapted from Octopus [Chen et al., SEC '23]) keeps
the encoder ladder fixed and lets *steering* decide which layers survive
network deterioration. The orthogonal lever is sender adaptation: drop the
top SVC layers at the source when the receiver reports lateness, and
restore them when things recover.

This module implements that loop so the two approaches can be compared
(and combined) in the adaptation example/tests:

* the receiver sends a tiny feedback datagram every ``feedback_interval``
  with the fraction of recently decoded frames that arrived "on time";
* the sender drops its top active layer when on-time dips below
  ``drop_threshold`` and restores one layer after ``restore_after`` seconds
  of clean reports.

Feedback rides the same channel set as the media (tagged priority 0 — it
is tiny and latency-critical, exactly what URLLC is for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.video.receiver import VideoReceiver
from repro.apps.video.sender import VideoSender, message_id_for
from repro.apps.video.svc import SvcEncoderModel
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer
from repro.transport.datagram import DatagramSocket
from repro.units import ms

FEEDBACK_INTERVAL = 0.5
#: Frames decoded within this bound count as on time.
ON_TIME_BOUND = ms(120)
DROP_THRESHOLD = 0.85
RESTORE_AFTER = 3.0
#: Feedback messages use ids far above any frame's.
FEEDBACK_ID_BASE = 3_000_000_000


class AdaptiveVideoSender(VideoSender):
    """A VideoSender that drops/restores top layers on receiver feedback."""

    def __init__(
        self,
        sim: Simulator,
        socket: DatagramSocket,
        encoder: SvcEncoderModel,
        duration: Optional[float] = None,
        drop_threshold: float = DROP_THRESHOLD,
        restore_after: float = RESTORE_AFTER,
    ) -> None:
        super().__init__(sim, socket, encoder, duration=duration)
        self.drop_threshold = drop_threshold
        self.restore_after = restore_after
        self.active_layers = len(encoder.layers)
        self._clean_since: Optional[float] = None
        self._last_restore_at: Optional[float] = None
        self._restore_backoff = restore_after
        #: (time, active_layers) decisions, for analysis.
        self.adaptation_log: List[tuple] = [(0.0, self.active_layers)]

    def _send_frame(self) -> None:
        if self.duration is not None and self.sim.now >= self.duration:
            self._timer.stop()
            return
        frame = self.frames_sent
        self.frame_send_times[frame] = self.sim.now
        sizes = self.encoder.frame_layer_sizes(frame)
        for layer_index, size in enumerate(sizes[: self.active_layers]):
            self.socket.send_message(
                size,
                message_id=message_id_for(frame, layer_index),
                priority=layer_index,
            )
        self.frames_sent += 1

    def on_feedback(self, on_time_fraction: float) -> None:
        """Consume one receiver report and adapt the ladder.

        Restores back off exponentially when a probe fails (a drop soon
        after a restore), so the sender does not oscillate against a
        channel that cannot carry the next rung.
        """
        now = self.sim.now
        if on_time_fraction < self.drop_threshold:
            self._clean_since = None
            if self.active_layers > 1:
                self.active_layers -= 1
                self.adaptation_log.append((now, self.active_layers))
                if (
                    self._last_restore_at is not None
                    and now - self._last_restore_at < 2 * self.restore_after
                ):
                    self._restore_backoff = min(self._restore_backoff * 2.0, 60.0)
                else:
                    self._restore_backoff = self.restore_after
            return
        if self.active_layers < len(self.encoder.layers):
            if self._clean_since is None:
                self._clean_since = now
            elif now - self._clean_since >= self._restore_backoff:
                self.active_layers += 1
                self.adaptation_log.append((now, self.active_layers))
                self._clean_since = now
                self._last_restore_at = now


class FeedbackReporter:
    """Receiver-side: periodically report on-time fraction to the sender."""

    def __init__(
        self,
        sim: Simulator,
        receiver: VideoReceiver,
        socket: DatagramSocket,
        interval: float = FEEDBACK_INTERVAL,
        on_time_bound: float = ON_TIME_BOUND,
    ) -> None:
        self.sim = sim
        self.receiver = receiver
        self.socket = socket
        self.on_time_bound = on_time_bound
        self._reported_through = 0
        self._sequence = 0
        self._timer = PeriodicTimer(sim, interval, self._report)

    def _report(self) -> None:
        frames = self.receiver.frames[self._reported_through:]
        self._reported_through = len(self.receiver.frames)
        if not frames:
            return
        on_time = sum(
            1 for f in frames if f.decoded and f.latency <= self.on_time_bound
        )
        fraction = on_time / len(frames)
        # The fraction is quantized into the message size (a real impl
        # would put it in the payload): size = 100 + percent.
        self.socket.send_message(
            100 + int(round(fraction * 100)),
            message_id=FEEDBACK_ID_BASE + self._sequence,
            priority=0,
        )
        self._sequence += 1

    def stop(self) -> None:
        self._timer.stop()


def attach_feedback_channel(
    sender: AdaptiveVideoSender, sender_side_socket: DatagramSocket
) -> None:
    """Wire the sender's socket to decode feedback messages."""

    def on_message(message) -> None:
        if message.message_id >= FEEDBACK_ID_BASE and message.total_bytes:
            fraction = max(0, min(100, message.total_bytes - 100)) / 100.0
            sender.on_feedback(fraction)

    sender_side_socket.on_message = on_message
