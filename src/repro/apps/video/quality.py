"""Frame quality model: decoded SVC layer → SSIM.

We do not decode pixels, so SSIM comes from a calibrated per-layer model.
The anchors approximate VP9-SVC at the paper's per-layer bitrates on
MOT17-like content, chosen so the Fig. 2 quality *deltas* land near the
published ones (priority steering loses ≈0.068 SSIM vs eMBB-only and
≈0.002 vs DChannel under mmWave driving). Small content-dependent noise is
added per frame, deterministically.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ReproError

#: Mean SSIM when the frame decodes at layer 0 / 1 / 2.
DEFAULT_LAYER_SSIM = (0.880, 0.955, 0.985)
#: Per-frame content noise (std-dev of a clamped Gaussian).
SSIM_NOISE_STD = 0.006
#: SSIM charged for a frame with no decodable output (frozen/blank frame).
UNDECODED_SSIM = 0.0


class SsimModel:
    """Maps (frame, decoded layer) to an SSIM score in [0, 1]."""

    def __init__(
        self,
        layer_ssim: Sequence[float] = DEFAULT_LAYER_SSIM,
        noise_std: float = SSIM_NOISE_STD,
        seed: int = 0,
    ) -> None:
        if not layer_ssim:
            raise ReproError("layer_ssim must not be empty")
        if any(not 0.0 < s <= 1.0 for s in layer_ssim):
            raise ReproError(f"layer SSIM values must be in (0, 1], got {layer_ssim}")
        if list(layer_ssim) != sorted(layer_ssim):
            raise ReproError("layer SSIM must be non-decreasing with layer index")
        self.layer_ssim = list(layer_ssim)
        self.noise_std = noise_std
        self._seed = seed

    def ssim(self, frame_index: int, decoded_layer: int) -> float:
        """SSIM for ``frame_index`` decoded at ``decoded_layer`` (-1 = none)."""
        if decoded_layer < 0:
            return UNDECODED_SSIM
        layer = min(decoded_layer, len(self.layer_ssim) - 1)
        base = self.layer_ssim[layer]
        rng = random.Random(f"{self._seed}:{frame_index}")
        noisy = base + rng.gauss(0.0, self.noise_std)
        return max(0.0, min(1.0, noisy))
