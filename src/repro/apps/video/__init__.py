"""Real-time SVC video streaming (the Fig. 2 application).

Pipeline: :class:`~repro.apps.video.svc.SvcEncoderModel` produces per-frame
layer sizes → :class:`~repro.apps.video.sender.VideoSender` ships each layer
as a tagged datagram message every frame interval →
:class:`~repro.apps.video.receiver.VideoReceiver` applies the paper's 60 ms
decode-wait rule and SVC dependency rules →
:class:`~repro.apps.video.quality.SsimModel` scores decoded layers.
"""

from repro.apps.video.svc import SvcEncoderModel, LayerSpec
from repro.apps.video.sender import VideoSender
from repro.apps.video.receiver import VideoReceiver, DecodedFrame
from repro.apps.video.quality import SsimModel
from repro.apps.video.session import VideoSession, run_video_session

__all__ = [
    "SvcEncoderModel",
    "LayerSpec",
    "VideoSender",
    "VideoReceiver",
    "DecodedFrame",
    "SsimModel",
    "VideoSession",
    "run_video_session",
]
