"""Scalable Video Coding (SVC) stream model.

The paper's setup: VP9-SVC, three spatial/quality layers with target
bitrates 400 / 4100 / 7500 kbps (12 Mbps cumulative), 30 fps, sourced from
MOT17. We model what steering cares about — per-frame, per-layer message
sizes with realistic variation — rather than pixels:

* each layer's long-run rate matches its target bitrate;
* per-frame sizes jitter log-normally (encoder rate control is not exact);
* keyframes (default every 30 frames) are larger and reset inter-frame
  decode dependencies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import ReproError
from repro.units import kbps

#: The paper's three-layer configuration.
DEFAULT_LAYER_RATES_BPS = (kbps(400), kbps(4100), kbps(7500))
DEFAULT_FPS = 30.0
DEFAULT_KEYFRAME_INTERVAL = 30
#: Keyframes cost roughly this factor over a predicted frame at equal rate.
KEYFRAME_SIZE_FACTOR = 2.5
#: Log-normal sigma of per-frame size jitter.
SIZE_JITTER_SIGMA = 0.18


@dataclass
class LayerSpec:
    """One SVC layer: its index is its priority (0 = base, most important)."""

    index: int
    bitrate_bps: float


class SvcEncoderModel:
    """Deterministic per-frame layer sizes for an SVC stream."""

    def __init__(
        self,
        layer_rates_bps=DEFAULT_LAYER_RATES_BPS,
        fps: float = DEFAULT_FPS,
        keyframe_interval: int = DEFAULT_KEYFRAME_INTERVAL,
        seed: int = 0,
    ) -> None:
        if not layer_rates_bps:
            raise ReproError("at least one SVC layer is required")
        if any(rate <= 0 for rate in layer_rates_bps):
            raise ReproError(f"layer rates must be positive, got {layer_rates_bps}")
        if fps <= 0:
            raise ReproError(f"fps must be positive, got {fps}")
        if keyframe_interval < 1:
            raise ReproError(f"keyframe_interval must be >= 1, got {keyframe_interval}")
        self.layers = [
            LayerSpec(index=i, bitrate_bps=rate) for i, rate in enumerate(layer_rates_bps)
        ]
        self.fps = fps
        self.keyframe_interval = keyframe_interval
        self._seed = seed
        # Pre-compute the jitter normalization so long-run rate is exact:
        # E[lognormal(0, s)] = exp(s^2/2).
        import math

        self._jitter_norm = math.exp(SIZE_JITTER_SIGMA**2 / 2.0)
        # Spread the keyframe surplus over the GOP so rate stays on target.
        gop = self.keyframe_interval
        self._gop_norm = gop / (KEYFRAME_SIZE_FACTOR + (gop - 1))

    @property
    def frame_interval(self) -> float:
        return 1.0 / self.fps

    @property
    def total_bitrate_bps(self) -> float:
        return sum(layer.bitrate_bps for layer in self.layers)

    def is_keyframe(self, frame_index: int) -> bool:
        return frame_index % self.keyframe_interval == 0

    def frame_layer_sizes(self, frame_index: int) -> List[int]:
        """Bytes per layer for ``frame_index`` (deterministic given seed)."""
        if frame_index < 0:
            raise ReproError(f"frame_index must be >= 0, got {frame_index}")
        factor = KEYFRAME_SIZE_FACTOR if self.is_keyframe(frame_index) else 1.0
        sizes = []
        for layer in self.layers:
            # Per-(frame, layer) RNG so sizes are random-access deterministic.
            rng = random.Random(f"{self._seed}:{frame_index}:{layer.index}")
            base = layer.bitrate_bps / self.fps / 8.0
            jitter = rng.lognormvariate(0.0, SIZE_JITTER_SIGMA) / self._jitter_norm
            sizes.append(max(64, int(base * factor * self._gop_norm * jitter)))
        return sizes
