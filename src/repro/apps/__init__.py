"""Applications used by the paper's experiments.

* :mod:`repro.apps.bulk` — long-lived bulk transfer (Fig. 1 workload).
* :mod:`repro.apps.video` — real-time SVC video streaming (Fig. 2).
* :mod:`repro.apps.web` — web page loading with background flows (Table 1).
"""

from repro.apps.bulk import BulkTransfer

__all__ = ["BulkTransfer"]
