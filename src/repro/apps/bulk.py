"""Bulk transfer: a backlogged flow that never runs out of data.

This is Pantheon's workload in the paper's Fig. 1: one sender saturating
the channel set for a fixed duration under a given congestion controller,
while we record achieved throughput and the RTT samples the CCA saw.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.api import ConnectionPair, HvcNetwork
from repro.core.metrics import mean_throughput_bps, throughput_series
from repro.transport.connection import RttRecord

#: One "infinite" message big enough that the sender is never app-limited
#: in any experiment we run (the transport only materializes segments).
BACKLOG_BYTES = 10**10


class BulkTransfer:
    """A client→server backlogged flow."""

    def __init__(
        self,
        net: HvcNetwork,
        cc: str = "cubic",
        flow_priority: Optional[int] = None,
        total_bytes: Optional[int] = None,
        **conn_kwargs,
    ) -> None:
        self.net = net
        self.pair: ConnectionPair = net.open_connection(
            cc=cc, flow_priority=flow_priority, **conn_kwargs
        )
        size = total_bytes if total_bytes is not None else BACKLOG_BYTES
        self.pair.client.send_message(size, message_id=1)

    @property
    def bytes_acked(self) -> int:
        return self.pair.client.stats.bytes_acked

    def mean_throughput_bps(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Average goodput between ``start`` and ``end`` (bits/s)."""
        timeline = self.pair.client.stats.delivered_timeline
        if not timeline:
            return 0.0
        return mean_throughput_bps(timeline, start=start, end=end or self.net.now)

    def throughput_series(self, interval: float = 1.0) -> List[Tuple[float, float]]:
        """(time, bits/s) bins over the whole run."""
        return throughput_series(
            self.pair.client.stats.delivered_timeline,
            interval=interval,
            end_time=self.net.now,
        )

    def rtt_records(self) -> List[RttRecord]:
        """Every RTT sample the sender's CCA consumed."""
        return self.pair.client.stats.rtt_records
