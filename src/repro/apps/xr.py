"""Cloud gaming / XR frame loop (the paper's motivating application class).

The intro motivates HVCs with interactive applications: XR needs <20 ms
motion-to-photon with high reliability; cloud gaming needs high throughput
plus <100 ms input-to-display latency. This app models that loop:

* the **client** sends a small input event every tick (60 Hz);
* the **server** "renders" and returns one video frame — a large message
  sized for the stream bitrate — in response to each input;
* **motion-to-photon latency** is measured from input send to complete
  frame delivery, and each frame is scored against a deadline.

Inputs are tagged priority 0 (tiny, latency-critical) and frames priority 1
(bulk), so cross-layer steering can treat them differently — the same split
that rescued SVC video in Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.api import HvcNetwork
from repro.core.metrics import Cdf
from repro.sim.timers import PeriodicTimer
from repro.transport import next_flow_id
from repro.transport.connection import Connection, MessageReceipt
from repro.units import ms

#: Input event size: controller/pose update.
INPUT_BYTES = 200
#: 60 Hz loop.
DEFAULT_TICK = 1.0 / 60.0
#: Default stream: 30 Mbps at 60 fps ≈ 62.5 kB per frame.
DEFAULT_FRAME_BYTES = 62_500
#: Cloud-gaming deadline from the paper's intro (Peñaherrera-Pulla et al.).
CLOUD_GAMING_DEADLINE = ms(100)
#: XR deadline from the paper's intro (Ericsson XR requirements).
XR_DEADLINE = ms(20)

#: Response message ids offset from input ids.
FRAME_ID_OFFSET = 500_000


@dataclass
class FrameRecord:
    """One completed input→frame round trip."""

    frame_index: int
    input_sent_at: float
    frame_done_at: float

    @property
    def latency(self) -> float:
        return self.frame_done_at - self.input_sent_at


@dataclass
class XrSessionResult:
    """Latency distribution and deadline scoring for one session."""

    frames: List[FrameRecord]
    inputs_sent: int
    deadline: float

    def latency_cdf(self) -> Cdf:
        return Cdf([f.latency for f in self.frames])

    @property
    def on_time_fraction(self) -> float:
        """Fraction of *sent* inputs whose frame met the deadline."""
        if self.inputs_sent == 0:
            return 0.0
        on_time = sum(1 for f in self.frames if f.latency <= self.deadline)
        return on_time / self.inputs_sent


class XrSession:
    """A client/server frame loop over an :class:`HvcNetwork`."""

    def __init__(
        self,
        net: HvcNetwork,
        tick: float = DEFAULT_TICK,
        frame_bytes: int = DEFAULT_FRAME_BYTES,
        deadline: float = CLOUD_GAMING_DEADLINE,
        cc: str = "cubic",
    ) -> None:
        self.net = net
        self.frame_bytes = frame_bytes
        self.deadline = deadline
        self.frames: List[FrameRecord] = []
        self._input_times: Dict[int, float] = {}
        self._next_input = 0

        flow_id = next_flow_id()
        self._client = Connection(
            net.sim, net.client, flow_id, cc=cc, flow_priority=0,
            on_message=self._on_frame,
        )
        self._server = Connection(
            net.sim, net.server, flow_id, cc=cc, flow_priority=0,
            on_message=self._on_input,
        )
        self._timer = PeriodicTimer(net.sim, tick, self._send_input, start_delay=0.0)

    # ------------------------------------------------------------------
    def _send_input(self) -> None:
        index = self._next_input
        self._next_input += 1
        self._input_times[index] = self.net.now
        self._client.send_message(INPUT_BYTES, message_id=index, priority=0)

    def _on_input(self, receipt: MessageReceipt) -> None:
        self._server.send_message(
            self.frame_bytes,
            message_id=FRAME_ID_OFFSET + receipt.message_id,
            priority=1,
        )

    def _on_frame(self, receipt: MessageReceipt) -> None:
        index = receipt.message_id - FRAME_ID_OFFSET
        sent_at = self._input_times.pop(index, None)
        if sent_at is None:
            return
        self.frames.append(
            FrameRecord(
                frame_index=index,
                input_sent_at=sent_at,
                frame_done_at=self.net.now,
            )
        )

    def stop(self) -> None:
        self._timer.stop()

    def result(self) -> XrSessionResult:
        return XrSessionResult(
            frames=sorted(self.frames, key=lambda f: f.frame_index),
            inputs_sent=self._next_input,
            deadline=self.deadline,
        )


def run_xr_session(
    net: HvcNetwork,
    duration: float = 20.0,
    tick: float = DEFAULT_TICK,
    frame_bytes: int = DEFAULT_FRAME_BYTES,
    deadline: float = CLOUD_GAMING_DEADLINE,
    drain: float = 2.0,
) -> XrSessionResult:
    """Run one frame loop for ``duration`` seconds and summarize it."""
    session = XrSession(
        net, tick=tick, frame_bytes=frame_bytes, deadline=deadline
    )
    net.run(until=duration)
    session.stop()
    net.run(until=duration + drain)
    return session.result()
