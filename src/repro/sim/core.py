"""Compiled-core selection: pure-Python or mypyc-built hot loops.

:mod:`repro.sim._core` is a single source file playing two roles: it is
the pure-Python fallback, and it is the compilation unit
``tools/build_core.py`` feeds to mypyc. A built extension shadows the
``.py`` under the same module name, so this selector decides *which* to
load at import time from the ``REPRO_COMPILED`` environment variable:

``0`` / ``false`` / ``off``
    Force the pure-Python loops, even when an extension is built
    (loaded explicitly from the ``.py`` source). This is the CI leg that
    proves the fallback imports and behaves identically without a C
    toolchain.
``1`` / ``true`` / ``on``
    Require the compiled extension; raise ``ImportError`` with build
    instructions when it is missing. This is the CI leg that proves the
    compiled core builds and agrees with the fallback.
``auto`` (or unset)
    Use the extension when built, the pure source otherwise — the
    right default for users.

Consumers import the kernels from here (``from repro.sim.core import
sweep_times``); :data:`COMPILED` reports which implementation won.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from pathlib import Path

#: The raw selection knob, normalized.
MODE = os.environ.get("REPRO_COMPILED", "auto").strip().lower()

_FORCE_PURE = MODE in ("0", "false", "no", "off")
_REQUIRE_COMPILED = MODE in ("1", "true", "yes", "on")


def _load_pure_source():
    """Import ``_core`` from its ``.py`` even when an extension shadows it."""
    path = Path(__file__).with_name("_core.py")
    spec = importlib.util.spec_from_file_location("repro.sim._core_pure", path)
    if spec is None or spec.loader is None:  # pragma: no cover - packaging error
        raise ImportError(f"cannot load the pure core from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules["repro.sim._core_pure"] = module
    spec.loader.exec_module(module)
    return module


if _FORCE_PURE:
    _impl = _load_pure_source()
    COMPILED = False
else:
    from repro.sim import _core as _impl

    # A mypyc build replaces the module with a C extension; the source
    # fallback keeps its .py path.
    COMPILED = str(getattr(_impl, "__file__", "")).endswith((".so", ".pyd"))
    if _REQUIRE_COMPILED and not COMPILED:
        raise ImportError(
            "REPRO_COMPILED=1 but the compiled simulator core is not built; "
            "run `python tools/build_core.py` (requires mypy and a C "
            "toolchain) or unset REPRO_COMPILED to use the pure-Python loops"
        )

sweep_times = _impl.sweep_times
wheel_file = _impl.wheel_file
drain_batch = _impl.drain_batch

__all__ = ["COMPILED", "MODE", "sweep_times", "wheel_file", "drain_batch"]
