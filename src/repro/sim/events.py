"""Event objects and the pending-event queue.

The queue is a binary heap keyed on ``(time, sequence_number)``. The sequence
number is a monotonically increasing insertion counter, which gives FIFO
ordering among events scheduled for the same instant — a requirement for
deterministic replay.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.kernel.Simulator.schedule`
    rather than directly. Holding a reference allows cancellation via
    :meth:`cancel`; a cancelled event stays in the heap but is skipped when
    popped (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so the kernel skips it. Idempotent.

        Live-count accounting lives in the queue, so cancelling directly or
        via :meth:`repro.sim.kernel.Simulator.cancel` agree on ``len(queue)``.
        """
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._on_event_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} #{self.seq} {name}{state}>"


class EventQueue:
    """Min-heap of :class:`Event` with lazy deletion of cancelled events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._next_seq = 0
        self._live = 0

    def push(self, time: float, callback: Callable[..., Any], args: tuple = ()) -> Event:
        """Insert a new event and return it (for possible cancellation)."""
        event = Event(time, self._next_seq, callback, args)
        event._queue = self
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        return self.pop_next(None)

    def pop_next(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the earliest live event with ``time <= until`` in one sweep.

        Fuses the peek-then-pop pattern: cancelled heap tops are discarded
        exactly once, and an event beyond ``until`` stays queued (``None`` is
        returned). This is the kernel's per-event hot path.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            event = heap[0]
            if event.cancelled:
                pop(heap)
                continue
            if until is not None and event.time > until:
                return None
            pop(heap)
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def _on_event_cancelled(self) -> None:
        """Live-count hook invoked by :meth:`Event.cancel` (exactly once)."""
        self._live -= 1

    def notify_cancelled(self) -> None:
        """Deprecated no-op kept for backwards compatibility.

        :meth:`Event.cancel` now reports to the queue itself, so external
        callers no longer need to (and must not) adjust the live count.
        """

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
