"""Event objects and the pending-event queue.

The queue is a two-level hierarchy keyed on ``(time, sequence_number)``:
a near-horizon :class:`~repro.sim.wheel.TimerWheel` (O(1) inserts,
sort-once-then-walk drains) backed by a binary-heap overflow for
far-future timers. The sequence number is a monotonically increasing
insertion counter, which gives FIFO ordering among events scheduled for
the same instant — a requirement for deterministic replay. Both levels
store ``(time, seq, event)`` tuples so every comparison happens at C
speed; dispatch order is bit-for-bit identical to the classic
single-heap queue (kept below as :class:`HeapEventQueue` for
cross-checking and benchmarks).

Cancellation is lazy — a cancelled event stays filed until its time
arrives — but bounded: when dead entries outnumber live ones the queue
compacts, rebuilding every level in O(live). A pacing-heavy transport
that arms and cancels a timer per packet no longer retains each corpse
until its original deadline.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.core import drain_batch
from repro.sim.wheel import DEFAULT_GRANULARITY, DEFAULT_HORIZON, TimerWheel


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.kernel.Simulator.schedule`
    rather than directly. Holding a reference allows cancellation via
    :meth:`cancel`; a cancelled event stays filed but is skipped when
    popped (lazy deletion, bounded by compaction).

    ``transient`` events come from ``schedule_transient``: the caller has
    promised to drop the reference and never cancel, so the kernel
    recycles the object through the event pool right after dispatch.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "transient", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        transient: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.transient = transient
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so the kernel skips it. Idempotent.

        Live-count accounting lives in the queue, so cancelling directly or
        via :meth:`repro.sim.kernel.Simulator.cancel` agree on ``len(queue)``.

        Cancelling proves the caller retained a handle, so a transient
        event is demoted to a regular one here: it must never be recycled
        through the event pool, or the retained handle would alias whatever
        event the pool hands out next (stale callback firing, or a future
        cancel() silently killing an unrelated event).
        """
        if not self.cancelled:
            self.cancelled = True
            self.transient = False
            queue = self._queue
            if queue is not None:
                queue._on_event_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} #{self.seq} {name}{state}>"


from repro.sim.pool import EventPool  # noqa: E402  (needs Event defined above)

#: Compaction trigger floor: never compact while fewer dead entries than
#: this are filed, whatever the dead:live ratio (tiny queues churn).
COMPACT_MIN_DEAD = 256


class EventQueue:
    """Timer wheel + overflow heap with lazy-but-bounded cancellation."""

    __slots__ = (
        "_wheel",
        "_overflow",
        "_next_seq",
        "_live",
        "_dead",
        "_pool",
        "_inv_g",
        "_in_batch",
        "_compact_pending",
        "compact_min_dead",
        "compactions",
    )

    def __init__(
        self,
        granularity: float = DEFAULT_GRANULARITY,
        horizon: float = DEFAULT_HORIZON,
        pool: Optional[EventPool] = None,
    ) -> None:
        self._wheel = TimerWheel(granularity, horizon)
        self._overflow: List[Tuple[float, int, Event]] = []
        self._next_seq = 0
        self._live = 0
        #: Cancelled entries still physically filed somewhere.
        self._dead = 0
        self._pool = pool if pool is not None else EventPool()
        self._inv_g = self._wheel.inv_granularity
        #: Batch-dispatch guard: while the kernel walks a drain bucket it
        #: holds local aliases into the wheel's ``_drain`` list, so a
        #: compaction (which rebinds that list and resets the cursor)
        #: must not run underneath it. ``Event.cancel`` inside a batch
        #: sets ``_compact_pending`` instead; the kernel compacts at the
        #: next batch boundary. A bucket spans at most one granularity
        #: tick of events, so the deferral stays bounded.
        self._in_batch = False
        self._compact_pending = False
        self.compact_min_dead = COMPACT_MIN_DEAD
        self.compactions = 0

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        transient: bool = False,
    ) -> Event:
        """Insert a new event and return it (for possible cancellation).

        The pool acquire and the wheel insert are inlined here (reaching
        into :class:`TimerWheel` and :class:`EventPool` slots directly):
        this runs once per scheduled event and the call overhead of the
        tidy three-method version measurably dominates the real work.
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        pool = self._pool
        free = pool._free
        if free:
            event = free.pop()
            pool.reused += 1
        else:
            # ``__new__`` + direct slot stores: ~25% cheaper than calling
            # ``Event.__init__`` and this is the single hottest allocation
            # site in the simulator.
            event = Event.__new__(Event)
            pool.created += 1
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.transient = transient
        event._queue = self
        entry = (time, seq, event)
        tick = int(time * self._inv_g)
        wheel = self._wheel
        if tick <= wheel._drain_tick:
            # Same-bucket insert while (or after) that bucket drains.
            # Appending beats bisecting when the entry already sorts last —
            # the common case, since seq grows monotonically.
            drain = wheel._drain
            if not drain or entry >= drain[-1]:
                drain.append(entry)
            else:
                insort(drain, entry, lo=wheel._drain_pos)
        elif tick - wheel._base_tick <= wheel.horizon_ticks:
            buckets = wheel._buckets
            bucket = buckets.get(tick)
            if bucket is None:
                buckets[tick] = [entry]
                heappush(wheel._tick_heap, tick)
            else:
                bucket.append(entry)
            wheel._bucket_entries += 1
        else:
            heappush(self._overflow, entry)
        self._live += 1
        return event

    def push_bulk(self, items) -> None:
        """File many transient events in one sweep.

        ``items`` is a sequence of ``(time, callback, args)`` tuples in
        any order. All events are transient (pool-recycled after
        dispatch; the caller keeps no handles and never cancels) — this
        is the bulk feed for array-of-structs sweeps like
        :class:`repro.net.link.LinkBatch`, which computes a window of
        serialization-finish times in one vectorized pass and hands the
        whole window over here, paying the queue overhead once per sweep
        instead of once per packet.
        """
        pool = self._pool
        free = pool._free
        wheel = self._wheel
        buckets = wheel._buckets
        tick_heap = wheel._tick_heap
        overflow = self._overflow
        inv_g = self._inv_g
        drain_tick = wheel._drain_tick
        base_tick = wheel._base_tick
        horizon_ticks = wheel.horizon_ticks
        seq = self._next_seq
        added = 0
        for time, callback, args in items:
            if free:
                event = free.pop()
                pool.reused += 1
            else:
                event = Event.__new__(Event)
                pool.created += 1
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.transient = True
            event._queue = self
            entry = (time, seq, event)
            seq += 1
            tick = int(time * inv_g)
            if tick <= drain_tick:
                drain = wheel._drain
                if not drain or entry >= drain[-1]:
                    drain.append(entry)
                else:
                    insort(drain, entry, lo=wheel._drain_pos)
            elif tick - base_tick <= horizon_ticks:
                bucket = buckets.get(tick)
                if bucket is None:
                    buckets[tick] = [entry]
                    heappush(tick_heap, tick)
                else:
                    bucket.append(entry)
                added += 1
            else:
                heappush(overflow, entry)
        wheel._bucket_entries += added
        self._live += seq - self._next_seq
        self._next_seq = seq

    # ------------------------------------------------------------------
    # Remove
    # ------------------------------------------------------------------
    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        return self.pop_next(None)

    def pop_next(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the earliest live event with ``time <= until`` in one sweep.

        Cancelled heads are discarded (and reclaimed) as they surface; an
        event beyond ``until`` stays queued and ``None`` is returned.
        This is the kernel's per-event hot path: the overwhelmingly
        common case — a live entry at the drain cursor that beats the
        overflow head — is handled inline; everything else (bucket
        exhausted, cancelled head, overflow wins) takes the slow path.
        """
        wheel = self._wheel
        drain = wheel._drain
        pos = wheel._drain_pos
        if pos < len(drain):
            entry = drain[pos]
            event = entry[2]
            if not event.cancelled:
                overflow = self._overflow
                if not overflow or entry < overflow[0]:
                    if until is not None and entry[0] > until:
                        return None
                    wheel._drain_pos = pos + 1
                    event._queue = None
                    self._live -= 1
                    return event
        return self._pop_slow(until)

    def _pop_slow(self, until: Optional[float]) -> Optional[Event]:
        """General pop: shed cancelled heads, pick min(wheel, overflow)."""
        wheel, overflow = self._heads()
        if wheel is None:
            if overflow is None:
                return None
            best, from_wheel = overflow, False
        elif overflow is None or wheel < overflow:
            best, from_wheel = wheel, True
        else:
            best, from_wheel = overflow, False
        time = best[0]
        if until is not None and time > until:
            return None
        if from_wheel:
            self._wheel.advance()
        else:
            heappop(self._overflow)
            self._wheel.note_tick(int(time * self._inv_g))
        event = best[2]
        event._queue = None
        self._live -= 1
        return event

    def pop_bucket(
        self, until: Optional[float] = None, limit: Optional[int] = None
    ) -> List[Event]:
        """Pop the sorted same-bucket run of live events in one call.

        Returns every live event from the wheel's current (or next)
        drain bucket whose time is ``<= until`` and earlier than the
        overflow head, up to ``limit`` events — the batch the kernel's
        fast loop dispatches between slow-path reloads. Returns ``[]``
        when the next event lives in the overflow heap (pop it with
        :meth:`pop_next`) or nothing is eligible.

        Contract: the batch is *materialized*, so a caller that runs
        callbacks afterwards must not let them schedule into the popped
        window if it needs heap-identical dispatch order — the kernel
        therefore walks the drain list in place instead (same entries,
        same order, but mid-batch inserts still merge). ``pop_bucket``
        is the API for non-reentrant consumers: replay drivers, the
        compiled core's boundary, tests, benchmarks.
        """
        wheel = self._wheel
        head = wheel.peek()
        while head is not None and head[2].cancelled:
            wheel.advance()
            self._reclaim(head[2])
            head = wheel.peek()
        if head is None:
            return []
        overflow = self._overflow
        while overflow and overflow[0][2].cancelled:
            self._reclaim(heappop(overflow)[2])
        bound_time = wheel.bucket_end_time()
        if until is not None and until < bound_time:
            bound_time = until + 0.0  # inclusive bound handled below
            inclusive = True
        else:
            inclusive = False
        ocut = overflow[0] if overflow else None
        # The walk itself is the selected core loop (mypyc-compiled when
        # built — see repro.sim.core); bookkeeping stays here.
        pos, batch, dead = drain_batch(
            wheel._drain,
            wheel._drain_pos,
            bound_time,
            inclusive,
            ocut,
            -1 if limit is None else limit,
        )
        pool = self._pool
        for event in dead:
            self._dead -= 1
            event._queue = None
            if event.transient:
                pool.release(event)
        for event in batch:
            event._queue = None
        wheel._drain_pos = pos
        self._live -= len(batch)
        return batch

    def peek_time(self) -> Optional[float]:
        """Time of the earliest non-cancelled event, or ``None`` if empty.

        Cancelled heads encountered on the way are discarded *and*
        reclaimed (``_queue`` cleared, dead count adjusted, transient
        objects pooled) — symmetric with :meth:`pop_next`.
        """
        wheel, overflow = self._heads()
        if wheel is None:
            return overflow[0] if overflow is not None else None
        if overflow is None or wheel < overflow:
            return wheel[0]
        return overflow[0]

    def _heads(self):
        """Current (wheel, overflow) head entries, shedding cancelled ones."""
        wheel = self._wheel
        whead = wheel.peek()
        while whead is not None and whead[2].cancelled:
            wheel.advance()
            self._reclaim(whead[2])
            whead = wheel.peek()
        overflow = self._overflow
        ohead = None
        while overflow:
            candidate = overflow[0]
            if candidate[2].cancelled:
                heappop(overflow)
                self._reclaim(candidate[2])
            else:
                ohead = candidate
                break
        return whead, ohead

    def _reclaim(self, event: Event) -> None:
        """A cancelled entry left the structures: finish its bookkeeping."""
        self._dead -= 1
        event._queue = None
        if event.transient:
            self._pool.release(event)

    # ------------------------------------------------------------------
    # Cancellation + compaction
    # ------------------------------------------------------------------
    def _on_event_cancelled(self) -> None:
        """Hook invoked by :meth:`Event.cancel` (exactly once per event).

        Inside a kernel batch the compaction is deferred (flag only):
        the batch loop aliases the wheel's drain list and compaction
        rebinds it. The kernel settles the flag at every batch boundary,
        so the deferral is bounded by one bucket's worth of cancels.
        """
        self._live -= 1
        self._dead += 1
        if self._dead >= self.compact_min_dead and self._dead > self._live:
            if self._in_batch:
                self._compact_pending = True
            else:
                self._compact()

    def _compact(self) -> None:
        """Rebuild every level in O(live), dropping cancelled entries."""
        removed = self._wheel.compact()
        overflow = self._overflow
        if overflow:
            live = []
            for entry in overflow:
                if entry[2].cancelled:
                    removed.append(entry[2])
                else:
                    live.append(entry)
            heapify(live)
            self._overflow = live
        pool = self._pool
        for event in removed:
            event._queue = None
            if event.transient:
                pool.release(event)
        self._dead -= len(removed)
        self.compactions += 1

    def notify_cancelled(self) -> None:
        """Deprecated no-op kept for backwards compatibility.

        :meth:`Event.cancel` now reports to the queue itself, so external
        callers no longer need to (and must not) adjust the live count.
        """

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pool(self) -> EventPool:
        return self._pool

    @property
    def dead_events(self) -> int:
        """Cancelled entries still filed (bounded by compaction)."""
        return self._dead

    def entry_count(self) -> int:
        """Entries physically filed across all levels (live + dead)."""
        return self._wheel.entry_count() + len(self._overflow)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class HeapEventQueue:
    """The classic single binary heap of :class:`Event` (pre-wheel).

    Kept as the reference implementation: the hypothesis property suite
    drives it and :class:`EventQueue` through identical workloads and
    asserts bit-for-bit equal dispatch order, and the kernel benchmark
    measures the wheel's speedup against it on the same churn.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._next_seq = 0
        self._live = 0
        self._dead = 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        transient: bool = False,
    ) -> Event:
        event = Event(time, self._next_seq, callback, args, transient)
        event._queue = self
        self._next_seq += 1
        heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        return self.pop_next(None)

    def pop_next(self, until: Optional[float] = None) -> Optional[Event]:
        heap = self._heap
        pop = heappop
        while heap:
            event = heap[0]
            if event.cancelled:
                pop(heap)
                self._dead -= 1
                event._queue = None
                continue
            if until is not None and event.time > until:
                return None
            pop(heap)
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        while heap and heap[0].cancelled:
            event = heappop(heap)
            # Symmetric with pop_next: a discarded corpse is fully
            # detached so a later cancel() cannot double-count.
            self._dead -= 1
            event._queue = None
        if not heap:
            return None
        return heap[0].time

    def _on_event_cancelled(self) -> None:
        self._live -= 1
        self._dead += 1

    def notify_cancelled(self) -> None:
        """Deprecated no-op kept for backwards compatibility."""

    @property
    def dead_events(self) -> int:
        return self._dead

    def entry_count(self) -> int:
        return len(self._heap)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
