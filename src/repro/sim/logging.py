"""Simulation-time-aware logging.

Standard :mod:`logging` records wall-clock time, which is meaningless
inside a simulation. :func:`get_logger` returns a logger whose records
carry the simulator clock, formatted as ``[   1.234567s] component: msg``.

Logging is off by default (WARNING level) so experiments run silently;
enable per-component tracing with::

    from repro.sim.logging import get_logger, set_level
    set_level("DEBUG")
    log = get_logger(sim, "transport.cc")
    log.debug("cwnd %.0f", cwnd)
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.sim.kernel import Simulator

ROOT_NAME = "repro"
_configured = False


class SimTimeFilter(logging.Filter):
    """Injects the simulator clock into every record as ``sim_time``."""

    def __init__(self, sim: Simulator) -> None:
        super().__init__()
        self.sim = sim

    def filter(self, record: logging.LogRecord) -> bool:
        record.sim_time = self.sim.now
        return True


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("[%(sim_time)12.6fs] %(name)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(sim: Simulator, component: str) -> logging.Logger:
    """A logger for ``component`` stamped with ``sim``'s clock."""
    _configure_root()
    logger = logging.getLogger(f"{ROOT_NAME}.{component}")
    # Replace any stale filter from a previous simulator instance.
    for existing in list(logger.filters):
        if isinstance(existing, SimTimeFilter):
            logger.removeFilter(existing)
    logger.addFilter(SimTimeFilter(sim))
    return logger


def set_level(level: str) -> None:
    """Set the library-wide log level by name ('DEBUG', 'INFO', ...)."""
    _configure_root()
    numeric: Optional[int] = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logging.getLogger(ROOT_NAME).setLevel(numeric)
