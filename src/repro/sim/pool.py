"""Free-list pooling for kernel :class:`~repro.sim.events.Event` objects.

A discrete-event run at fig1a scale allocates (and immediately discards)
hundreds of thousands of ``Event`` objects — one per link serialization
completion, delivery, pacing tick. Pooling turns that churn into a
free-list pop + six attribute stores.

Only *transient* events are ever recycled: an event scheduled through
``Simulator.schedule_transient``/``schedule_at_transient`` whose caller
promises to drop the returned reference immediately and never cancel it.
The kernel returns such events to the pool right after their callback
runs (or when they are discarded as cancelled), so a retained reference
would alias a *future* event — see ``docs/PERFORMANCE.md`` for the full
recycle contract. Regular ``schedule`` events are never pooled and may
be held or cancelled freely, exactly as before.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from repro.sim.events import Event


class EventPool:
    """LIFO free list of :class:`Event` objects.

    The free list is bounded so a one-off scheduling burst cannot pin
    memory for the rest of the run.
    """

    __slots__ = ("_free", "max_free", "created", "reused", "released")

    def __init__(self, max_free: int = 4096) -> None:
        self._free: list = []
        self.max_free = max_free
        #: Events constructed because the free list was empty.
        self.created = 0
        #: Acquisitions served from the free list.
        self.reused = 0
        #: Events returned to the free list.
        self.released = 0

    def acquire(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple = (),
        transient: bool = False,
    ) -> Event:
        """A ready-to-queue event, recycled when possible."""
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.transient = transient
            self.reused += 1
            return event
        self.created += 1
        return Event(time, seq, callback, args, transient)

    def release(self, event: Event) -> None:
        """Return a dispatched (or discarded) transient event to the pool.

        Clears the callback/args references so pooled events never pin
        packets or component objects.
        """
        free = self._free
        if len(free) < self.max_free:
            event.callback = None
            event.args = ()
            event._queue = None
            free.append(event)
            self.released += 1

    def __len__(self) -> int:
        return len(self._free)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventPool free={len(self._free)} created={self.created}"
            f" reused={self.reused}>"
        )
