"""Deterministic discrete-event simulation kernel.

Everything in the library runs on a single :class:`~repro.sim.kernel.Simulator`
clock. Events fire in (time, insertion-order) order, so runs are exactly
reproducible for a given scenario seed. Pending events live in a
two-level structure — a near-horizon timer wheel plus an overflow heap
(:mod:`repro.sim.wheel`, :mod:`repro.sim.events`) — with transient
per-packet events recycled through :mod:`repro.sim.pool`.
"""

from repro.sim.events import Event, EventQueue, HeapEventQueue
from repro.sim.kernel import Simulator
from repro.sim.pool import EventPool
from repro.sim.random import RandomStreams
from repro.sim.timers import PeriodicTimer
from repro.sim.wheel import TimerWheel

__all__ = [
    "Event",
    "EventPool",
    "EventQueue",
    "HeapEventQueue",
    "Simulator",
    "RandomStreams",
    "PeriodicTimer",
    "TimerWheel",
]
