"""Deterministic discrete-event simulation kernel.

Everything in the library runs on a single :class:`~repro.sim.kernel.Simulator`
clock. Events fire in (time, insertion-order) order, so runs are exactly
reproducible for a given scenario seed.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.sim.timers import PeriodicTimer

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "RandomStreams",
    "PeriodicTimer",
]
