"""Near-horizon timer wheel: the fast level of the event queue hierarchy.

The wheel buckets entries by quantized time tick (``tick = int(time /
granularity)``). Buckets are plain lists keyed in a dict, with a small
heap of *occupied ticks* — so an insert is an O(1) list append plus, for
a bucket's first entry, one integer heap push. When the simulation clock
reaches a bucket it is sorted once (a C-level sort over ``(time, seq,
event)`` tuples, so no Python ``__lt__`` calls) and then drained by
advancing an index — no per-event heap sifting at all.

Ordering guarantee: the wheel dispatches in exact global ``(time, seq)``
order. Ticks are monotone in time, ticks are drained smallest-first, and
within a bucket the tuple sort provides the total order — so the hybrid
queue in :mod:`repro.sim.events` is bit-for-bit interchangeable with the
classic binary heap it replaces.

Batch draining: the sorted drain bucket *is* the batch. The kernel's
fast loop (:meth:`repro.sim.kernel.Simulator.run`) walks ``_drain`` from
``_drain_pos`` directly — one Python-level loop per bucket instead of
one ``pop_next`` call per event — writing the cursor back when it
leaves the bucket. :meth:`insert` merges same-bucket arrivals into the
un-drained suffix, so mid-batch schedules for the current instant keep
exact FIFO order either way.

Entries scheduled further out than ``horizon`` seconds from the wheel's
current position are rejected by :meth:`insert`; the caller keeps those
in its overflow heap (the second level of the hierarchy).
"""

from __future__ import annotations

from heapq import heappop
from typing import List, Optional, Tuple

from repro.sim.core import wheel_file

#: Bucket width in seconds. 1 ms comfortably separates pacing ticks,
#: link serialize completions and RTTs while keeping bucket sorts small.
DEFAULT_GRANULARITY = 1e-3

#: How far ahead of the wheel's position an entry may land (seconds).
#: Covers pacing/serialization/RTT/RTO timers; anything further (idle
#: probes, experiment-end sentinels) overflows to the heap level.
DEFAULT_HORIZON = 4.0

#: Queue entry: ``(time, seq, event)``. ``seq`` is unique, so tuple
#: comparison never falls through to the Event object.
Entry = Tuple[float, int, object]


class TimerWheel:
    """Dict-of-buckets calendar for near-horizon timers."""

    __slots__ = (
        "granularity",
        "inv_granularity",
        "horizon_ticks",
        "_buckets",
        "_tick_heap",
        "_drain",
        "_drain_pos",
        "_drain_tick",
        "_base_tick",
        "_bucket_entries",
    )

    def __init__(
        self,
        granularity: float = DEFAULT_GRANULARITY,
        horizon: float = DEFAULT_HORIZON,
    ) -> None:
        if granularity <= 0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        if horizon <= granularity:
            raise ValueError(f"horizon must exceed the granularity, got {horizon}")
        self.granularity = granularity
        self.inv_granularity = 1.0 / granularity
        self.horizon_ticks = int(horizon / granularity)
        self._buckets: dict = {}
        self._tick_heap: List[int] = []
        #: Bucket currently being drained (sorted ascending) and the
        #: cursor into it. Entries behind the cursor are already popped.
        self._drain: List[Entry] = []
        self._drain_pos = 0
        self._drain_tick = -1
        #: The wheel's notion of "now", in ticks: advanced when a bucket
        #: loads, and nudged by the owner when the overflow heap pops an
        #: event (so a long all-overflow stretch cannot stall the horizon).
        self._base_tick = 0
        #: Entries filed in ``_buckets`` (the not-yet-loaded calendar).
        #: Together with ``len(_drain) - _drain_pos`` this makes
        #: :meth:`entry_count` O(1) instead of a walk over every bucket —
        #: the compaction-policy checks and benchmark probes that used to
        #: pay O(buckets) per call now pay two subtractions.
        self._bucket_entries = 0

    # ------------------------------------------------------------------
    # Insert / remove
    # ------------------------------------------------------------------
    def insert(self, entry: Entry, tick: int) -> bool:
        """File ``entry`` under ``tick``; False when beyond the horizon.

        Entries for the bucket currently draining are merged into the
        un-drained suffix with one C-level ``insort`` — a callback that
        schedules for the current instant keeps exact FIFO order.

        Delegates to the selected core loop
        (:func:`repro.sim.core.wheel_file` — mypyc-compiled when built).
        ``EventQueue.push`` inlines the same filing logic instead of
        calling here: that path runs once per scheduled event, where the
        call boundary would cost the pure build more than the compiled
        build gains.
        """
        filed = wheel_file(
            self._drain,
            self._drain_pos,
            self._drain_tick,
            self._base_tick,
            self.horizon_ticks,
            self._buckets,
            self._tick_heap,
            entry,
            tick,
        )
        if filed < 0:
            return False
        self._bucket_entries += filed
        return True

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def peek(self) -> Optional[Entry]:
        """The earliest entry (possibly a cancelled one), or ``None``.

        Loads and sorts the next occupied bucket when the current one is
        exhausted. The caller pops the returned entry with
        :meth:`advance` (cancelled entries included — the owner does the
        skipping so it can keep its dead-entry accounting in one place).
        """
        pos = self._drain_pos
        drain = self._drain
        if pos < len(drain):
            return drain[pos]
        tick_heap = self._tick_heap
        if not tick_heap:
            if drain:
                # Release entry refs from the fully-drained bucket.
                self._drain = []
                self._drain_pos = 0
            return None
        tick = heappop(tick_heap)
        bucket = self._buckets.pop(tick)
        bucket.sort()
        self._bucket_entries -= len(bucket)
        self._drain = bucket
        self._drain_pos = 0
        self._drain_tick = tick
        if tick > self._base_tick:
            self._base_tick = tick
        return bucket[0]

    def advance(self) -> None:
        """Consume the entry last returned by :meth:`peek`."""
        self._drain_pos += 1

    def note_tick(self, tick: int) -> None:
        """Advance the wheel's position (called on overflow-heap pops)."""
        if tick > self._base_tick:
            self._base_tick = tick

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Entries physically held (live and cancelled alike). O(1)."""
        return self._bucket_entries + len(self._drain) - self._drain_pos

    def bucket_end_time(self) -> float:
        """Exclusive upper time bound of the bucket being drained."""
        return (self._drain_tick + 1) * self.granularity

    def compact(self) -> list:
        """Drop cancelled entries everywhere; return their events.

        Un-drained buckets are filtered in place (insertion order is
        preserved — they are sorted at drain time anyway) and buckets
        left empty are removed along with their tick-heap slot. The
        drain bucket keeps its sort order and its cursor resets to 0.
        """
        removed = []
        drain = self._drain
        if drain:
            live = []
            for entry in drain[self._drain_pos:]:
                if entry[2].cancelled:
                    removed.append(entry[2])
                else:
                    live.append(entry)
            self._drain = live
            self._drain_pos = 0
        buckets = self._buckets
        if buckets:
            emptied = []
            for tick, bucket in buckets.items():
                live = []
                for entry in bucket:
                    if entry[2].cancelled:
                        removed.append(entry[2])
                    else:
                        live.append(entry)
                if live:
                    buckets[tick] = live
                else:
                    emptied.append(tick)
                self._bucket_entries -= len(bucket) - len(live)
            if emptied:
                for tick in emptied:
                    del buckets[tick]
                self._tick_heap = sorted(buckets)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TimerWheel g={self.granularity} buckets={len(self._buckets)}"
            f" drain={len(self._drain) - self._drain_pos}>"
        )
