"""The simulator: a single clock driving an event queue.

Typical use::

    sim = Simulator()
    sim.schedule(0.5, fire_probe)
    sim.run(until=60.0)

Components receive the simulator at construction time and schedule their own
callbacks; nothing in the library spawns threads or sleeps on wall-clock time.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


class Simulator:
    """Deterministic discrete-event simulator.

    Attributes
    ----------
    now:
        Current simulation time in seconds. Starts at 0.0 and only moves
        forward.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stop_requested = False
        self.events_processed = 0
        #: Optional :class:`repro.obs.Observability` context. ``None`` keeps
        #: the dispatch loop untouched; when set, each ``run`` folds its
        #: event count into the ``sim.events_processed`` counter afterwards
        #: (off the per-event hot path).
        self._obs = None
        #: Optional per-event invariant hook ``fn(now, event_time)`` called
        #: before the clock advances to each event (see :mod:`repro.check`).
        #: ``None`` costs one branch per event in the dispatch loop.
        self._invariant_hook: Optional[Callable[[float, float], None]] = None

    def attach_obs(self, obs) -> None:
        """Attach an observability context (see :mod:`repro.obs`)."""
        self._obs = obs

    def attach_invariant_hook(self, hook: Optional[Callable[[float, float], None]]) -> None:
        """Install (or clear, with ``None``) the per-event invariant hook.

        The hook runs *before* ``now`` advances and may raise — an
        :class:`~repro.errors.InvariantError` propagates out of :meth:`run`
        with the clock still at the pre-event time.
        """
        self._invariant_hook = hook

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self.now:.6f}"
            )
        return self._queue.push(time, callback, args)

    def schedule_transient(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule a fire-and-forget callback whose Event is pool-recycled.

        The returned event object is returned to the event pool right
        after its callback runs; the caller MUST NOT retain the reference
        or cancel it (see the recycle contract in ``docs/PERFORMANCE.md``).
        Use for high-volume per-packet events nobody ever cancels — link
        serialization completions, deliveries.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args, transient=True)

    def schedule_at_transient(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Absolute-time variant of :meth:`schedule_transient`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self.now:.6f}"
            )
        return self._queue.push(time, callback, args, transient=True)

    def reschedule(
        self, event: Optional[Event], delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Cancel ``event`` (if still pending) and arm a replacement timer.

        The cancel-or-reschedule idiom every transport timer uses —
        ``conn._rto_event = sim.reschedule(conn._rto_event, rto, fire)`` —
        with the cancel bookkeeping in one place. ``event`` may be
        ``None`` or already fired/cancelled; both are no-ops.
        """
        if event is not None and not event.cancelled:
            event.cancel()
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event. Safe to call more than once."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in order until the queue drains or limits are hit.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time. The clock is advanced
            to ``until`` even if no event fires exactly then, so repeated
            ``run(until=...)`` calls behave like contiguous epochs — but only
            when the queue was actually drained up to ``until``. If the run
            stops early (``max_events`` reached, or :meth:`stop` called)
            while events earlier than ``until`` are still pending, the clock
            stays at the last processed event so a later ``run`` never moves
            it backwards.
        max_events:
            Safety valve for runaway event cascades in tests.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stop_requested = False
        processed_this_run = 0
        drained = False
        # Hot path: one fused queue sweep per event (pop_next), with the
        # bound methods hoisted out of the loop. Transient events (link
        # serializations, deliveries) go straight back to the pool after
        # their callback — their schedulers promised not to retain them.
        pop_next = self._queue.pop_next
        pool = self._queue.pool
        free = pool._free
        max_free = pool.max_free
        check = self._invariant_hook
        try:
            while not self._stop_requested:
                event = pop_next(until)
                if event is None:
                    drained = True
                    break
                if check is not None:
                    check(self.now, event.time)
                self.now = event.time
                event.callback(*event.args)
                if event.transient and len(free) < max_free:
                    # Inlined EventPool.release: per-event call overhead
                    # on the dispatch hot path is worth avoiding.
                    event.callback = None
                    event.args = ()
                    event._queue = None
                    free.append(event)
                    pool.released += 1
                self.events_processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
            if until is not None and drained and until > self.now:
                self.now = until
        finally:
            self._running = False
            obs = self._obs
            if obs is not None and processed_this_run:
                obs.registry.counter("sim.events_processed").add(processed_this_run)

    def stop(self) -> None:
        """Request the current ``run`` to return after the active event."""
        self._stop_requested = True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} pending={self.pending_events}>"
