"""The simulator: a single clock driving an event queue.

Typical use::

    sim = Simulator()
    sim.schedule(0.5, fire_probe)
    sim.run(until=60.0)

Components receive the simulator at construction time and schedule their own
callbacks; nothing in the library spawns threads or sleeps on wall-clock time.

Dispatch is *batched*: :meth:`Simulator.run` pays the slow two-level
queue sweep once per loaded timer-wheel bucket and then walks the sorted
bucket with a tight inner loop — one Python-level iteration per event
instead of one ``pop_next`` call per event. Observable semantics are
unchanged (``sim.now`` still advances per event, dispatch order is
bit-for-bit the heap order, ``stop()`` still halts after the active
event); what moves to per-batch granularity is the queue bookkeeping,
the compaction trigger, and the invariant hook (see
:meth:`attach_batch_invariant_hook`). :meth:`run_per_event` keeps the
classic one-pop-per-event loop as the reference implementation and as
the path for legacy per-event invariant hooks.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue

_INF = float("inf")


class Simulator:
    """Deterministic discrete-event simulator.

    Attributes
    ----------
    now:
        Current simulation time in seconds. Starts at 0.0 and only moves
        forward.
    """

    # ``self.now`` is written once per dispatched event and read by
    # nearly every callback; slot storage keeps those accesses off the
    # instance dict.
    __slots__ = (
        "now",
        "_queue",
        "_running",
        "_stop_requested",
        "events_processed",
        "_obs",
        "_invariant_hook",
        "_batch_invariant_hook",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stop_requested = False
        self.events_processed = 0
        #: Optional :class:`repro.obs.Observability` context. ``None`` keeps
        #: the dispatch loop untouched; when set, each ``run`` folds its
        #: event count into the ``sim.events_processed`` counter afterwards
        #: (off the per-event hot path).
        self._obs = None
        #: Optional per-event invariant hook ``fn(now, event_time)`` called
        #: before the clock advances to each event (see :mod:`repro.check`).
        #: Forces :meth:`run` onto the per-event reference loop unless a
        #: batch hook is also installed.
        self._invariant_hook: Optional[Callable[[float, float], None]] = None
        #: Optional per-batch invariant hook ``fn(now, first_time, count)``
        #: called once per dispatched batch (supersedes the per-event hook
        #: in the batch loop). See :meth:`attach_batch_invariant_hook`.
        self._batch_invariant_hook: Optional[Callable[[float, float, int], None]] = None

    def attach_obs(self, obs) -> None:
        """Attach an observability context (see :mod:`repro.obs`)."""
        self._obs = obs

    def attach_invariant_hook(self, hook: Optional[Callable[[float, float], None]]) -> None:
        """Install (or clear, with ``None``) the per-event invariant hook.

        The hook runs *before* ``now`` advances and may raise — an
        :class:`~repro.errors.InvariantError` propagates out of :meth:`run`
        with the clock still at the pre-event time. Installing a
        per-event hook without a batch hook sends :meth:`run` through the
        per-event reference loop, so the per-event contract is exact (at
        per-event dispatch cost — attach a batch hook via
        :meth:`attach_batch_invariant_hook` to stay on the fast loop).
        """
        self._invariant_hook = hook

    def attach_batch_invariant_hook(
        self, hook: Optional[Callable[[float, float, int], None]]
    ) -> None:
        """Install (or clear) the batched invariant hook.

        ``hook(now, first_time, count)`` fires once per dispatched batch:
        ``now`` is the clock before the batch, ``first_time`` the first
        event's time, ``count`` how many live events dispatched. Because
        every batch is a sorted run, checking ``first_time >= now``
        certifies clock monotonicity for the whole batch — the same law
        the per-event hook enforces, at 1/len(batch) the cost. Slow-path
        (overflow/singleton) events report as batches of one, *before*
        their callback runs; full batches report at the batch boundary,
        i.e. a law violated mid-batch is detected at the end of that
        bucket rather than between events.
        """
        self._batch_invariant_hook = hook

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self.now:.6f}"
            )
        return self._queue.push(time, callback, args)

    def schedule_transient(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule a fire-and-forget callback whose Event is pool-recycled.

        The returned event object is returned to the event pool right
        after its callback runs; the caller MUST NOT retain the reference
        past dispatch (see the recycle contract in ``docs/PERFORMANCE.md``).
        Use for high-volume per-packet events nobody ever cancels — link
        serialization completions, deliveries.

        ``cancel()`` on the returned event *before* it fires is safe: the
        cancel demotes the event to a regular (non-pooled) one, so the
        retained handle can never alias a recycled object. Cancelling
        after dispatch remains undefined — by then the object may already
        be filed as a different event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args, transient=True)

    def schedule_at_transient(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Absolute-time variant of :meth:`schedule_transient`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self.now:.6f}"
            )
        return self._queue.push(time, callback, args, transient=True)

    def schedule_transient_bulk(self, items) -> None:
        """File a whole window of transient events in one queue sweep.

        ``items`` is a sequence of ``(time, callback, args)`` with
        *absolute* times, each ``>= self.now`` (the caller computed them
        from ``now`` plus non-negative offsets — e.g. a vectorized link
        sweep). The per-packet recycle contract of
        :meth:`schedule_transient` applies: no handles, no cancels.
        """
        self._queue.push_bulk(items)

    def reschedule(
        self, event: Optional[Event], delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Cancel ``event`` (if still pending) and arm a replacement timer.

        The cancel-or-reschedule idiom every transport timer uses —
        ``conn._rto_event = sim.reschedule(conn._rto_event, rto, fire)`` —
        with the cancel bookkeeping in one place. ``event`` may be
        ``None`` or already fired/cancelled; both are no-ops.
        """
        if event is not None and not event.cancelled:
            event.cancel()
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event. Safe to call more than once."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in order until the queue drains or limits are hit.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time. The clock is advanced
            to ``until`` even if no event fires exactly then, so repeated
            ``run(until=...)`` calls behave like contiguous epochs — but only
            when the queue was actually drained up to ``until``. If the run
            stops early (``max_events`` reached, or :meth:`stop` called)
            while events earlier than ``until`` are still pending, the clock
            stays at the last processed event so a later ``run`` never moves
            it backwards.
        max_events:
            Safety valve for runaway event cascades in tests.

        This is the batch loop: one slow queue sweep per loaded bucket,
        then a tight walk over the bucket's sorted entries. Mid-batch
        schedules merge into the live window (dispatch order stays
        bit-for-bit the heap order — see ``tests/test_sim_wheel.py``),
        ``stop()`` is honored per event, and a callback exception leaves
        the queue exactly as the per-event loop would (the failing event
        consumed, the cursor and live/dead counts settled).
        """
        if self._invariant_hook is not None and self._batch_invariant_hook is None:
            # Legacy per-event hook: honor its exact contract on the
            # reference loop rather than approximating it per batch.
            return self.run_per_event(until, max_events)
        if type(self._queue) is not EventQueue:
            # A swapped-in queue (HeapEventQueue cross-checks, test
            # doubles) has no wheel to batch-drain: serve it with the
            # per-event reference loop instead of reaching into
            # internals it does not have.
            return self.run_per_event(until, max_events)
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stop_requested = False
        queue = self._queue
        wheel = queue._wheel
        pool = queue._pool
        free = pool._free
        max_free = pool.max_free
        overflow = queue._overflow
        granularity = wheel.granularity
        batch_check = self._batch_invariant_hook
        processed = 0
        released = 0
        drained = False
        try:
            while not self._stop_requested:
                drain = wheel._drain
                pos = wheel._drain_pos
                n = len(drain)
                if pos >= n or (overflow and not drain[pos] < overflow[0]):
                    # Slow path: bucket exhausted, or the overflow head
                    # interleaves. One classic fused pop.
                    event = queue.pop_next(until)
                    if event is None:
                        drained = True
                        break
                    if batch_check is not None:
                        batch_check(self.now, event.time, 1)
                    self.now = event.time
                    event.callback(*event.args)
                    if event.transient and len(free) < max_free:
                        event.callback = None
                        event.args = ()
                        event._queue = None
                        free.append(event)
                        released += 1
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        break
                    continue
                # Fast path: dispatch the eligible prefix of the loaded
                # bucket. The bound indices are computed once; mid-batch
                # inserts can only shift entries rightwards past the
                # bound, where the next outer iteration picks them up in
                # order (an insert *before* the cursor is impossible:
                # new entries carry a larger seq and a time >= now).
                bound = n
                if overflow:
                    cut = bisect_left(drain, overflow[0], lo=pos)
                    if cut < bound:
                        bound = cut
                if until is not None and until < (wheel._drain_tick + 1) * granularity:
                    cut = bisect_right(drain, (until, _INF), lo=pos)
                    if cut < bound:
                        bound = cut
                    if cut == pos:
                        # Everything left in this bucket (and hence in
                        # the whole queue) is beyond the epoch.
                        drained = True
                        break
                if max_events is not None:
                    cut = pos + (max_events - processed)
                    if cut < bound:
                        bound = cut
                if bound <= pos:
                    # Overflow head precedes the bucket: slow pop serves it.
                    event = queue.pop_next(until)
                    if event is None:
                        drained = True
                        break
                    if batch_check is not None:
                        batch_check(self.now, event.time, 1)
                    self.now = event.time
                    event.callback(*event.args)
                    if event.transient and len(free) < max_free:
                        event.callback = None
                        event.args = ()
                        event._queue = None
                        free.append(event)
                        released += 1
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        break
                    continue
                start = pos
                start_now = self.now
                first_time = drain[pos][0]
                dead_delta = 0
                queue._in_batch = True
                try:
                    while pos < bound:
                        entry = drain[pos]
                        pos += 1
                        event = entry[2]
                        if event.cancelled:
                            dead_delta += 1
                            event._queue = None
                            if event.transient and len(free) < max_free:
                                event.callback = None
                                event.args = ()
                                free.append(event)
                                released += 1
                            continue
                        event._queue = None
                        self.now = entry[0]
                        event.callback(*event.args)
                        if event.transient and len(free) < max_free:
                            event.callback = None
                            event.args = ()
                            event._queue = None
                            free.append(event)
                            released += 1
                        if self._stop_requested:
                            break
                finally:
                    # Exception-safe writeback: whatever happened, the
                    # cursor and the live/dead counts reflect exactly the
                    # entries consumed — same queue state the per-event
                    # loop would leave behind.
                    wheel._drain_pos = pos
                    queue._dead -= dead_delta
                    live_done = pos - start - dead_delta
                    queue._live -= live_done
                    processed += live_done
                    queue._in_batch = False
                    if queue._compact_pending:
                        queue._compact_pending = False
                        if (
                            queue._dead >= queue.compact_min_dead
                            and queue._dead > queue._live
                        ):
                            queue._compact()
                if batch_check is not None and live_done:
                    batch_check(start_now, first_time, live_done)
                if max_events is not None and processed >= max_events:
                    break
            if until is not None and drained and until > self.now:
                self.now = until
        finally:
            self._running = False
            pool.released += released
            self.events_processed += processed
            obs = self._obs
            if obs is not None and processed:
                obs.registry.counter("sim.events_processed").add(processed)

    def run_per_event(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """The classic one-pop-per-event loop (reference implementation).

        Semantically identical to :meth:`run` — the hypothesis suite in
        ``tests/test_sim_wheel.py`` holds the two to bit-for-bit equal
        dispatch records — but pays the full queue sweep for every
        event. :meth:`run` routes here when a per-event invariant hook
        is attached without a batch hook; it is also the loop the batch
        path is benchmarked against.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stop_requested = False
        processed_this_run = 0
        drained = False
        pop_next = self._queue.pop_next
        # Pool-less queues (HeapEventQueue cross-checks) disable the
        # transient-recycle branch by making its guard always false.
        pool = getattr(self._queue, "pool", None)
        free = pool._free if pool is not None else ()
        max_free = pool.max_free if pool is not None else 0
        check = self._invariant_hook
        batch_check = self._batch_invariant_hook
        try:
            while not self._stop_requested:
                event = pop_next(until)
                if event is None:
                    drained = True
                    break
                if check is not None:
                    check(self.now, event.time)
                if batch_check is not None:
                    batch_check(self.now, event.time, 1)
                self.now = event.time
                event.callback(*event.args)
                if event.transient and len(free) < max_free:
                    # Inlined EventPool.release: per-event call overhead
                    # on the dispatch hot path is worth avoiding.
                    event.callback = None
                    event.args = ()
                    event._queue = None
                    free.append(event)
                    pool.released += 1
                self.events_processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
            if until is not None and drained and until > self.now:
                self.now = until
        finally:
            self._running = False
            obs = self._obs
            if obs is not None and processed_this_run:
                obs.registry.counter("sim.events_processed").add(processed_this_run)

    def stop(self) -> None:
        """Request the current ``run`` to return after the active event."""
        self._stop_requested = True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Inside a batch this is settled at batch boundaries: a callback
        reading it mid-batch may see already-dispatched batchmates still
        counted. Use for post-run assertions, not mid-batch control flow.
        """
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} pending={self.pending_events}>"
