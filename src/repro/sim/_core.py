"""Typed hot-loop kernels — the compilation unit for the optional compiled core.

Every function here is written in the restricted, fully-annotated style
mypyc compiles well: concrete containers, no closures, no dynamic
attribute magic, no module-level state. The pure-Python definitions in
this file *are* the fallback — the selector (:mod:`repro.sim.core`)
imports either this source module or its mypyc-built extension (which
shadows the ``.py`` with a ``.so``/``.pyd`` of the same name), so the
two implementations cannot drift: they are the same source, and the
hypothesis equivalence suite runs against whichever is active.

These are *batch-granularity* boundaries on purpose. The per-event hot
paths (``EventQueue.push``, the kernel's inner dispatch loop) keep
their inlined pure-Python form because a function-call boundary per
event would cost the uncompiled build more than the compiled build
gains; the loops below are each paid once per sweep window, bucket
walk, or wheel filing.

Build: ``python tools/build_core.py`` (needs ``mypy`` — which ships
mypyc — and a C toolchain). Select at import: ``REPRO_COMPILED=0|1|auto``
(see :mod:`repro.sim.core` and ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from bisect import insort
from heapq import heappush
from typing import Any, Dict, List, Tuple


def sweep_times(
    sizes: List[int], rate: float, now: float
) -> Tuple[List[float], List[float]]:
    """Per-packet tx times and cumulative finish instants for a sweep window.

    The scalar twin of the numpy path in
    :meth:`repro.net.link.LinkBatch.compute`: each tx is
    ``size * 8 / rate`` and finish instants accumulate sequentially, so
    the results round bit-for-bit like the per-packet event chain they
    replace.
    """
    tx_times: List[float] = []
    finish_times: List[float] = []
    acc = now
    for size in sizes:
        tx = size * 8.0 / rate
        acc += tx
        tx_times.append(tx)
        finish_times.append(acc)
    return tx_times, finish_times


def wheel_file(
    drain: List[Any],
    drain_pos: int,
    drain_tick: int,
    base_tick: int,
    horizon_ticks: int,
    buckets: Dict[int, List[Any]],
    tick_heap: List[int],
    entry: Any,
    tick: int,
) -> int:
    """File one ``(time, seq, event)`` entry into the wheel's structures.

    Returns ``0`` when merged into the draining run, ``1`` when filed in
    a future bucket (the caller bumps its bucket-entry counter), ``-1``
    when the tick lies beyond the horizon (the caller's overflow heap
    takes it). Mirrors the filing logic inlined in
    :meth:`repro.sim.events.EventQueue.push`.
    """
    if tick <= drain_tick:
        if not drain or entry >= drain[-1]:
            drain.append(entry)
        else:
            insort(drain, entry, lo=drain_pos)
        return 0
    if tick - base_tick > horizon_ticks:
        return -1
    bucket = buckets.get(tick)
    if bucket is None:
        buckets[tick] = [entry]
        heappush(tick_heap, tick)
    else:
        bucket.append(entry)
    return 1


def drain_batch(
    drain: List[Any],
    pos: int,
    bound_time: float,
    inclusive: bool,
    ocut: Any,
    limit: int,
) -> Tuple[int, List[Any], List[Any]]:
    """Collect the eligible live prefix of a loaded, sorted drain bucket.

    Walks ``drain`` from ``pos`` up to the first entry at/beyond
    ``bound_time`` (``inclusive`` keeps entries equal to the bound), the
    overflow head ``ocut`` (an entry tuple, or ``None``), or ``limit``
    live events (negative = unbounded). Returns ``(new_pos,
    live_events, dead_events)``; the caller settles queue bookkeeping
    for both lists. This is the walk behind
    :meth:`repro.sim.events.EventQueue.pop_bucket`.
    """
    batch: List[Any] = []
    dead: List[Any] = []
    n = len(drain)
    while pos < n:
        entry = drain[pos]
        event = entry[2]
        if event.cancelled:
            pos += 1
            dead.append(event)
            continue
        t = entry[0]
        if inclusive:
            if t > bound_time:
                break
        elif t >= bound_time:
            break
        if ocut is not None and not entry < ocut:
            break
        pos += 1
        batch.append(event)
        if 0 <= limit <= len(batch):
            break
    return pos, batch, dead
