"""Timer conveniences built on the kernel."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event
from repro.sim.kernel import Simulator


class PeriodicTimer:
    """Fires ``callback()`` every ``interval`` seconds until stopped.

    The next firing is scheduled *after* the callback runs, so a callback may
    adjust :attr:`interval` (e.g. adaptive pacing) or call :meth:`stop`.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self._event: Optional[Event] = None
        self._stopped = False
        first = interval if start_delay is None else start_delay
        self._event = sim.schedule(first, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback()
        if not self._stopped:
            self._event = self.sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        """Cancel any pending firing. Idempotent."""
        self._stopped = True
        if self._event is not None and not self._event.cancelled:
            self.sim.cancel(self._event)
        self._event = None

    @property
    def active(self) -> bool:
        """Whether the timer will fire again."""
        return not self._stopped
