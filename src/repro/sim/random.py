"""Named, reproducible random streams.

Different subsystems (trace generation, loss models, page corpus, ...) each
draw from their own stream so that adding randomness to one subsystem never
perturbs another. Streams are derived deterministically from a scenario seed
and a stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of independent ``random.Random`` instances.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.stream("loss")
    >>> b = streams.stream("loss")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive(name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        return RandomStreams(self._derive(f"fork:{name}"))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")
