"""Composable, declarative fault schedules.

A :class:`FaultSchedule` is an ordered set of :class:`Fault` records — plain
data, picklable and hashable, so experiments can put schedules into
:class:`~repro.runner.RunUnit` parameters and the result cache keys stay
content-addressed. The :class:`~repro.faults.injector.FaultInjector` turns a
schedule into simulator events against a live network.

Fault kinds (severity semantics per kind):

========== =========================================================
kind        meaning
========== =========================================================
outage      channel administratively down for ``duration``
blackout    outage that also *flushes* the channel's queued packets on
            entry (handover semantics: the old cell's buffers are gone)
loss_burst  extra Bernoulli loss of ``severity`` on both directions
rtt_spike   ``severity`` seconds added to both one-way delays
capacity    both direction rates multiplied by ``severity`` (< 1)
========== =========================================================

Schedules compose: builder calls append and may overlap freely (outages are
reference-counted by the channel; loss bursts stack probabilistically;
capacity factors multiply). :meth:`FaultSchedule.random` draws a seeded
random schedule — the deterministic "weather" used by the resilience
experiments.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (traces ↔ faults)
    from repro.traces.model import NetworkTrace

from repro.errors import ScenarioError

#: Valid fault kinds.
KINDS = ("outage", "blackout", "loss_burst", "rtt_spike", "capacity")


@dataclass(frozen=True, order=True)
class Fault:
    """One scheduled fault against one channel (plain data, picklable)."""

    start: float
    channel: str
    kind: str
    duration: float
    severity: float = 0.0

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ScenarioError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(KINDS)}"
            )
        if self.start < 0:
            raise ScenarioError(f"fault start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ScenarioError(f"fault duration must be positive, got {self.duration}")
        if self.kind == "loss_burst" and not 0.0 < self.severity < 1.0:
            raise ScenarioError(f"loss_burst severity must be in (0,1), got {self.severity}")
        if self.kind == "rtt_spike" and self.severity <= 0:
            raise ScenarioError(f"rtt_spike severity must be positive, got {self.severity}")
        if self.kind == "capacity" and not 0.0 < self.severity < 1.0:
            # A full stall is an outage; keeping the factor positive lets
            # overlapping collapses stack multiplicatively and revert cleanly.
            raise ScenarioError(f"capacity severity must be in (0,1), got {self.severity}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def describe(self) -> str:
        extra = f" sev={self.severity:g}" if self.severity else ""
        return f"{self.kind}@{self.channel} [{self.start:g},{self.end:g}){extra}"


class FaultSchedule:
    """An ordered, composable collection of faults."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults: List[Fault] = []
        for fault in faults:
            fault.validate()
            self.faults.append(fault)
        self.faults.sort()

    # -- builders (chainable) -------------------------------------------
    def _add(self, fault: Fault) -> "FaultSchedule":
        fault.validate()
        self.faults.append(fault)
        self.faults.sort()
        return self

    def outage(self, channel: str, start: float, duration: float) -> "FaultSchedule":
        """Channel down over ``[start, start+duration)``."""
        return self._add(Fault(start, channel, "outage", duration))

    def blackout(self, channel: str, start: float, duration: float) -> "FaultSchedule":
        """Handover blackout: outage + queued packets flushed on entry."""
        return self._add(Fault(start, channel, "blackout", duration))

    def loss_burst(
        self, channel: str, start: float, duration: float, loss: float = 0.3
    ) -> "FaultSchedule":
        """Extra Bernoulli loss probability on both directions."""
        return self._add(Fault(start, channel, "loss_burst", duration, loss))

    def rtt_spike(
        self, channel: str, start: float, duration: float, extra_delay: float = 0.1
    ) -> "FaultSchedule":
        """``extra_delay`` seconds added to each one-way propagation delay."""
        return self._add(Fault(start, channel, "rtt_spike", duration, extra_delay))

    def capacity_collapse(
        self, channel: str, start: float, duration: float, factor: float = 0.1
    ) -> "FaultSchedule":
        """Rates multiplied by ``factor`` in (0, 1); use an outage to stall."""
        return self._add(Fault(start, channel, "capacity", duration, factor))

    def correlated(
        self,
        channels: Sequence[str],
        start: float,
        duration: float,
        kind: str = "outage",
        stagger: float = 0.0,
        severity: float = 0.0,
    ) -> "FaultSchedule":
        """The same fault on several channels, optionally staggered.

        Models shared-fate events (one mast carrying both carriers, a tunnel
        swallowing every radio): ``stagger`` seconds between consecutive
        channels' onsets, 0 for simultaneous failure.
        """
        for i, channel in enumerate(channels):
            self._add(Fault(start + i * stagger, channel, kind, duration, severity))
        return self

    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        """In-place union with another schedule; returns self."""
        for fault in other.faults:
            self._add(fault)
        return self

    # -- inspection ------------------------------------------------------
    def for_channel(self, channel: str) -> List[Fault]:
        return [f for f in self.faults if f.channel == channel]

    @property
    def horizon(self) -> float:
        """Time by which every fault has been reverted."""
        return max((f.end for f in self.faults), default=0.0)

    def to_params(self) -> List[Tuple[float, str, str, float, float]]:
        """Primitive-tuple form, safe inside :class:`RunUnit` params."""
        return [
            (f.start, f.channel, f.kind, f.duration, f.severity) for f in self.faults
        ]

    @classmethod
    def from_params(cls, rows: Iterable[Sequence]) -> "FaultSchedule":
        return cls(Fault(r[0], r[1], r[2], r[3], r[4]) for r in rows)

    def to_json(self) -> str:
        """Stable JSON form; :meth:`from_json` inverts it exactly."""
        rows = [
            {
                "start": f.start,
                "channel": f.channel,
                "kind": f.kind,
                "duration": f.duration,
                "severity": f.severity,
            }
            for f in self.faults
        ]
        return json.dumps({"faults": rows}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            payload = json.loads(text)
            rows = payload["faults"]
            faults = [
                Fault(r["start"], r["channel"], r["kind"], r["duration"], r["severity"])
                for r in rows
            ]
        except (ValueError, TypeError, KeyError) as exc:
            raise ScenarioError(f"malformed fault-schedule JSON: {exc}") from exc
        return cls(faults)

    def clipped(self, horizon: float) -> "FaultSchedule":
        """A new schedule keeping only faults fully reverted by ``horizon``.

        Experiments with short (quick-mode) durations use this to avoid
        arming faults whose revert events would land past the simulation
        end and leave channels administratively down at teardown.
        """
        if horizon <= 0:
            raise ScenarioError(f"clip horizon must be positive, got {horizon}")
        return FaultSchedule(f for f in self.faults if f.end <= horizon)

    # -- trace derivation ------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        trace: "NetworkTrace",
        channel: Optional[str] = None,
        dead_rate_bps: float = 0.0,
        collapse_frac: float = 0.25,
        delay_spike_factor: float = 3.0,
        min_spike_s: float = 0.02,
    ) -> "FaultSchedule":
        """Derive a fault schedule from a trace's discontinuities.

        Dead intervals (rate <= ``dead_rate_bps``) become ``outage`` faults
        aligned exactly to the trace's sample grid; sustained rate collapses
        below ``collapse_frac`` of the healthy median become ``capacity``
        faults; delay excursions above ``delay_spike_factor`` times the
        median one-way delay become ``rtt_spike`` faults. The schedule
        targets ``channel`` (default: the trace's own name), so any catalog
        trace doubles as a fault campaign against a same-named channel.
        """
        from repro.resilience.derive import schedule_from_trace

        return schedule_from_trace(
            trace,
            channel=channel,
            dead_rate_bps=dead_rate_bps,
            collapse_frac=collapse_frac,
            delay_spike_factor=delay_spike_factor,
            min_spike_s=min_spike_s,
            schedule_cls=cls,
        )

    # -- random generation ----------------------------------------------
    @classmethod
    def random(
        cls,
        channels: Sequence[str],
        duration: float,
        seed: int = 0,
        rng: Optional[random.Random] = None,
        outage_rate: float = 0.05,
        outage_mean: float = 1.0,
        loss_burst_rate: float = 0.05,
        loss_burst_mean: float = 2.0,
        loss_burst_severity: float = 0.3,
        rtt_spike_rate: float = 0.0,
        rtt_spike_mean: float = 1.0,
        rtt_spike_delay: float = 0.1,
        blackout_rate: float = 0.0,
        blackout_mean: float = 0.5,
        capacity_rate: float = 0.0,
        capacity_mean: float = 1.0,
        capacity_factor: float = 0.2,
    ) -> "FaultSchedule":
        """Draw a Poisson fault process per channel, deterministically.

        ``*_rate`` are events per second; ``*_mean`` the mean of the
        exponential duration. The same ``seed`` always produces the same
        schedule — random weather, reproducible runs. Blackout and capacity
        processes default to off so existing callers' draws are unchanged.
        """
        if duration <= 0:
            raise ScenarioError(f"schedule duration must be positive, got {duration}")
        rng = rng if rng is not None else random.Random(seed)
        schedule = cls()
        for channel in channels:
            for rate, mean, kind, severity in (
                (outage_rate, outage_mean, "outage", 0.0),
                (loss_burst_rate, loss_burst_mean, "loss_burst", loss_burst_severity),
                (rtt_spike_rate, rtt_spike_mean, "rtt_spike", rtt_spike_delay),
                (blackout_rate, blackout_mean, "blackout", 0.0),
                (capacity_rate, capacity_mean, "capacity", capacity_factor),
            ):
                if rate <= 0:
                    continue
                t = rng.expovariate(rate)
                while t < duration:
                    length = max(1e-3, rng.expovariate(1.0 / mean))
                    schedule._add(Fault(t, channel, kind, length, severity))
                    t += length + rng.expovariate(rate)
        return schedule

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule {len(self.faults)} faults horizon={self.horizon:g}s>"
