"""Applying a :class:`FaultSchedule` to a live network, deterministically.

The injector turns declarative faults into ordinary simulator callbacks —
the same mechanism :class:`~repro.net.dynamics.ChannelTimeline` uses, so
injected faults compose with scripted timelines, traces and everything
else. Every apply/revert is recorded (for inspection and tests) and counted
into the network's metrics registry when one is attached.

State discipline per fault kind:

* ``outage``/``blackout`` — :meth:`Channel.fail` on entry,
  :meth:`Channel.restore` on exit; the channel's reference counting makes
  overlapping outages compose. A blackout additionally flushes both
  directions' queues on entry.
* ``loss_burst`` — a :class:`FaultLossOverlay` is installed (lazily, once)
  over the link's own loss model; each active burst pushes its probability,
  so overlapping bursts combine as independent processes.
* ``rtt_spike`` — adds to :attr:`Link.delay_offset` on entry, subtracts on
  exit (additive, so spikes stack).
* ``capacity`` — multiplies :attr:`Link.rate_factor` on entry, divides on
  exit (multiplicative, so collapses stack).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ScenarioError
from repro.net.channel import Channel
from repro.net.link import Link
from repro.net.loss import LossModel
from repro.faults.schedule import Fault, FaultSchedule


class FaultLossOverlay(LossModel):
    """Stacks transient burst-loss probabilities over a base loss model."""

    def __init__(self, base: LossModel) -> None:
        self.base = base
        self.active: List[float] = []

    def push(self, probability: float) -> None:
        self.active.append(probability)

    def pop(self, probability: float) -> None:
        self.active.remove(probability)

    def _extra_rate(self) -> float:
        survive = 1.0
        for p in self.active:
            survive *= 1.0 - p
        return 1.0 - survive

    def should_drop(self, rng: random.Random, now: float) -> bool:
        if self.base.should_drop(rng, now):
            return True
        for p in self.active:
            if rng.random() < p:
                return True
        return False

    @property
    def long_run_rate(self) -> float:
        """Base + active burst loss — steering cost estimates see the burst."""
        base = self.base.long_run_rate
        extra = self._extra_rate()
        return 1.0 - (1.0 - base) * (1.0 - extra)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultLossOverlay({self.base!r}, active={self.active})"


@dataclass
class AppliedFault:
    """One apply or revert action, recorded for inspection."""

    time: float
    action: str  # "apply" | "revert"
    description: str


class FaultInjector:
    """Arms a schedule against an :class:`~repro.core.api.HvcNetwork`."""

    def __init__(self, net, schedule: FaultSchedule, registry=None) -> None:
        self.net = net
        self.schedule = schedule
        self.log: List[AppliedFault] = []
        #: Faults applied but not yet reverted, in apply order. The invariant
        #: monitor audits this against the channels' fault holds and the
        #: links' delay/rate/loss overlays (apply/revert balance law).
        self.active: List[Fault] = []
        self._armed = False
        if registry is None and getattr(net, "obs", None) is not None:
            registry = net.obs.registry
        self.registry = registry

    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Schedule every fault's apply/revert; validates channel names."""
        if self._armed:
            raise ScenarioError("fault schedule already armed")
        self._armed = True
        for fault in self.schedule:
            channel = self.net.channel_named(fault.channel)  # validates name
            if fault.start < self.net.sim.now:
                raise ScenarioError(
                    f"fault {fault.describe()} starts in the past "
                    f"(now={self.net.sim.now})"
                )
            self.net.sim.schedule_at(fault.start, self._apply, fault, channel)
            self.net.sim.schedule_at(fault.end, self._revert, fault, channel)
        return self

    # ------------------------------------------------------------------
    def _count(self, fault: Fault) -> None:
        if self.registry is not None:
            self.registry.counter(
                "faults.injected", kind=fault.kind, channel=fault.channel
            ).inc()

    def _record(self, action: str, fault: Fault) -> None:
        self.log.append(
            AppliedFault(self.net.sim.now, action, fault.describe())
        )

    def _links(self, channel: Channel) -> List[Link]:
        return [channel.uplink, channel.downlink]

    def _overlay_for(self, link: Link) -> FaultLossOverlay:
        if not isinstance(link.loss, FaultLossOverlay):
            link.loss = FaultLossOverlay(link.loss)
        return link.loss

    def _apply(self, fault: Fault, channel: Channel) -> None:
        self._record("apply", fault)
        self._count(fault)
        self.active.append(fault)
        if fault.kind in ("outage", "blackout"):
            if fault.kind == "blackout":
                for link in self._links(channel):
                    link.flush()
            channel.fail()
        elif fault.kind == "loss_burst":
            for link in self._links(channel):
                self._overlay_for(link).push(fault.severity)
        elif fault.kind == "rtt_spike":
            for link in self._links(channel):
                link.delay_offset += fault.severity
        elif fault.kind == "capacity":
            for link in self._links(channel):
                link.rate_factor *= fault.severity

    def _revert(self, fault: Fault, channel: Channel) -> None:
        self._record("revert", fault)
        self.active.remove(fault)
        if fault.kind in ("outage", "blackout"):
            channel.restore()
        elif fault.kind == "loss_burst":
            for link in self._links(channel):
                self._overlay_for(link).pop(fault.severity)
        elif fault.kind == "rtt_spike":
            for link in self._links(channel):
                link.delay_offset -= fault.severity
        elif fault.kind == "capacity":
            for link in self._links(channel):
                link.rate_factor /= fault.severity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector {len(self.schedule)} faults armed={self._armed}>"
