"""Resilience metrics: outage bookkeeping, failovers, time-to-recover.

The tracker observes three independent signal sources and folds them into
the metrics registry (:mod:`repro.obs`):

* **channel transitions** (:attr:`Channel.on_transition`) — outage counts
  and downtime histograms per channel;
* **device send hooks** — *failovers*: a flow's packet leaving on a
  different channel than its previous one while that previous channel is
  down. This is the observable signature of steering routing around a
  fault;
* **device receive hooks** — *forward progress* per flow (a cumulative ACK
  advancing, or a datagram arriving). Recovery time is measured from the
  end of an outage to the first forward progress of each flow that made
  none at all while the outage was in force — flows that kept progressing
  (because failover worked) contribute no recovery sample, which is itself
  the result: good steering makes time-to-recover vanish.

Metric families (all labelled): ``faults.outages``, ``faults.downtime``
(histogram, seconds), ``faults.failovers``, ``faults.recovery_time``
(histogram, seconds). Sends attempted during a total blackout surface as
``device.blackout_drops`` through the device collectors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ScenarioError
from repro.net.packet import PacketType


def recovery_percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of recovery samples (0.0 if empty).

    Matches the trace model's percentile convention (rank over n-1 with
    ``a + f*(b-a)`` interpolation, exact when neighbours are equal) so
    scorecard and trace statistics read on the same scale.
    """
    if not 0 <= q <= 100:
        raise ScenarioError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] + frac * (ordered[high] - ordered[low])


class RecoveryTracker:
    """Wires resilience metrics into a network's data path.

    Attach *before* the run::

        tracker = RecoveryTracker(net)            # uses net.obs registry,
        ...                                       # or its own if none
        net.run(until=...)
        print(tracker.summary())
    """

    #: A flow counts as stalled at outage end if it made no forward progress
    #: for this long. The grace absorbs residual in-flight deliveries that
    #: straggle in just after the outage begins (one propagation delay).
    DEFAULT_STALL_AFTER = 0.25

    def __init__(self, net, registry=None, stall_after: float = DEFAULT_STALL_AFTER) -> None:
        self.net = net
        self.stall_after = stall_after
        if registry is None:
            if getattr(net, "obs", None) is not None:
                registry = net.obs.registry
            else:
                from repro.obs import MetricsRegistry

                registry = MetricsRegistry()
        self.registry = registry

        #: (host, flow) -> highest cumulative ack seen at that host.
        self._best_ack: Dict[tuple, int] = {}
        #: flow -> time of the flow's latest forward progress (either
        #: direction counts — the flow is alive).
        self.last_progress: Dict[int, float] = {}
        #: (host, flow) -> last channel index that host's packets left on.
        #: Keyed per host: the two directions steer independently, and a
        #: client DATA → server ACK ping-pong must not read as a switch.
        self._last_channel: Dict[tuple, int] = {}
        #: flow -> outage-end time awaiting the flow's first progress.
        self._pending_recovery: Dict[int, float] = {}
        #: Start time of the outage currently holding each channel down.
        self._down_since: Dict[int, float] = {}
        #: Recovery samples per flow: (flow, outage_end, recovery_seconds).
        self.recovery_samples: List[tuple] = []
        self.failovers = 0

        for channel in net.channels:
            channel.on_transition.append(self._on_transition)
        for device in (net.client, net.server):
            host = device.name
            device.on_send_hooks.append(
                lambda packet, index, host=host: self._on_send(host, packet, index)
            )
            device.on_receive_hooks.append(
                lambda packet, host=host: self._on_receive(host, packet)
            )

    # ------------------------------------------------------------------
    # Channel transitions → outages, downtime, pending recoveries
    # ------------------------------------------------------------------
    def _on_transition(self, channel, up: bool, now: float) -> None:
        if not up:
            self._down_since[channel.index] = now
            self.registry.counter("faults.outages", channel=channel.name).inc()
            return
        down_at = self._down_since.pop(channel.index, now)
        self.registry.histogram("faults.downtime", channel=channel.name).observe(
            now - down_at
        )
        # Flows that stopped progressing during the outage are stalled;
        # their next progress event closes a recovery interval. Flows that
        # kept progressing (failover worked) contribute no sample.
        for flow, last in self.last_progress.items():
            if now - last >= self.stall_after and flow not in self._pending_recovery:
                self._pending_recovery[flow] = now

    # ------------------------------------------------------------------
    # Send path → failovers
    # ------------------------------------------------------------------
    def _on_send(self, host: str, packet, channel_index: int) -> None:
        key = (host, packet.flow_id)
        previous = self._last_channel.get(key)
        self._last_channel[key] = channel_index
        if previous is None or previous == channel_index:
            return
        if not self.net.channels[previous].up:
            self.failovers += 1
            self.registry.counter(
                "faults.failovers",
                from_channel=self.net.channels[previous].name,
                to_channel=self.net.channels[channel_index].name,
            ).inc()

    # ------------------------------------------------------------------
    # Receive path → forward progress, recovery intervals
    # ------------------------------------------------------------------
    def _on_receive(self, host: str, packet) -> None:
        flow = packet.flow_id
        progressed = False
        if packet.ptype == PacketType.ACK:
            key = (host, flow)
            best = self._best_ack.get(key, 0)
            if packet.ack_seq > best:
                self._best_ack[key] = packet.ack_seq
                progressed = True
        elif packet.ptype in (PacketType.DATA, PacketType.DATAGRAM):
            progressed = True
        if not progressed:
            return
        now = self.net.sim.now
        self.last_progress[flow] = now
        recovery_from = self._pending_recovery.pop(flow, None)
        if recovery_from is not None:
            elapsed = now - recovery_from
            self.recovery_samples.append((flow, recovery_from, elapsed))
            self.registry.histogram("faults.recovery_time", flow=flow).observe(elapsed)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Scalar resilience results, picklable for runner payloads."""
        recoveries = [sample[2] for sample in self.recovery_samples]
        outages = sum(channel.outage_count for channel in self.net.channels)
        return {
            "outages": outages,
            "downtime_s": round(
                sum(channel.downtime_total for channel in self.net.channels), 9
            ),
            "failovers": self.failovers,
            "recovery_samples": len(recoveries),
            "recovery_max_s": round(max(recoveries), 9) if recoveries else 0.0,
            "recovery_mean_s": (
                round(sum(recoveries) / len(recoveries), 9) if recoveries else 0.0
            ),
            "recovery_p50_s": round(recovery_percentile(recoveries, 50.0), 9),
            "recovery_p99_s": round(recovery_percentile(recoveries, 99.0), 9),
        }

    def recovery_by_flow(self) -> Dict[int, List[float]]:
        """Recovery samples grouped per flow id (for per-class SLO grading)."""
        out: Dict[int, List[float]] = {}
        for flow, _start, elapsed in self.recovery_samples:
            out.setdefault(flow, []).append(elapsed)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RecoveryTracker failovers={self.failovers} "
            f"recoveries={len(self.recovery_samples)}>"
        )
