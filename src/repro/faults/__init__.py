"""repro.faults — deterministic fault injection and resilience metrics.

The reliability half of the paper's argument (§3.2): URLLC exists because
channels fail in ways applications care about. This package scripts those
failures and measures how the stack reacts::

    from repro.faults import FaultSchedule, FaultInjector, RecoveryTracker

    schedule = (
        FaultSchedule()
        .outage("embb", start=5.0, duration=2.0)
        .loss_burst("urllc", start=4.0, duration=4.0, loss=0.3)
    )
    tracker = RecoveryTracker(net)
    FaultInjector(net, schedule).arm()
    net.run(until=20.0)
    print(tracker.summary())   # outages, failovers, time-to-recover

Schedules are plain data (picklable, cache-hashable); injection is ordinary
simulator events, so runs stay deterministic and the runner cache applies.
``python -m repro faults`` sweeps outage durations across CCAs × steering
policies and reports time-to-recover per cell.
"""

from repro.faults.injector import AppliedFault, FaultInjector, FaultLossOverlay
from repro.faults.recovery import RecoveryTracker
from repro.faults.schedule import KINDS, Fault, FaultSchedule

__all__ = [
    "AppliedFault",
    "Fault",
    "FaultInjector",
    "FaultLossOverlay",
    "FaultSchedule",
    "KINDS",
    "RecoveryTracker",
]
