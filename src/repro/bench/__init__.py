"""Benchmark trajectory harness: ``python -m repro bench run|compare``.

The harness executes a small set of in-process workloads (the kernel
microbench churn, a cancel-heavy pacing pattern, and the fig1a macro
simulation), normalizes their events/s against a machine-calibration
loop, and appends the results to the committed
``benchmarks/TRAJECTORY.json``. ``bench compare`` re-runs the workloads
(or compares two stored entries) and exits nonzero when any workload's
*normalized* events/s regressed more than ``--max-regress`` percent
against the stored baseline — the CI gate that keeps the event kernel's
performance trajectory monotone.

See ``docs/PERFORMANCE.md`` for how to run and read the output.
"""

from repro.bench.trajectory import (
    ComparisonRow,
    append_entry,
    compare_entries,
    default_trajectory_path,
    load_trajectory,
    save_trajectory,
)
from repro.bench.workloads import WORKLOADS, calibrate, run_workload, run_workloads

__all__ = [
    "ComparisonRow",
    "WORKLOADS",
    "append_entry",
    "calibrate",
    "compare_entries",
    "default_trajectory_path",
    "load_trajectory",
    "run_workload",
    "run_workloads",
    "save_trajectory",
]
