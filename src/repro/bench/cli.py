"""``python -m repro bench run|compare`` — the trajectory harness CLI.

``run`` executes the benchmark workloads and appends a labelled entry to
``benchmarks/TRAJECTORY.json``. ``compare`` measures the workloads again
(or pits two stored entries against each other with ``--current``) and
exits 1 when any workload's normalized events/s fell more than
``--max-regress`` percent below the baseline entry.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.trajectory import (
    append_entry,
    compare_entries,
    default_trajectory_path,
    find_entry,
    load_trajectory,
    save_trajectory,
)
from repro.bench.workloads import WORKLOADS, calibrate, run_workloads


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark trajectory harness (see docs/PERFORMANCE.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="measure workloads and append a trajectory entry")
    compare = sub.add_parser("compare", help="gate current performance against a baseline entry")

    for p in (run, compare):
        p.add_argument("--quick", action="store_true", help="reduced-scale workloads")
        p.add_argument(
            "--workloads",
            default=None,
            metavar="A,B",
            help=f"subset to run (default: all of {','.join(sorted(WORKLOADS))})",
        )
        p.add_argument(
            "--trajectory",
            default=None,
            metavar="PATH",
            help="trajectory file (default: benchmarks/TRAJECTORY.json or $REPRO_TRAJECTORY)",
        )

    run.add_argument("--label", default="run", help="entry label (e.g. pre-pr, post-pr)")
    run.add_argument(
        "--no-append",
        action="store_true",
        help="print the measurements without touching the trajectory file",
    )

    compare.add_argument(
        "--baseline",
        default=None,
        metavar="LABEL",
        help="baseline entry label (default: last entry in the file)",
    )
    compare.add_argument(
        "--current",
        default=None,
        metavar="LABEL",
        help="compare a stored entry instead of re-measuring now",
    )
    compare.add_argument(
        "--max-regress",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail when normalized events/s drops more than PCT%% (default: 10)",
    )
    compare.add_argument(
        "--labels",
        action="store_true",
        help="list the stored trajectory entries (label, commit, workloads) and exit",
    )
    return parser


def _selected(args: argparse.Namespace) -> Optional[List[str]]:
    if args.workloads is None:
        return None
    names = [w.strip() for w in args.workloads.split(",") if w.strip()]
    for name in names:
        if name not in WORKLOADS:
            raise SystemExit(
                f"unknown workload {name!r}; known: {', '.join(sorted(WORKLOADS))}"
            )
    return names


def _measure(args: argparse.Namespace):
    names = _selected(args)
    # Calibrate before AND after the workloads and keep the max: workload
    # timing is best-of-N (peak machine speed), so the divisor must be the
    # peak too — a single calibration snapshot taken during a load spike
    # makes every workload look artificially fast (and vice versa).
    calib = calibrate()
    results = run_workloads(names, quick=args.quick)
    calib = max(calib, calibrate())
    return results, calib


def _print_results(results, calib) -> None:
    print(f"calibration: {calib:,.0f} ops/s")
    for name in sorted(results):
        rec = results[name]
        eps = rec.get("events_per_second")
        extras = [
            f"{key}={rec[key]}"
            for key in ("alloc_peak_kb", "max_queue_entries")
            if key in rec
        ]
        print(
            f"  {name:<10} {rec['events']:>9} events in {rec['wall_seconds']:8.3f}s"
            f" = {eps:>12,.0f} ev/s  {' '.join(extras)}"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    path = Path(args.trajectory) if args.trajectory else default_trajectory_path()
    if not args.no_append:
        # Validate the file *before* spending minutes measuring.
        try:
            load_trajectory(path)
        except ValueError as exc:
            print(f"bench run: {exc}", file=sys.stderr)
            return 2
    results, calib = _measure(args)
    _print_results(results, calib)
    if args.no_append:
        return 0
    trajectory = load_trajectory(path)
    append_entry(trajectory, args.label, results, calib, quick=args.quick)
    save_trajectory(trajectory, path)
    print(f"appended entry {args.label!r} to {path} ({len(trajectory['entries'])} entries)")
    return 0


def _cmd_labels(trajectory, path: Path) -> int:
    entries = trajectory.get("entries", [])
    if not entries:
        print(f"{path}: no entries")
        return 0
    print(f"{path}: {len(entries)} entries")
    for entry in entries:
        commit = entry.get("commit") or (
            "dirty-tree" if entry.get("dirty") else "unknown"
        )
        quick = " quick" if entry.get("quick") else ""
        workloads = ",".join(sorted(entry.get("results", {})))
        print(
            f"  {entry.get('label', '?'):<12} commit={commit:<12}{quick}"
            f" workloads={workloads}"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    path = Path(args.trajectory) if args.trajectory else default_trajectory_path()
    try:
        trajectory = load_trajectory(path)
    except ValueError as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 2
    if args.labels:
        return _cmd_labels(trajectory, path)
    try:
        baseline = find_entry(trajectory, args.baseline)
    except LookupError:
        # A fresh branch/CI run simply has no baseline recorded yet —
        # that is not a perf failure, so say so clearly and pass the gate.
        wanted = f"labelled {args.baseline!r} " if args.baseline else ""
        print(
            f"bench compare: no baseline entry {wanted}in {path} — nothing to "
            f"gate against yet. Record one with `python -m repro bench run "
            f"--label {args.baseline or 'post-pr'}` and commit the file.",
        )
        return 0
    if args.current is not None:
        try:
            current = find_entry(trajectory, args.current)
        except LookupError as exc:
            print(f"bench compare: {exc}", file=sys.stderr)
            return 2
    else:
        results, calib = _measure(args)
        current = {
            "label": "(measured now)",
            "calibration_ops_per_second": calib,
            "results": results,
        }
    rows = compare_entries(baseline, current, max_regress_pct=args.max_regress)
    if not rows:
        print("bench compare: no comparable workloads between entries", file=sys.stderr)
        return 2
    print(
        f"baseline {baseline['label']!r} vs current {current['label']!r} "
        f"(gate: -{args.max_regress:g}% normalized)"
    )
    for row in rows:
        print(row.render())
    regressed = [row for row in rows if row.regressed]
    if regressed:
        names = ", ".join(row.name for row in regressed)
        print(f"FAIL: regression beyond {args.max_regress:g}% in: {names}")
        return 1
    print("ok: no workload regressed beyond the gate")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_compare(args)


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro bench`
    sys.exit(main())
