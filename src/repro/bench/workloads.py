"""The benchmark workloads the trajectory harness executes.

Each workload is a deterministic, self-contained function that exercises
one hot path of the simulator and returns a normalized record::

    {"events": int, "wall_seconds": float, "events_per_second": float,
     "alloc_peak_kb": float, ...}

Timing and allocation are measured in *separate* passes — ``tracemalloc``
roughly doubles the cost of allocation-heavy code, so folding it into the
timed pass would understate events/s by a machine-dependent factor.

``calibrate()`` measures a fixed pure-Python loop and returns its ops/s;
dividing a workload's events/s by the calibration ops/s gives a roughly
machine-independent number, which is what ``bench compare`` gates on (the
committed baseline may have been recorded on different hardware than the
CI box re-checking it).
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Any, Callable, Dict, Iterable, List, Optional


def calibrate(rounds: int = 3, loop: int = 1_000_000) -> float:
    """Ops/s of a fixed arithmetic loop (best of ``rounds``)."""
    best = 0.0
    for _ in range(rounds):
        acc = 0
        start = time.perf_counter()
        for i in range(loop):
            acc += i & 7
        elapsed = time.perf_counter() - start
        assert acc  # keep the loop un-optimizable
        best = max(best, loop / elapsed)
    return best


def _noop() -> None:
    return None


#: Timed passes per workload; the best (lowest-wall) pass is reported.
#: The workloads are deterministic, so repeated passes measure the same
#: work — the minimum filters out scheduler noise on busy machines.
TIMING_ROUNDS = 3

#: The macro (fig1a) workload gets more, shorter rounds: its wall time per
#: round is the longest, so a single load burst can poison every pass of a
#: short best-of — more rounds mean more chances to land in a quiet window.
MACRO_TIMING_ROUNDS = 5


def _timed_best(run: Callable[[], Dict[str, Any]], rounds: int = TIMING_ROUNDS):
    """Run ``run`` ``rounds`` times; return (last output, best wall time)."""
    best = float("inf")
    out: Dict[str, Any] = {}
    for _ in range(rounds):
        start = time.perf_counter()
        out = run()
        wall = time.perf_counter() - start
        if wall < best:
            best = wall
    return out, best


class _ChurnTimer:
    """A self-rescheduling timer: the canonical kernel event pattern.

    Every fifth firing also schedules-then-cancels a decoy event so the
    queue carries a realistic fraction of dead entries (pacing timers,
    RTO re-arms).
    """

    __slots__ = ("sim", "delays", "index")

    def __init__(self, sim, delays, index) -> None:
        self.sim = sim
        self.delays = delays
        self.index = index

    def fire(self) -> None:
        sim = self.sim
        index = self.index = self.index + 1
        delay = self.delays[index % 7]
        if index % 5 == 0:
            sim.cancel(sim.schedule(delay * 3.0, _noop))
        sim.schedule(delay, self.fire)


def _run_kernel_churn(total_events: int) -> Dict[str, Any]:
    from repro.sim.kernel import Simulator

    sim = Simulator()
    delays = (0.0001, 0.0004, 0.0011, 0.0002, 0.0031, 0.0007, 0.0017)
    for i in range(64):
        timer = _ChurnTimer(sim, delays, i)
        sim.schedule(delays[i % 7] * (1 + i % 3), timer.fire)
    sim.run(max_events=total_events)
    return {"events": sim.events_processed}


def workload_kernel(quick: bool = False) -> Dict[str, Any]:
    """Kernel schedule/dispatch churn through ``Simulator.run``."""
    total = 40_000 if quick else 300_000
    out, wall = _timed_best(lambda: _run_kernel_churn(total))
    record = _finalize(out["events"], wall)
    record.update(_alloc_pass(lambda: _run_kernel_churn(total)))
    return record


class _PacingChurn:
    """Cancel-heavy pacing pattern: every send re-arms two timers.

    Each driver firing cancels the previous pacing and RTO timers and
    schedules fresh ones further out — the transport's steady state. The
    cancelled events are dead weight the queue must not retain forever.
    """

    __slots__ = ("sim", "pacing", "rto", "fires")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.pacing = None
        self.rto = None
        self.fires = 0

    def fire(self) -> None:
        sim = self.sim
        self.fires += 1
        if self.pacing is not None:
            sim.cancel(self.pacing)
        if self.rto is not None:
            sim.cancel(self.rto)
        self.pacing = sim.schedule(0.002, _noop)
        self.rto = sim.schedule(0.25, _noop)
        sim.schedule(0.0001, self.fire)


def _run_cancel_churn(total_events: int) -> Dict[str, Any]:
    from repro.sim.kernel import Simulator

    sim = Simulator()
    driver = _PacingChurn(sim)
    sim.schedule(0.0001, driver.fire)
    max_entries = 0
    step = max(1, total_events // 64)
    remaining = total_events
    while remaining > 0:
        sim.run(max_events=min(step, remaining))
        remaining -= step
        max_entries = max(max_entries, _queue_entries(sim))
    return {"events": sim.events_processed, "max_queue_entries": max_entries}


def _queue_entries(sim) -> int:
    """Total entries (live + dead) physically held by the event queue."""
    queue = sim._queue
    total = 0
    for attr in ("_heap", "_overflow"):
        entries = getattr(queue, attr, None)
        if entries is not None:
            total += len(entries)
    wheel = getattr(queue, "_wheel", None)
    if wheel is not None:
        total += wheel.entry_count()
    return total


def workload_cancel(quick: bool = False) -> Dict[str, Any]:
    """Cancel-heavy pacing workload; also reports retained queue entries."""
    total = 30_000 if quick else 200_000
    out, wall = _timed_best(lambda: _run_cancel_churn(total))
    record = _finalize(out["events"], wall)
    record["max_queue_entries"] = out["max_queue_entries"]
    record.update(_alloc_pass(lambda: _run_cancel_churn(total)))
    return record


def workload_fig1a(quick: bool = False) -> Dict[str, Any]:
    """Macro benchmark: one CUBIC bulk flow from the Fig. 1a sweep."""
    from repro.experiments.fig1 import run_single_cca

    duration = 0.6 if quick else 1.2
    out, wall = _timed_best(
        lambda: {"events": run_single_cca("cubic", duration=duration).net.sim.events_processed},
        rounds=MACRO_TIMING_ROUNDS,
    )
    record = _finalize(out["events"], wall)
    record.update(
        _alloc_pass(lambda: run_single_cca("cubic", duration=duration))
    )
    return record


def _run_fleet(tenants: int, duration: float) -> Dict[str, Any]:
    from repro.fleet.hybrid import FleetConfig, FleetSimulation

    config = FleetConfig(
        tenants=tenants,
        foreground=4,
        duration=duration,
        preset="paper",
    )
    sim = FleetSimulation(config)
    out = sim.run()
    # Tick count measures the fluid stepper's work; kernel events measure
    # the packet-level foreground sharing the same wheel.
    return {
        "events": out["events_processed"],
        "ticks": out["background"]["ticks"],
        "bg_completed": out["background"]["completed"],
    }


def workload_fleet(quick: bool = False) -> Dict[str, Any]:
    """Hybrid-fidelity fleet: 10k-tenant fluid stepper + packet foreground."""
    tenants = 2_000 if quick else 10_000
    duration = 2.0 if quick else 5.0
    out, wall = _timed_best(lambda: _run_fleet(tenants, duration))
    record = _finalize(out["events"], wall)
    record["ticks"] = out["ticks"]
    record["bg_completed"] = out["bg_completed"]
    record.update(_alloc_pass(lambda: _run_fleet(tenants, duration)))
    return record


def _run_cc_matrix_cell(duration: float) -> Dict[str, Any]:
    from repro.experiments.cc_matrix import pair_unit

    # The matrix's most expensive cell family: two BBR-family flows on the
    # WAN preset, where per-ACK filter work and the SACK scoreboard at WAN
    # BDP dominate. This is the path the WindowedMax filters exist for.
    out = pair_unit(
        cc_a="bbr", cc_b="bbr2+", preset="wan", steering="min-rtt",
        duration=duration,
    )
    return {"events": out["events"]}


def workload_cc_matrix(quick: bool = False) -> Dict[str, Any]:
    """Coexistence-matrix hot cell: BBR vs BBRv2+ at WAN BDP."""
    duration = 0.8 if quick else 2.0
    out, wall = _timed_best(lambda: _run_cc_matrix_cell(duration))
    record = _finalize(out["events"], wall)
    record.update(_alloc_pass(lambda: _run_cc_matrix_cell(duration)))
    return record


def _run_resilience_cell(duration: float) -> Dict[str, Any]:
    from repro.experiments.resilience import regime_rows, resilience_unit

    # One packet cell of the recovery-SLO scorecard: the scripted handover
    # blackout on dchannel steering. Exercises the fault injector, the
    # per-flow recovery tracker, and the SLO accounting end to end.
    rows = regime_rows("handover", duration)
    out = resilience_unit(
        regime="handover", steering="dchannel", cc="cubic",
        fault_rows=rows, duration=duration,
    )
    return {"events": out["events"], "failovers": out["failovers"]}


def workload_resilience(quick: bool = False) -> Dict[str, Any]:
    """Recovery-SLO scorecard cell: handover blackout, dchannel failover."""
    duration = 3.0 if quick else 8.0
    out, wall = _timed_best(lambda: _run_resilience_cell(duration))
    record = _finalize(out["events"], wall)
    record["failovers"] = out["failovers"]
    record.update(_alloc_pass(lambda: _run_resilience_cell(duration)))
    return record


def _finalize(events: int, wall: float) -> Dict[str, Any]:
    return {
        "events": events,
        "wall_seconds": round(wall, 6),
        "events_per_second": round(events / wall, 1) if wall > 0 else None,
    }


def _alloc_pass(run: Callable[[], Any]) -> Dict[str, Any]:
    """Re-run ``run`` under tracemalloc and report the allocation peak."""
    tracemalloc.start()
    try:
        run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {"alloc_peak_kb": round(peak / 1024.0, 1)}


WORKLOADS: Dict[str, Callable[[bool], Dict[str, Any]]] = {
    "kernel": workload_kernel,
    "cancel": workload_cancel,
    "fig1a": workload_fig1a,
    "fleet": workload_fleet,
    "cc_matrix": workload_cc_matrix,
    "resilience": workload_resilience,
}


def run_workload(name: str, quick: bool = False) -> Dict[str, Any]:
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; known: {', '.join(sorted(WORKLOADS))}")
    return WORKLOADS[name](quick)


def run_workloads(
    names: Optional[Iterable[str]] = None, quick: bool = False
) -> Dict[str, Dict[str, Any]]:
    selected: List[str] = list(names) if names is not None else list(WORKLOADS)
    return {name: run_workload(name, quick) for name in selected}
