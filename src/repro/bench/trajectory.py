"""The committed benchmark trajectory file and the regression gate.

``benchmarks/TRAJECTORY.json`` is an append-only series of entries::

    {"version": 1,
     "entries": [{"label": "pre-pr", "timestamp": ..., "commit": ...,
                  "quick": false, "calibration_ops_per_second": ...,
                  "results": {"kernel": {...}, "cancel": {...}, ...}}]}

Each entry stores raw events/s *and* the calibration ops/s measured on
the same machine at the same moment; :func:`compare_entries` gates on
the calibration-normalized ratio so a slower CI box does not read as a
kernel regression.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Environment override for the trajectory file location.
TRAJECTORY_ENV = "REPRO_TRAJECTORY"

#: Workload keys compared by the regression gate (must expose
#: ``events_per_second``).
GATED_METRIC = "events_per_second"

#: Schema version this build reads and writes. Bump on incompatible
#: changes to the entry layout; :func:`load_trajectory` rejects files
#: from other versions with an actionable error instead of silently
#: misreading them.
TRAJECTORY_VERSION = 1


def default_trajectory_path() -> Path:
    override = os.environ.get(TRAJECTORY_ENV)
    if override:
        return Path(override)
    # src/repro/bench/trajectory.py -> repo root / benchmarks
    return Path(__file__).resolve().parents[3] / "benchmarks" / "TRAJECTORY.json"


def load_trajectory(path: Optional[Path] = None) -> Dict[str, Any]:
    path = path or default_trajectory_path()
    if not Path(path).exists():
        return {"version": TRAJECTORY_VERSION, "entries": []}
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path}: not a trajectory file (missing 'entries')")
    version = data.get("version")
    if version != TRAJECTORY_VERSION:
        raise ValueError(
            f"{path}: unsupported trajectory version {version!r} (this build "
            f"reads version {TRAJECTORY_VERSION}). Regenerate the file with "
            f"`python -m repro bench run --label <label>` or check out the "
            f"matching tooling."
        )
    return data


def save_trajectory(trajectory: Dict[str, Any], path: Optional[Path] = None) -> Path:
    path = Path(path or default_trajectory_path())
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    return path


def _git(args: List[str]) -> Optional[subprocess.CompletedProcess]:
    try:
        return subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parents[3],
        )
    except (OSError, subprocess.TimeoutExpired):
        return None


def git_state() -> tuple:
    """``(commit, dirty)`` for the working tree the benchmarks just ran in.

    ``commit`` is the *actual* current HEAD (short hash) or ``None``
    outside a repository; ``dirty`` is True when tracked files differ
    from HEAD — i.e. the measured code is NOT the code any commit hash
    names, so stamping one would lie to every later comparison.
    """
    out = _git(["rev-parse", "--short", "HEAD"])
    if out is None or out.returncode != 0:
        return None, False
    commit = out.stdout.strip() or None
    status = _git(["status", "--porcelain", "--untracked-files=no"])
    dirty = status is not None and status.returncode == 0 and bool(status.stdout.strip())
    return commit, dirty


def append_entry(
    trajectory: Dict[str, Any],
    label: str,
    results: Dict[str, Dict[str, Any]],
    calibration_ops_per_second: float,
    quick: bool = False,
) -> Dict[str, Any]:
    """Append one measurement entry and return it.

    Commit stamping is honest about dirty trees: a clean checkout
    records the actual HEAD, while uncommitted changes record
    ``"commit": null`` plus ``"dirty": true`` and a loud stderr warning
    — a hash naming code that was not what ran is worse than no hash.
    """
    commit, dirty = git_state()
    entry = {
        "label": label,
        "timestamp": round(time.time(), 1),
        "commit": None if dirty else commit,
        "quick": quick,
        "calibration_ops_per_second": round(calibration_ops_per_second, 1),
        "results": results,
    }
    if dirty:
        entry["dirty"] = True
        print(
            f"bench: WARNING — working tree is dirty (HEAD {commit}); "
            f"recording commit: null for entry {label!r} so the hash cannot "
            "misattribute these numbers. Commit first for a citable entry.",
            file=sys.stderr,
        )
    trajectory.setdefault("entries", []).append(entry)
    return entry


def find_entry(trajectory: Dict[str, Any], label: Optional[str]) -> Dict[str, Any]:
    """Entry by label, or the last entry when ``label`` is ``None``."""
    entries = trajectory.get("entries", [])
    if not entries:
        raise LookupError("trajectory has no entries")
    if label is None:
        return entries[-1]
    for entry in reversed(entries):
        if entry.get("label") == label:
            return entry
    raise LookupError(f"no trajectory entry labelled {label!r}")


@dataclass
class ComparisonRow:
    """One workload's baseline-vs-current verdict."""

    name: str
    base_eps: float
    cur_eps: float
    base_norm: float
    cur_norm: float
    delta_pct: float
    regressed: bool

    def render(self) -> str:
        flag = "REGRESSED" if self.regressed else "ok"
        return (
            f"  {self.name:<10} {self.base_eps:>12.0f} -> {self.cur_eps:>12.0f} ev/s"
            f"  normalized {self.delta_pct:+7.2f}%  {flag}"
        )


def _normalized(entry: Dict[str, Any], name: str) -> Optional[float]:
    result = entry.get("results", {}).get(name)
    if not result:
        return None
    eps = result.get(GATED_METRIC)
    calib = entry.get("calibration_ops_per_second")
    if eps is None or not calib:
        return None
    return eps / calib


def compare_entries(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    max_regress_pct: float = 10.0,
) -> List[ComparisonRow]:
    """Compare every workload present in both entries.

    A workload counts as regressed when its calibration-normalized
    events/s dropped more than ``max_regress_pct`` percent below the
    baseline. Workloads missing from either side are skipped — the gate
    only ever compares like with like.
    """
    rows: List[ComparisonRow] = []
    for name in sorted(baseline.get("results", {})):
        base_norm = _normalized(baseline, name)
        cur_norm = _normalized(current, name)
        if base_norm is None or cur_norm is None or base_norm <= 0:
            continue
        delta_pct = (cur_norm / base_norm - 1.0) * 100.0
        rows.append(
            ComparisonRow(
                name=name,
                base_eps=baseline["results"][name][GATED_METRIC],
                cur_eps=current["results"][name][GATED_METRIC],
                base_norm=base_norm,
                cur_norm=cur_norm,
                delta_pct=delta_pct,
                regressed=delta_pct < -max_regress_pct,
            )
        )
    return rows
