"""repro.resilience — trace-derived disruption and recovery SLOs.

The paper's §3 argues HVC earns its keep when channels *misbehave* —
handoffs, blackouts, delay spikes — not in steady state. This package
turns that claim into measurable artifacts:

* :mod:`repro.resilience.derive` scans any :class:`~repro.traces.model.
  NetworkTrace` for dead intervals, rate collapses, and delay spikes and
  emits a validated :class:`~repro.faults.FaultSchedule` aligned to the
  trace — every catalog trace doubles as a fault campaign
  (``FaultSchedule.from_trace`` is the public entry point).
* :mod:`repro.resilience.slo` defines the per-requirement-class
  recovery-time SLO catalogue the scorecard grades against.

``python -m repro resilience`` (see :mod:`repro.experiments.resilience`)
runs the recovery-SLO scorecard: disruption regime × steering policy ×
CCA, in both packet and fleet modes.
"""

from repro.resilience.derive import (
    DeadInterval,
    collapse_intervals,
    dead_intervals,
    delay_spike_intervals,
    schedule_from_trace,
)
from repro.resilience.slo import (
    RECOVERY_SLOS,
    RecoverySLO,
    slo_for_class,
    violation_rate,
)

__all__ = [
    "DeadInterval",
    "RECOVERY_SLOS",
    "RecoverySLO",
    "collapse_intervals",
    "dead_intervals",
    "delay_spike_intervals",
    "schedule_from_trace",
    "slo_for_class",
    "violation_rate",
]
