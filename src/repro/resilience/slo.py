"""Recovery-time SLOs per requirement class.

The scorecard grades each requirement class against a time-to-recover
target: after an outage ends, how long may a flow of that class stall
before its SLO is violated? Targets follow the class semantics from
:mod:`repro.steering.requirements` — latency-class traffic (gaming, calls)
must recover almost instantly, deadline traffic within its slack,
throughput traffic within a congestion-control ramp, and background
traffic merely eventually.

The catalogue is data, not policy: the scorecard reports the violation
rate per class and leaves judgement to the reader (EXPERIMENTS.md
documents how to read it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.errors import ScenarioError
from repro.steering.requirements import REQUIREMENT_CLASSES


@dataclass(frozen=True)
class RecoverySLO:
    """Time-to-recover target for one requirement class."""

    requirement: str
    ttr_target_s: float
    description: str

    def validate(self) -> None:
        if self.requirement not in REQUIREMENT_CLASSES:
            known = ", ".join(sorted(REQUIREMENT_CLASSES))
            raise ScenarioError(
                f"unknown requirement class {self.requirement!r}; known: {known}"
            )
        if self.ttr_target_s <= 0:
            raise ScenarioError(
                f"ttr_target_s must be positive, got {self.ttr_target_s}"
            )


#: The default SLO catalogue, keyed by requirement class.
RECOVERY_SLOS: Dict[str, RecoverySLO] = {
    slo.requirement: slo
    for slo in (
        RecoverySLO(
            "latency",
            0.25,
            "interactive traffic must fail over within a human-perceptible beat",
        ),
        RecoverySLO(
            "deadline",
            0.5,
            "deadline traffic may burn half its slack re-homing",
        ),
        RecoverySLO(
            "throughput",
            1.0,
            "bulk flows get one congestion-control ramp to resume",
        ),
        RecoverySLO(
            "background",
            5.0,
            "scavenger traffic only has to recover eventually",
        ),
    )
}


def slo_for_class(requirement: str) -> RecoverySLO:
    """The catalogue entry for ``requirement`` (validated)."""
    try:
        slo = RECOVERY_SLOS[requirement]
    except KeyError:
        known = ", ".join(sorted(RECOVERY_SLOS))
        raise ScenarioError(
            f"no recovery SLO for class {requirement!r}; known: {known}"
        ) from None
    slo.validate()
    return slo


def violation_rate(samples: Sequence[float], target_s: float) -> float:
    """Fraction of recovery samples exceeding ``target_s`` (0.0 if none)."""
    if target_s <= 0:
        raise ScenarioError(f"target_s must be positive, got {target_s}")
    if not samples:
        return 0.0
    return sum(1 for s in samples if s > target_s) / len(samples)
