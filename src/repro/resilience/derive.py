"""Derive fault schedules from trace discontinuities.

A :class:`~repro.traces.model.NetworkTrace` already encodes the disruption
events the paper cares about — it just encodes them as rate/delay samples
instead of faults. This module recovers them:

* **dead intervals** — maximal runs of samples at (or below) a dead-rate
  threshold. These are true connectivity gaps (LEO handoffs, radio
  re-association) and map to ``outage`` faults whose endpoints sit exactly
  on the trace's sample grid.
* **rate collapses** — sustained runs below a fraction of the healthy
  median rate (mmWave blockage, deep fades) → ``capacity`` faults whose
  severity is the observed rate ratio.
* **delay spikes** — sustained runs above a multiple of the median one-way
  delay (bufferbloat excursions, path stretch after a handoff) →
  ``rtt_spike`` faults whose severity is the mean *excess* delay.

Each detector excludes samples claimed by a stronger one (dead beats
collapse beats spike) so the derived faults never double-count a window.
The schedule targets a channel name (default: the trace's own name), so
arming it against a same-named channel replays the trace's weather on any
topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Type

from repro.errors import ScenarioError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.schedule import FaultSchedule
    from repro.traces.model import NetworkTrace


@dataclass(frozen=True)
class DeadInterval:
    """One maximal run of dead (or degraded) samples, ``[start, end)``."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def _sample_end(trace: "NetworkTrace", index: int) -> float:
    """The time at which sample ``index`` stops applying."""
    if index + 1 < len(trace.times):
        return trace.times[index + 1]
    return trace.duration


def _runs(flags: Sequence[bool]) -> List[Tuple[int, int]]:
    """Maximal ``[i, j)`` index runs where ``flags`` is true."""
    runs: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for i, flag in enumerate(flags):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            runs.append((start, i))
            start = None
    if start is not None:
        runs.append((start, len(flags)))
    return runs


def dead_intervals(
    trace: "NetworkTrace", dead_rate_bps: float = 0.0
) -> List[DeadInterval]:
    """Maximal intervals where the trace rate is <= ``dead_rate_bps``.

    Interval endpoints lie exactly on the trace's sample grid: an interval
    starts at its first dead sample's time and ends where the next live
    sample takes over (or at ``trace.duration`` for a trailing run).
    """
    if dead_rate_bps < 0:
        raise ScenarioError(f"dead_rate_bps must be >= 0, got {dead_rate_bps}")
    flags = [rate <= dead_rate_bps for rate in trace.rates_bps]
    return [
        DeadInterval(trace.times[i], _sample_end(trace, j - 1))
        for i, j in _runs(flags)
    ]


def _healthy_median(values: Sequence[float], excluded: Sequence[bool]) -> float:
    healthy = sorted(v for v, dead in zip(values, excluded) if not dead)
    if not healthy:
        return 0.0
    mid = len(healthy) // 2
    if len(healthy) % 2:
        return healthy[mid]
    return 0.5 * (healthy[mid - 1] + healthy[mid])


def collapse_intervals(
    trace: "NetworkTrace",
    collapse_frac: float = 0.25,
    dead_rate_bps: float = 0.0,
) -> List[Tuple[DeadInterval, float]]:
    """Sustained rate collapses: (interval, severity) pairs.

    A sample collapses when its rate is below ``collapse_frac`` times the
    median of the *healthy* (non-dead) samples; dead samples never count
    (they are outages, not collapses). Severity is the run's mean rate over
    the reference, clamped into the open interval a ``capacity`` fault
    accepts.
    """
    if not 0.0 < collapse_frac < 1.0:
        raise ScenarioError(f"collapse_frac must be in (0,1), got {collapse_frac}")
    dead = [rate <= dead_rate_bps for rate in trace.rates_bps]
    reference = _healthy_median(trace.rates_bps, dead)
    if reference <= 0.0:
        return []
    threshold = collapse_frac * reference
    flags = [
        (not is_dead) and rate < threshold
        for rate, is_dead in zip(trace.rates_bps, dead)
    ]
    out: List[Tuple[DeadInterval, float]] = []
    for i, j in _runs(flags):
        run_mean = sum(trace.rates_bps[i:j]) / (j - i)
        severity = min(max(run_mean / reference, 1e-6), 1.0 - 1e-6)
        out.append((DeadInterval(trace.times[i], _sample_end(trace, j - 1)), severity))
    return out


def delay_spike_intervals(
    trace: "NetworkTrace",
    delay_spike_factor: float = 3.0,
    dead_rate_bps: float = 0.0,
    min_spike_s: float = 0.02,
) -> List[Tuple[DeadInterval, float]]:
    """Sustained delay excursions: (interval, mean excess delay) pairs.

    A sample spikes when its one-way delay exceeds ``delay_spike_factor``
    times the healthy median *and* the excess clears ``min_spike_s`` (so a
    3x excursion on a 2 ms baseline is noise, not a fault). Dead samples
    are excluded — their delay is unobservable in a real trace.
    """
    if delay_spike_factor <= 1.0:
        raise ScenarioError(
            f"delay_spike_factor must be > 1, got {delay_spike_factor}"
        )
    if min_spike_s <= 0:
        raise ScenarioError(f"min_spike_s must be positive, got {min_spike_s}")
    dead = [rate <= dead_rate_bps for rate in trace.rates_bps]
    reference = _healthy_median(trace.delays, dead)
    if reference <= 0.0:
        return []
    threshold = max(delay_spike_factor * reference, reference + min_spike_s)
    flags = [
        (not is_dead) and delay > threshold
        for delay, is_dead in zip(trace.delays, dead)
    ]
    out: List[Tuple[DeadInterval, float]] = []
    for i, j in _runs(flags):
        excess = sum(trace.delays[i:j]) / (j - i) - reference
        out.append((DeadInterval(trace.times[i], _sample_end(trace, j - 1)), excess))
    return out


def schedule_from_trace(
    trace: "NetworkTrace",
    channel: Optional[str] = None,
    dead_rate_bps: float = 0.0,
    collapse_frac: float = 0.25,
    delay_spike_factor: float = 3.0,
    min_spike_s: float = 0.02,
    schedule_cls: Optional[Type["FaultSchedule"]] = None,
) -> "FaultSchedule":
    """Build the full derived schedule (outages + collapses + spikes).

    This is the engine behind :meth:`FaultSchedule.from_trace`; prefer that
    entry point. The derived outage intervals match
    :func:`dead_intervals` exactly — round-trip tested.
    """
    if schedule_cls is None:
        from repro.faults.schedule import FaultSchedule as schedule_cls  # noqa: N813

    target = channel if channel is not None else trace.name
    schedule = schedule_cls()
    for interval in dead_intervals(trace, dead_rate_bps):
        schedule.outage(target, interval.start, interval.duration)
    for interval, severity in collapse_intervals(trace, collapse_frac, dead_rate_bps):
        schedule.capacity_collapse(target, interval.start, interval.duration, severity)
    for interval, excess in delay_spike_intervals(
        trace, delay_spike_factor, dead_rate_bps, min_spike_s
    ):
        schedule.rtt_spike(target, interval.start, interval.duration, excess)
    return schedule
