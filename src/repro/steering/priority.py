"""Cross-layer message-priority steering (§3.3, Fig. 2's winner).

The application tags each message with a priority (0 = most important) and
the policy maps priorities to channels: priority ≤ ``cutoff`` rides the
low-latency channel, everything else the high-bandwidth channel. For the
paper's SVC video, layer 0 (decodable alone, required by all higher layers)
is priority 0 → URLLC; layers 1–2 are priorities 1–2 → eMBB.

Because the whole of a priority-0 *message* takes the stable low-latency
channel, the receiver gets it inside a narrow time bound even when eMBB
degrades — unlike DChannel, which treats each packet independently and
strands parts of layer 0 on the collapsing eMBB queue.

Untagged packets fall back to an inner policy (DChannel by default), so
mixing cross-layer and legacy flows works.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.net.node import ChannelView
from repro.net.packet import Packet
from repro.steering.base import Steerer, highest_bandwidth, lowest_latency, up_views
from repro.steering.dchannel import DChannelSteerer


class MessagePrioritySteerer(Steerer):
    """Priority ≤ cutoff → low-latency channel; others → high-bandwidth."""

    name = "priority"

    def __init__(self, cutoff: int = 0, fallback: Optional[Steerer] = None) -> None:
        self.cutoff = cutoff
        self.fallback = fallback if fallback is not None else DChannelSteerer()

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = up_views(views)
        if len(alive) == 1:
            return (alive[0].index,)
        ll = lowest_latency(alive)
        if packet.message_priority is not None:
            if packet.message_priority <= self.cutoff:
                return (ll.index,)
            # Low-priority messages must never displace priority traffic
            # from the scarce low-latency channel — they take the bulk
            # channel *by identity*, even while it is degraded (the whole
            # point: late high layers are dropped, the base layer stays
            # timely).
            others = [v for v in alive if v.index != ll.index]
            return (highest_bandwidth(others).index,)
        return self.fallback.choose(packet, views, now)
