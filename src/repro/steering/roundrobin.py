"""Heterogeneity-blind multipath baselines.

These represent the "aggregate bandwidth, ignore channel properties" class
the paper criticizes: they spray packets without asking what each channel is
good at, so a 2 Mbps URLLC link receives the same share (round robin) or a
proportional share (rate-weighted) of bulk traffic and congests.
"""

from __future__ import annotations

from typing import Sequence

from repro.net.node import ChannelView
from repro.net.packet import Packet
from repro.steering.base import Steerer, up_views


class RoundRobinSteerer(Steerer):
    """Strict per-packet round robin over the up channels."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = up_views(views)
        view = alive[self._counter % len(alive)]
        self._counter += 1
        return (view.index,)


class RateWeightedSteerer(Steerer):
    """Weighted spraying proportional to each channel's current rate.

    Deterministic (largest deficit first) so runs are reproducible: each
    channel accumulates credit at its rate share and the packet goes to the
    channel with the most credit.
    """

    name = "rate-weighted"

    def __init__(self) -> None:
        self._credit: dict = {}

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = up_views(views)
        total_rate = sum(v.rate_bps for v in alive)
        if total_rate <= 0:
            return (alive[0].index,)
        for view in alive:
            share = view.rate_bps / total_rate
            self._credit[view.index] = self._credit.get(view.index, 0.0) + share
        best = max(alive, key=lambda v: self._credit.get(v.index, 0.0))
        self._credit[best.index] -= 1.0
        return (best.index,)
