"""Small shared mechanisms for steering policies."""

from __future__ import annotations


class TokenBucket:
    """A continuous token bucket (tokens refill with time, capped at burst).

    Used by the cost-aware policy to enforce a monetary budget and available
    to rate-limit scarce-channel usage in custom policies.
    """

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s < 0 or burst <= 0:
            raise ValueError(f"invalid bucket rate={rate_per_s} burst={burst}")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = burst
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)

    def available(self, now: float) -> float:
        """Tokens available right now."""
        self._refill(now)
        return self._tokens

    def try_spend(self, amount: float, now: float) -> bool:
        """Spend ``amount`` tokens if available; returns success."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        self._refill(now)
        if amount > self._tokens:
            return False
        self._tokens -= amount
        return True
