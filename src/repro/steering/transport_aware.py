"""Transport-layer segment steering (§3.2).

Operating inside the transport (rather than as a packet shim) unlocks three
moves the paper highlights:

* **ACK separation** — a pure ACK always takes the low-latency channel,
  even when data would be "tacked onto" it at the network layer and pushed
  to eMBB by its size.
* **End-of-message acceleration** — the *final* segments of a message are
  what the application is blocked on; steering them (and only them) onto
  the low-latency channel avoids head-of-line blocking without flooding it.
* **Control reliability** — handshake/retransmitted segments, whose loss is
  disproportionately expensive, prefer a channel with a reliability
  guarantee when one exists.

Bulk data falls through to a DChannel-style delay comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.net.node import ChannelView
from repro.net.packet import Packet, PacketType
from repro.steering.base import (
    ChannelHealth,
    Steerer,
    lowest_latency,
    risk_adjusted_delay,
)
from repro.steering.dchannel import DChannelSteerer


class TransportAwareSteerer(Steerer):
    """Segment-class-aware steering using transport-visible metadata."""

    name = "transport-aware"

    def __init__(
        self,
        accelerate_tail: bool = True,
        small_message_bytes: int = 3000,
        inner: Optional[Steerer] = None,
        hysteresis: float = 0.5,
    ) -> None:
        """
        Parameters
        ----------
        accelerate_tail:
            Steer each message's final segment to the low-latency channel
            when its queue estimate still beats the bulk channel's.
        small_message_bytes:
            Messages at most this large are latency-bound (requests, RPCs);
            steer them whole onto the low-latency channel when it wins.
        inner:
            Policy for bulk data (default: DChannel's delay comparison).
        hysteresis:
            Failback damping: a channel that just recovered from an outage
            is distrusted for this many seconds.
        """
        self.accelerate_tail = accelerate_tail
        self.small_message_bytes = small_message_bytes
        self.inner = inner if inner is not None else DChannelSteerer(hysteresis=hysteresis)
        self.health = ChannelHealth(hysteresis=hysteresis)

    def _reliable_choice(self, alive: Sequence[ChannelView]) -> Optional[int]:
        """Control/repair traffic prefers a reliability guarantee — but not
        one inside a loss burst: a "reliable" channel whose advertised loss
        has spiked is currently worse than an ordinary clean channel."""
        guaranteed = [v for v in alive if v.reliable and v.loss_rate < 0.01]
        if not guaranteed:
            return None
        return min(guaranteed, key=lambda v: v.base_delay).index

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = self.health.usable(views, now)
        if len(alive) == 1:
            return (alive[0].index,)
        ll = lowest_latency(alive)

        # Pure ACKs: always separated onto the low-latency channel.
        if packet.ptype == PacketType.ACK and packet.payload_bytes == 0:
            return (ll.index,)

        # Connection control: prefer a reliability guarantee.
        if packet.ptype in (PacketType.SYN, PacketType.FIN):
            reliable = self._reliable_choice(alive)
            return (reliable if reliable is not None else ll.index,)

        # Loss repair is latency-critical *and* loss-sensitive.
        if packet.is_retransmission:
            reliable = self._reliable_choice(alive)
            candidate = reliable if reliable is not None else ll.index
            return (candidate,)

        message_size = None
        if packet.message_start is not None and packet.message_last:
            message_size = packet.end_seq - packet.message_start

        others = [v for v in alive if v.index != ll.index]
        hb = min(
            others, key=lambda v: risk_adjusted_delay(v, packet.size_bytes)
        )
        ll_wins = risk_adjusted_delay(ll, packet.size_bytes) < (
            risk_adjusted_delay(hb, packet.size_bytes)
        )

        # Small messages ride the low-latency channel whole.
        if (
            message_size is not None
            and message_size <= self.small_message_bytes
            and ll_wins
        ):
            return (ll.index,)

        # Tail acceleration: the last segment unblocks the receiver.
        if self.accelerate_tail and packet.message_last and ll_wins:
            return (ll.index,)

        return self.inner.choose(packet, views, now)
