"""Single-channel steering: the eMBB-only / URLLC-only baselines."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SteeringError
from repro.net.node import ChannelView
from repro.net.packet import Packet
from repro.steering.base import Steerer


class SingleChannelSteerer(Steerer):
    """Every packet takes one fixed channel, by index or by name."""

    name = "single"

    def __init__(self, index: Optional[int] = None, channel_name: Optional[str] = None) -> None:
        if index is None and channel_name is None:
            index = 0
        if index is not None and channel_name is not None:
            raise SteeringError("give either index or channel_name, not both")
        self.index = index
        self.channel_name = channel_name

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        if self.index is not None:
            if not 0 <= self.index < len(views):
                raise SteeringError(
                    f"single-channel steerer wants index {self.index}, "
                    f"only {len(views)} channels exist"
                )
            return (self.index,)
        for view in views:
            if view.name == self.channel_name:
                return (view.index,)
        names = ", ".join(v.name for v in views)
        raise SteeringError(
            f"single-channel steerer wants {self.channel_name!r}; channels: {names}"
        )
