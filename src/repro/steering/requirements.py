"""Per-tenant requirement classes (Hercules, arXiv:2403.00590).

Hercules argues that at fleet scale the useful abstraction is not "which
channel does this packet take" but "what does this *tenant* require" —
each flow declares a requirement class and the system maps the class onto
channels and congestion behaviour. This module is that catalogue:

* ``latency``     — interactive RPCs, game state: lowest base RTT wins.
* ``throughput``  — bulk sync, video upload: widest pipe wins.
* ``deadline``    — uploads with a due time: reliable first, then fast.
* ``background``  — prefetch, telemetry: cheapest channel, back off early.

A class carries (a) the channel preference used when a tenant (fluid or
packet-level) is assigned to a channel, (b) the mapping onto the existing
cross-layer intent vocabulary (:mod:`repro.transport.intents` categories /
flow priorities), and (c) the congestion "manners" the fluid background
engine applies (how much of the link the class lets itself consume, and
how hard it backs off when the channel is loaded past that target).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SteeringError
from repro.steering.base import Steerer
from repro.transport.intents import FLOW_PRIORITIES


@dataclass(frozen=True)
class ChannelTraits:
    """The per-channel facts a requirement class ranks by.

    A deliberately tiny, engine-agnostic view: the fluid background engine
    builds these from :class:`~repro.net.channel.Channel` specs and the
    packet-level world builds them from
    :class:`~repro.net.node.ChannelView`, so both engines make the *same*
    assignment decision for the same world state.
    """

    index: int
    up: bool
    base_rtt: float
    capacity_bps: float
    cost_per_byte: float
    reliable: bool


@dataclass(frozen=True)
class RequirementClass:
    """One Hercules-style requirement class."""

    name: str
    #: Intent category (:data:`repro.transport.intents.FLOW_PRIORITIES`)
    #: foreground flows of this class are opened with.
    intent_category: str
    #: Ranking key: smaller tuple = better channel.
    rank: Callable[[ChannelTraits], Tuple]
    #: Fraction of channel capacity at which fluid tenants of this class
    #: start backing off (delay-sensitive classes yield before the queue
    #: builds; loss-driven classes push to the brim).
    load_target: float
    #: Multiplicative backoff aggressiveness in the fluid model (the
    #: AIMD "beta" analogue, applied per RTT of sustained overload).
    backoff: float

    @property
    def flow_priority(self) -> int:
        return FLOW_PRIORITIES[self.intent_category]

    def choose(
        self,
        traits: Sequence[ChannelTraits],
        preferred: Optional[Sequence[int]] = None,
    ) -> ChannelTraits:
        """Best up channel for this class; raises when none is up.

        ``preferred`` restricts the choice to those channel indices (an
        operator pin, e.g. "deadline traffic stays off LEO"). It must be
        validated non-empty by the caller — see
        :func:`validate_preferred_channels` — so an empty set can never
        silently degrade to "first channel wins".
        """
        alive = [t for t in traits if t.up]
        if preferred is not None:
            allowed = set(preferred)
            alive = [t for t in alive if t.index in allowed]
        if not alive:
            raise SteeringError("no channel is up")
        return min(alive, key=self.rank)


#: The catalogue. Ordering of the rank tuples:
#:  latency    — smallest propagation RTT, capacity as tiebreak.
#:  throughput — widest pipe, RTT as tiebreak.
#:  deadline   — reliable channels first, then fastest completion proxy.
#:  background — cheapest $/byte first, then widest, and *never* the
#:               scarce lowest-RTT channel while another is up (the §3.3
#:               lesson: two background flows cost 138 ms of web PLT by
#:               squatting on URLLC).
REQUIREMENT_CLASSES: Dict[str, RequirementClass] = {
    "latency": RequirementClass(
        name="latency",
        intent_category="interactive",
        rank=lambda t: (t.base_rtt, -t.capacity_bps),
        load_target=0.85,
        backoff=0.25,
    ),
    "throughput": RequirementClass(
        name="throughput",
        intent_category="bulk",
        rank=lambda t: (-t.capacity_bps, t.base_rtt),
        load_target=1.0,
        backoff=0.35,
    ),
    "deadline": RequirementClass(
        name="deadline",
        intent_category="realtime",
        rank=lambda t: (not t.reliable, t.base_rtt, -t.capacity_bps),
        load_target=0.95,
        backoff=0.3,
    ),
    "background": RequirementClass(
        name="background",
        intent_category="background",
        rank=lambda t: (t.cost_per_byte, -t.capacity_bps, -t.base_rtt),
        load_target=0.8,
        backoff=0.5,
    ),
}


def requirement_class(name: str) -> RequirementClass:
    try:
        return REQUIREMENT_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(REQUIREMENT_CLASSES))
        raise SteeringError(
            f"unknown requirement class {name!r}; known: {known}"
        ) from None


def validate_preferred_channels(
    preferred: Optional[Dict[str, Sequence[int]]]
) -> Dict[str, Tuple[int, ...]]:
    """Validate a class-name -> preferred-channel-indices mapping.

    Rejects unknown class names and — the config hazard this guards —
    a class whose preferred set is *empty*. Before this check, an empty
    set fell through ranking and silently pinned the class to channel 0,
    which is exactly the misconfiguration (background traffic squatting
    on URLLC) that §3.3 measures. The error names the offending class.
    """
    if not preferred:
        return {}
    validated: Dict[str, Tuple[int, ...]] = {}
    for class_name, indices in preferred.items():
        requirement_class(class_name)  # unknown names raise here
        channels = tuple(indices)
        if not channels:
            raise SteeringError(
                f"requirement class {class_name!r} has an empty preferred "
                "channel set; list at least one channel index or omit the "
                "class to allow all channels"
            )
        validated[class_name] = channels
    return validated


def traits_of_channels(channels) -> List[ChannelTraits]:
    """Build :class:`ChannelTraits` from :class:`~repro.net.channel.Channel`s.

    Capacity/RTT come from the data direction the fleet background uses
    (uplink — client-side data, matching foreground connections) and the
    channel's advertised base RTT.
    """
    return [
        ChannelTraits(
            index=channel.index,
            up=channel.up,
            base_rtt=channel.base_rtt(),
            capacity_bps=channel.uplink.capacity_bps(),
            cost_per_byte=channel.spec.cost_per_byte,
            reliable=channel.spec.reliable,
        )
        for channel in channels
    ]


def traits_of_views(views) -> List[ChannelTraits]:
    """Build :class:`ChannelTraits` from steering's ``ChannelView`` list.

    Capacity is the raw link capacity (before background subtraction) so a
    packet-level flow and a fluid tenant looking at the same world rank
    the channels identically.
    """
    return [
        ChannelTraits(
            index=view.index,
            up=view.up,
            base_rtt=view.base_rtt,
            capacity_bps=view.capacity_bps,
            cost_per_byte=view.cost_per_byte,
            reliable=view.reliable,
        )
        for view in views
    ]


class RequirementPinnedSteerer(Steerer):
    """Steer every packet of a flow to its requirement class's channel.

    The packet-level twin of the fluid engine's tenant assignment: both
    call :meth:`RequirementClass.choose` over the same
    :class:`ChannelTraits`, so a flow run as real packets lands on the
    same channel its fluid approximation would — the property the
    hybrid-vs-packet validation suite depends on.

    Flows are registered up front (``flow_classes``: flow id -> class
    name); unregistered flows fall back to ``default_class``. The pin is
    re-evaluated only when the pinned channel is down, mirroring the
    fluid engine's outage reassignment.
    """

    name = "requirement-pinned"

    def __init__(
        self,
        flow_classes: Optional[Dict[int, str]] = None,
        default_class: str = "throughput",
        preferred_channels: Optional[Dict[str, Sequence[int]]] = None,
    ) -> None:
        self.flow_classes = dict(flow_classes or {})
        self.default_class = requirement_class(default_class).name
        #: Optional operator pins: class name -> allowed channel indices.
        #: Validated eagerly — an empty set is a config error, not a
        #: silent fall-through to channel 0.
        self.preferred_channels = validate_preferred_channels(preferred_channels)
        self._pins: Dict[int, int] = {}

    def assign(self, flow_id: int, class_name: str) -> None:
        """Register (or change) a flow's requirement class."""
        requirement_class(class_name)  # validate eagerly
        self.flow_classes[flow_id] = class_name
        self._pins.pop(flow_id, None)

    def choose(self, packet, views, now: float) -> Sequence[int]:
        pinned = self._pins.get(packet.flow_id)
        if pinned is not None:
            for view in views:
                if view.index == pinned and view.up:
                    return (pinned,)
        rclass = requirement_class(
            self.flow_classes.get(packet.flow_id, self.default_class)
        )
        chosen = rclass.choose(
            traits_of_views(views),
            preferred=self.preferred_channels.get(rclass.name),
        ).index
        self._pins[packet.flow_id] = chosen
        return (chosen,)


def assignment_table(
    classes: Sequence[str],
    channels,
    preferred: Optional[Dict[str, Sequence[int]]] = None,
) -> Dict[str, Optional[int]]:
    """class name -> chosen channel index for the current up-set.

    ``None`` when no channel is up (total blackout): tenants hold their
    bytes and make no progress until a channel returns. ``preferred``
    optionally restricts classes to channel subsets; an empty subset is a
    config error (raised, with the class name) — not a silent fallback.
    """
    pins = validate_preferred_channels(preferred)
    traits = traits_of_channels(channels)
    table: Dict[str, Optional[int]] = {}
    for name in classes:
        rclass = requirement_class(name)
        try:
            table[name] = rclass.choose(
                traits, preferred=pins.get(rclass.name)
            ).index
        except SteeringError:
            table[name] = None
    return table
