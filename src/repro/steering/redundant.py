"""Redundant (replicated) steering: bandwidth traded for reliability.

Wi-Fi 7 MLO can transmit the same frame on two bands so that either fading
link alone suffices (§2.2). This policy replicates selected packets across
the ``max_copies`` lowest-latency up channels; everything else takes the
single best channel.

``mode`` selects what gets replicated:

* ``"all"`` — every packet (halves usable bandwidth, maximizes reliability);
* ``"control"`` — only pure control packets;
* ``"priority"`` — packets whose message priority ≤ 0 (the cross-layer mix:
  replicate what the application says it cannot lose).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SteeringError
from repro.net.node import ChannelView
from repro.net.packet import Packet
from repro.steering.base import Steerer, best_delivery, up_views

MODES = ("all", "control", "priority")


class RedundantSteerer(Steerer):
    """Replicate selected packets across channels."""

    name = "redundant"

    def __init__(self, mode: str = "all", max_copies: int = 2) -> None:
        if mode not in MODES:
            raise SteeringError(f"mode must be one of {MODES}, got {mode!r}")
        if max_copies < 2:
            raise SteeringError(f"max_copies must be >= 2, got {max_copies}")
        self.mode = mode
        self.max_copies = max_copies

    def _should_replicate(self, packet: Packet) -> bool:
        if self.mode == "all":
            return True
        if self.mode == "control":
            return packet.is_control
        return packet.message_priority is not None and packet.message_priority <= 0

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = up_views(views)
        if len(alive) > 1 and self._should_replicate(packet):
            ranked = sorted(alive, key=lambda v: v.base_delay)
            return tuple(v.index for v in ranked[: self.max_copies])
        return (best_delivery(alive, packet.size_bytes).index,)
