"""Latency-vs-cost steering under a monetary budget (§3.1, cISP-style).

A cISP microwave channel is faster than fiber but bills per byte. This
policy steers a packet onto a priced channel only when

* the estimated delivery-time saving justifies the price
  (``price ≤ max_price_per_second_saved × seconds_saved``), and
* a token-bucket budget (currency refilled at ``budget_per_s``) can cover it.

Free channels are always permitted; among them the best delay estimate
wins, so with the budget exhausted the policy degrades to minRTT over the
free channels.
"""

from __future__ import annotations

from typing import Sequence

from repro.net.node import ChannelView
from repro.net.packet import Packet
from repro.steering.base import Steerer, up_views
from repro.steering.util import TokenBucket


class CostAwareSteerer(Steerer):
    """Budgeted use of priced low-latency channels."""

    name = "cost-aware"

    def __init__(
        self,
        budget_per_s: float = 0.01,
        burst: float = 0.05,
        max_price_per_second_saved: float = 1.0,
    ) -> None:
        """
        Parameters
        ----------
        budget_per_s:
            Currency that accrues per second of wall-clock (sim) time.
        burst:
            Budget cap (currency) — how much may be spent in a burst.
        max_price_per_second_saved:
            Willingness to pay: a packet may spend at most this much
            currency per second of delivery time it saves.
        """
        if max_price_per_second_saved < 0:
            raise ValueError(
                f"max_price_per_second_saved must be >= 0, got {max_price_per_second_saved}"
            )
        self.bucket = TokenBucket(budget_per_s, burst)
        self.max_price_per_second_saved = max_price_per_second_saved
        #: Total currency spent (for reporting).
        self.spent = 0.0

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = up_views(views)
        free = [v for v in alive if v.cost_per_byte == 0.0]
        priced = [v for v in alive if v.cost_per_byte > 0.0]
        if not free:
            # Everything is billed; pick the cheapest delivery, budget willing.
            best = min(alive, key=lambda v: v.estimated_delivery_delay(packet.size_bytes))
            price = best.cost_per_byte * packet.size_bytes
            if self.bucket.try_spend(price, now):
                self.spent += price
            return (best.index,)

        best_free = min(free, key=lambda v: v.estimated_delivery_delay(packet.size_bytes))
        if not priced:
            return (best_free.index,)

        d_free = best_free.estimated_delivery_delay(packet.size_bytes)
        best_priced = min(
            priced, key=lambda v: v.estimated_delivery_delay(packet.size_bytes)
        )
        d_priced = best_priced.estimated_delivery_delay(packet.size_bytes)
        saved = d_free - d_priced
        if saved <= 0:
            return (best_free.index,)
        price = best_priced.cost_per_byte * packet.size_bytes
        if price <= self.max_price_per_second_saved * saved and self.bucket.try_spend(
            price, now
        ):
            self.spent += price
            return (best_priced.index,)
        return (best_free.index,)
