"""Steering policy interface and shared helpers.

A policy receives the packet (with whatever cross-layer tags the sender
attached), the host's per-channel views, and the current time, and returns
the channel indices to transmit on — usually one; several for replication.

The view list is the policy's *entire* knowledge of the network, mirroring
what a deployable shim could observe: local queue backlogs plus advertised
channel characteristics. Policies must tolerate untagged packets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SteeringError
from repro.net.node import ChannelView
from repro.net.packet import Packet


class ChannelHealth:
    """Sender-local channel up/down tracking with re-up hysteresis.

    A deployable shim observes channel state only at packet times, so this
    tracker infers transitions from successive ``choose()`` calls. Its job
    is *failback hysteresis*: a channel that just recovered from an outage
    is not trusted again until it has stayed up for ``hysteresis`` seconds,
    which keeps a flapping channel from whipsawing traffic (and delay-based
    CC state) on every blip. Failover in the other direction is immediate —
    a down channel is never usable.
    """

    def __init__(self, hysteresis: float = 0.5) -> None:
        if hysteresis < 0:
            raise SteeringError(f"hysteresis must be >= 0, got {hysteresis}")
        self.hysteresis = hysteresis
        self._was_up: Dict[int, bool] = {}
        self._reup_at: Dict[int, float] = {}
        #: Observed up/down transitions (both directions), for inspection.
        self.transitions = 0

    def update(self, views: Sequence[ChannelView], now: float) -> None:
        """Fold in the current view states (call once per ``choose()``)."""
        for view in views:
            previous = self._was_up.get(view.index)
            if previous is None:
                self._was_up[view.index] = view.up
                continue
            if view.up != previous:
                self._was_up[view.index] = view.up
                self.transitions += 1
                if view.up:
                    self._reup_at[view.index] = now

    def trusted(self, view: ChannelView, now: float) -> bool:
        """Up, and up for long enough that failback is safe."""
        if not view.up:
            return False
        reup_at = self._reup_at.get(view.index)
        return reup_at is None or now - reup_at >= self.hysteresis

    def usable(self, views: Sequence[ChannelView], now: float) -> List[ChannelView]:
        """Trusted channels, falling back to merely-up ones, else error.

        The fallback keeps the policy total: when *every* surviving channel
        is inside its hysteresis window, refusing to send would be worse
        than trusting early.

        Fused single pass over the views (update + liveness + trust) —
        this runs once per steered packet, so the one ``view.up`` read per
        view matters.
        """
        was_up = self._was_up
        reup_at = self._reup_at
        hysteresis = self.hysteresis
        alive: List[ChannelView] = []
        trusted: List[ChannelView] = []
        for view in views:
            up = view.up
            index = view.index
            previous = was_up.get(index)
            if previous is None:
                was_up[index] = up
            elif up != previous:
                was_up[index] = up
                self.transitions += 1
                if up:
                    reup_at[index] = now
            if up:
                alive.append(view)
                at = reup_at.get(index)
                if at is None or now - at >= hysteresis:
                    trusted.append(view)
        if not alive:
            raise SteeringError("no channel is up")
        return trusted if trusted else alive


class Steerer:
    """Base class for steering policies."""

    name = "base"

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        """Return the channel index/indices for ``packet``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


def up_views(views: Sequence[ChannelView]) -> List[ChannelView]:
    """Only the administratively-up channels; error when none remain."""
    alive = [view for view in views if view.up]
    if not alive:
        raise SteeringError("no channel is up")
    return alive


def lowest_latency(views: Sequence[ChannelView]) -> ChannelView:
    """The channel with the smallest base (propagation) delay."""
    return min(up_views(views), key=lambda v: v.base_delay)


def highest_bandwidth(views: Sequence[ChannelView]) -> ChannelView:
    """The channel with the highest current rate."""
    return max(up_views(views), key=lambda v: v.rate_bps)


def most_reliable(views: Sequence[ChannelView]) -> ChannelView:
    """Prefer channels flagged reliable, then lowest loss rate."""
    return min(up_views(views), key=lambda v: (not v.reliable, v.loss_rate))


def best_delivery(views: Sequence[ChannelView], size_bytes: int) -> ChannelView:
    """The channel minimizing the one-way delivery-delay estimate."""
    return min(
        up_views(views), key=lambda v: v.estimated_delivery_delay(size_bytes)
    )


def risk_adjusted_delay(view: ChannelView, size_bytes: int) -> float:
    """Delivery-delay estimate inflated by the channel's current loss rate.

    ``delay / (1 - loss)`` is the expected delay counting geometric
    retransmission attempts — the outage-aware cost term: a channel inside
    a loss burst (whose :class:`~repro.faults.FaultLossOverlay` raises its
    advertised ``loss_rate``) prices itself out of the comparison instead
    of silently eating the flow's tail latency.
    """
    delay = view.estimated_delivery_delay(size_bytes)
    loss = view.loss_rate
    if loss >= 1.0:
        return float("inf")
    return delay / (1.0 - loss)
