"""Steering policy interface and shared helpers.

A policy receives the packet (with whatever cross-layer tags the sender
attached), the host's per-channel views, and the current time, and returns
the channel indices to transmit on — usually one; several for replication.

The view list is the policy's *entire* knowledge of the network, mirroring
what a deployable shim could observe: local queue backlogs plus advertised
channel characteristics. Policies must tolerate untagged packets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import SteeringError
from repro.net.node import ChannelView
from repro.net.packet import Packet


class Steerer:
    """Base class for steering policies."""

    name = "base"

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        """Return the channel index/indices for ``packet``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


def up_views(views: Sequence[ChannelView]) -> List[ChannelView]:
    """Only the administratively-up channels; error when none remain."""
    alive = [view for view in views if view.up]
    if not alive:
        raise SteeringError("no channel is up")
    return alive


def lowest_latency(views: Sequence[ChannelView]) -> ChannelView:
    """The channel with the smallest base (propagation) delay."""
    return min(up_views(views), key=lambda v: v.base_delay)


def highest_bandwidth(views: Sequence[ChannelView]) -> ChannelView:
    """The channel with the highest current rate."""
    return max(up_views(views), key=lambda v: v.rate_bps)


def most_reliable(views: Sequence[ChannelView]) -> ChannelView:
    """Prefer channels flagged reliable, then lowest loss rate."""
    return min(up_views(views), key=lambda v: (not v.reliable, v.loss_rate))


def best_delivery(views: Sequence[ChannelView], size_bytes: int) -> ChannelView:
    """The channel minimizing the one-way delivery-delay estimate."""
    return min(
        up_views(views), key=lambda v: v.estimated_delivery_delay(size_bytes)
    )
