"""DChannel's network-layer per-packet steering heuristic (§3.1).

DChannel (Sentosa et al., NSDI '23) steers each IP packet to whichever
channel is estimated to deliver it *sooner*, using only sender-local state:
per-channel queue backlog, serialization rate, and base delay. The *reward*
of the low-latency channel is the delivery-time saving; the *cost* is
implicit — once its shallow queue builds, its estimate loses and traffic
falls back to the high-bandwidth channel.

Control packets (pure ACKs, SYNs) are given a head start: DChannel found
much of its win comes from accelerating them, which is also what poisons
delay-based congestion control (Fig. 1).

The policy is deliberately application-blind: it never reads message or
flow tags. Its two cross-layer extensions live in
:mod:`repro.steering.priority` and :mod:`repro.steering.flow_priority`.
"""

from __future__ import annotations

from typing import Sequence

from typing import Dict

from repro.net.node import ChannelView
from repro.net.packet import Packet, PacketType
from repro.steering.base import (
    ChannelHealth,
    Steerer,
    risk_adjusted_delay,
)


class DChannelSteerer(Steerer):
    """Reward/cost per-packet steering between an LL and an HB channel.

    A packet is steered to the low-latency channel only when

    1. **reward** — its delivery-delay estimate there beats the
       high-bandwidth channel's by ``savings_threshold``, and
    2. **cost** — the LL queue it would join is still "paying for itself":
       queueing there must not exceed ``queue_cap_factor ×`` the base-delay
       gap between the channels. Without this bound a greedy comparison
       chases the HB channel's bloated buffer and dumps *bulk* traffic onto
       the narrow channel, which is precisely what DChannel's cost term
       prevents — the LL channel accelerates packets, it does not add
       meaningful bandwidth.

    Control packets get a more generous cap (``control_cap_factor``):
    DChannel's gains come substantially from accelerating ACKs and other
    small control messages.

    Resilience: channel failures steer around immediately (a down channel
    is never chosen) while *failback* is damped — a channel that just
    recovered is distrusted for ``hysteresis`` seconds so a flapping link
    cannot whipsaw the flow (:class:`~repro.steering.base.ChannelHealth`).
    Delivery estimates are loss-inflated
    (:func:`~repro.steering.base.risk_adjusted_delay`), so a loss burst
    prices a channel out of the reward comparison rather than poisoning the
    flow's tail.
    """

    name = "dchannel"

    def __init__(
        self,
        savings_threshold: float = 0.0,
        accelerate_control: bool = True,
        queue_cap_factor: float = 1.0,
        control_cap_factor: float = 3.0,
        hysteresis: float = 0.5,
    ) -> None:
        if savings_threshold < 0:
            raise ValueError(f"savings_threshold must be >= 0, got {savings_threshold}")
        if queue_cap_factor <= 0 or control_cap_factor <= 0:
            raise ValueError("queue cap factors must be positive")
        self.savings_threshold = savings_threshold
        self.accelerate_control = accelerate_control
        self.queue_cap_factor = queue_cap_factor
        self.control_cap_factor = control_cap_factor
        self.health = ChannelHealth(hysteresis=hysteresis)
        #: flow → estimated arrival time of its newest HB-routed DATA packet.
        #: Reliable streams are delivered in order (the receiving shim
        #: resequences), so steering a DATA packet to the LL channel while
        #: same-flow predecessors sit in the HB queue buys nothing — it will
        #: be held on arrival. DChannel's reward therefore discounts the LL
        #: delivery time by the predecessors' arrival estimate.
        self._hb_arrival: Dict[int, float] = {}

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = self.health.usable(views, now)
        if len(alive) == 1:
            return (alive[0].index,)
        # Latency role: one base_delay read per view (min keeps the first
        # on ties, matching ``lowest_latency``).
        ll = alive[0]
        ll_delay = ll.base_delay
        for view in alive[1:]:
            delay = view.base_delay
            if delay < ll_delay:
                ll, ll_delay = view, delay
        # The bandwidth role goes to the highest-rate remaining channel.
        # Choosing it by instantaneous delay instead is a myopic trap with
        # 3+ channels: an idle narrow path (e.g. LEO) out-bids the fat one
        # until its queue builds, pinning bulk to the wrong channel while
        # the fat pipe idles. (With two channels the two rules coincide —
        # DChannel itself is a two-channel design, §4.)
        hb = None
        hb_rate = -1.0
        for view in alive:
            if view is ll:
                continue
            rate = view.rate_bps
            if rate > hb_rate:
                hb, hb_rate = view, rate

        d_ll = risk_adjusted_delay(ll, packet.size_bytes)
        d_hb = risk_adjusted_delay(hb, packet.size_bytes)
        base_gap = max(0.0, hb.base_delay - ll_delay)
        is_control = packet.is_control and self.accelerate_control
        cap = base_gap * (
            self.control_cap_factor if is_control else self.queue_cap_factor
        )
        ll_affordable = ll.queueing_delay(packet.size_bytes) <= cap

        if is_control:
            return (ll.index,) if d_ll <= d_hb and ll_affordable else (hb.index,)

        effective_ll = d_ll
        if packet.ptype == PacketType.DATA:
            # In-order stream: effective LL delivery waits for predecessors.
            hold_until = self._hb_arrival.get(packet.flow_id)
            if hold_until is not None:
                effective_ll = max(d_ll, hold_until - now)
        if effective_ll + self.savings_threshold < d_hb and ll_affordable:
            return (ll.index,)
        if packet.ptype == PacketType.DATA:
            previous = self._hb_arrival.get(packet.flow_id, 0.0)
            self._hb_arrival[packet.flow_id] = max(previous, now + d_hb)
        return (hb.index,)
