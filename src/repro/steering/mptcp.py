"""MPTCP-style path schedulers, adapted to per-packet steering.

These are the strongest *application-agnostic* prior art the paper cites:

* **minRTT** (default MPTCP scheduler): send on the path with the lowest
  current delay estimate that has capacity.
* **ECF** (Lim et al., CoNEXT '17): like minRTT, but refuse to put a packet
  on a slow path if waiting for the fast path to free up would deliver it
  sooner — the classic fix for head-of-line blocking over heterogeneous
  paths.

Both are approximated at packet granularity using the local-queue delay
estimates the views expose (the sender-side information a scheduler has).
"""

from __future__ import annotations

from typing import Sequence

from repro.net.node import ChannelView
from repro.net.packet import Packet
from repro.steering.base import Steerer, up_views


class MinRttSteerer(Steerer):
    """Pick the channel with the lowest estimated delivery delay.

    With an empty network this always prefers the low-latency channel; its
    queue then grows until the estimate crosses the other channel's — i.e.
    the policy load-balances on delay, indifferent to what the traffic is.
    """

    name = "min-rtt"

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = up_views(views)
        best = min(alive, key=lambda v: v.estimated_delivery_delay(packet.size_bytes))
        return (best.index,)


class EcfSteerer(Steerer):
    """Earliest-Completion-First-style scheduling, per-packet approximation.

    ECF's insight: when the *fast* path is momentarily busy, shunting data
    onto the slow path often finishes *later* than simply waiting for the
    fast path, so the slow path should only be used when it wins by a clear
    margin. At packet granularity we express that as a bias: the slow
    candidate must beat waiting-for-fast by factor ``beta`` (>1) before the
    packet leaves the fast channel.
    """

    name = "ecf"

    def __init__(self, beta: float = 1.5) -> None:
        if beta < 1.0:
            raise ValueError(f"beta must be >= 1, got {beta}")
        self.beta = beta

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = up_views(views)
        fastest = min(alive, key=lambda v: v.base_delay)
        others = [v for v in alive if v.index != fastest.index]
        if not others:
            return (fastest.index,)
        best_other = min(
            others, key=lambda v: v.estimated_delivery_delay(packet.size_bytes)
        )
        wait_for_fast = fastest.estimated_delivery_delay(packet.size_bytes)
        alternative = best_other.estimated_delivery_delay(packet.size_bytes)
        if alternative * self.beta < wait_for_fast:
            return (best_other.index,)
        return (fastest.index,)
