"""Flow-priority filtering (§3.3, Table 1's "DChannel w. priority").

The scarce low-latency channel is reserved for flows the application marked
important: packets whose ``flow_priority`` exceeds ``cutoff`` (background
log uploads, prefetches) are confined to the other channels, and everything
else is handled by the wrapped policy.

The paper shows as few as two background flows cost up to 138 ms of web PLT
by squatting on URLLC's ~2 Mbps; this one-line hint recovers it.
"""

from __future__ import annotations

from typing import Sequence

from repro.net.node import ChannelView
from repro.net.packet import Packet
from repro.steering.base import Steerer, lowest_latency, up_views


class FlowPriorityFilter(Steerer):
    """Wrapper barring low-priority flows from the low-latency channel."""

    name = "flow-priority"

    def __init__(self, inner: Steerer, cutoff: int = 0) -> None:
        self.inner = inner
        self.cutoff = cutoff
        self.name = f"{inner.name}+flowprio"

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = up_views(views)
        if len(alive) == 1:
            return (alive[0].index,)
        if packet.flow_priority is not None and packet.flow_priority > self.cutoff:
            ll_index = lowest_latency(alive).index
            allowed = [v for v in alive if v.index != ll_index]
            if allowed:
                best = min(
                    allowed,
                    key=lambda v: v.estimated_delivery_delay(packet.size_bytes),
                )
                return (best.index,)
        return self.inner.choose(packet, views, now)
