"""Steering policies: which channel should each packet take?

Policies are the paper's design space, one module per layer/idea:

* :mod:`repro.steering.single` — use one channel (the eMBB-only baseline).
* :mod:`repro.steering.roundrobin` — heterogeneity-blind multipath
  (per-packet round robin, rate-weighted spraying) — the "MPTCP ignores
  channel properties" strawman.
* :mod:`repro.steering.mptcp` — minRTT and ECF schedulers, the flow-level
  state of the art the paper contrasts with.
* :mod:`repro.steering.dchannel` — DChannel's network-layer per-packet
  reward/cost heuristic (§3.1).
* :mod:`repro.steering.priority` — cross-layer message-priority steering
  (§3.3, the Fig. 2 winner).
* :mod:`repro.steering.flow_priority` — flow-priority filter (§3.3,
  Table 1's "DChannel w. priority").
* :mod:`repro.steering.transport_aware` — transport-layer segment steering:
  ACK separation, end-of-message acceleration, control-packet reliability
  (§3.2).
* :mod:`repro.steering.redundant` — replication across channels for
  reliability (Wi-Fi 7 MLO, §2.2).
* :mod:`repro.steering.cost` — latency-vs-monetary-cost budgets (cISP, §3.1).
* :mod:`repro.steering.requirements` — Hercules-style per-tenant
  requirement classes used by the fleet-scale multi-tenant mode.

Use :func:`make_steerer` to build one by name; every device gets its own
instance (policies keep per-direction state like token buckets).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import SteeringError
from repro.steering.base import Steerer
from repro.steering.single import SingleChannelSteerer
from repro.steering.roundrobin import RoundRobinSteerer, RateWeightedSteerer
from repro.steering.mptcp import MinRttSteerer, EcfSteerer
from repro.steering.dchannel import DChannelSteerer
from repro.steering.flow_pinned import FlowPinnedSteerer
from repro.steering.general import GeneralSteerer
from repro.steering.priority import MessagePrioritySteerer
from repro.steering.flow_priority import FlowPriorityFilter
from repro.steering.transport_aware import TransportAwareSteerer
from repro.steering.redundant import RedundantSteerer
from repro.steering.cost import CostAwareSteerer
from repro.steering.requirements import (
    REQUIREMENT_CLASSES,
    ChannelTraits,
    RequirementClass,
    RequirementPinnedSteerer,
    assignment_table,
    requirement_class,
)

_REGISTRY: Dict[str, Callable[..., Steerer]] = {
    "single": SingleChannelSteerer,
    "round-robin": RoundRobinSteerer,
    "rate-weighted": RateWeightedSteerer,
    "min-rtt": MinRttSteerer,
    "ecf": EcfSteerer,
    "flow-pinned": FlowPinnedSteerer,
    "requirement-pinned": RequirementPinnedSteerer,
    "dchannel": DChannelSteerer,
    "general": GeneralSteerer,
    "priority": MessagePrioritySteerer,
    "transport-aware": TransportAwareSteerer,
    "redundant": RedundantSteerer,
    "cost-aware": CostAwareSteerer,
}


def list_steerers() -> List[str]:
    """Names accepted by :func:`make_steerer`."""
    return sorted(_REGISTRY) + ["dchannel+flowprio"]


def make_steerer(name: str, **kwargs) -> Steerer:
    """Instantiate a steering policy by name.

    ``"dchannel+flowprio"`` builds the Table 1 composite: DChannel with the
    flow-priority filter in front (background flows barred from the
    low-latency channel).
    """
    if name == "dchannel+flowprio":
        return FlowPriorityFilter(DChannelSteerer(**kwargs))
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(list_steerers())
        raise SteeringError(f"unknown steering policy {name!r}; known: {known}") from None
    return factory(**kwargs)


__all__ = [
    "Steerer",
    "SingleChannelSteerer",
    "RoundRobinSteerer",
    "RateWeightedSteerer",
    "MinRttSteerer",
    "EcfSteerer",
    "DChannelSteerer",
    "FlowPinnedSteerer",
    "GeneralSteerer",
    "MessagePrioritySteerer",
    "FlowPriorityFilter",
    "TransportAwareSteerer",
    "RedundantSteerer",
    "CostAwareSteerer",
    "make_steerer",
    "list_steerers",
    "REQUIREMENT_CLASSES",
    "ChannelTraits",
    "RequirementClass",
    "RequirementPinnedSteerer",
    "assignment_table",
    "requirement_class",
]
