"""The paper's concluding design, §3.3/§4: one general, performant policy.

The paper distills its exploration into three constituting principles:

1. **steer individual packets or segments** (not flows or objects);
2. **use easily available application information** — flow priorities and
   message boundaries/priorities — when present, without requiring it;
3. **use HVC information** — latency and reliability characteristics —
   from the channels themselves.

:class:`GeneralSteerer` applies them in precedence order:

* low-priority *flows* never touch the scarce low-latency channel
  (principle 2, Table 1's background flows);
* tagged low-priority *messages* (e.g. SVC enhancement layers) are kept
  off the low-latency channel unconditionally; tagged top-priority
  messages ride it whole **when they are small enough to benefit** —
  pinning a megabyte "important" object to a 2 Mbps channel would invert
  the gain, so size gates the promise (principle 2, Fig. 2);
* transport-visible segment classes — pure ACKs, handshakes,
  retransmissions, message tails, small messages — get ACK separation,
  reliability placement and tail acceleration (principles 1 & 3);
* everything else falls back to DChannel's delay-estimate comparison
  (principle 1), which needs no input from anyone.

The composite should never do worse than the best specialized policy on
each of the three workloads — the paper's claim that the principles are
compatible rather than competing (asserted in the benchmarks).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.net.node import ChannelView
from repro.net.packet import Packet
from repro.steering.base import Steerer, highest_bandwidth, lowest_latency, up_views
from repro.steering.transport_aware import TransportAwareSteerer

#: Priority-0 messages at most this large are pinned whole to the
#: low-latency channel (an SVC base layer is ~2 kB/frame; the 2 Mbps URLLC
#: serializes this bound in ~50 ms, the edge of usefulness).
PRIORITY_PIN_BYTES = 12_000


class GeneralSteerer(Steerer):
    """Flow filter → message priorities (size-gated) → segment classes → DChannel."""

    name = "general"

    def __init__(
        self,
        flow_cutoff: int = 0,
        message_cutoff: int = 0,
        pin_bytes: int = PRIORITY_PIN_BYTES,
        savings_threshold: float = 0.0,
    ) -> None:
        self.flow_cutoff = flow_cutoff
        self.message_cutoff = message_cutoff
        self.pin_bytes = pin_bytes
        self._segment_policy = TransportAwareSteerer()
        self._segment_policy.inner.savings_threshold = savings_threshold

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = up_views(views)
        if len(alive) == 1:
            return (alive[0].index,)
        ll = lowest_latency(alive)
        others = [v for v in alive if v.index != ll.index]

        # Principle 2a: unimportant flows stay off the scarce channel.
        if packet.flow_priority is not None and packet.flow_priority > self.flow_cutoff:
            best = min(
                others, key=lambda v: v.estimated_delivery_delay(packet.size_bytes)
            )
            return (best.index,)

        # Principle 2b: message priorities, size-gated.
        if packet.message_priority is not None:
            if packet.message_priority > self.message_cutoff:
                return (highest_bandwidth(others).index,)
            if packet.ptype.value == "datagram":
                # Real-time flows tag per-message; the whole top-priority
                # message rides the low-latency channel (Fig. 2's policy —
                # base layers are small by construction).
                return (ll.index,)
            message_size = self._message_size(packet)
            if message_size is not None and message_size <= self.pin_bytes:
                return (ll.index,)

        # Principles 1 & 3: segment classes, then DChannel's estimate duel.
        return self._segment_policy.choose(packet, views, now)

    @staticmethod
    def _message_size(packet: Packet) -> Optional[int]:
        if packet.message_start is not None and packet.message_last:
            return packet.end_seq - packet.message_start
        return None
