"""IANS / Socket-Intents-style flow-level network selection.

The paper's related work (Enghardt et al.'s Informed Access Network
Selection) chooses one access network *per content object or flow* and
sends everything on it. This policy reproduces that model as a baseline:
the first packet of each flow picks the channel with the best delivery
estimate at that instant, and the whole flow stays pinned there.

It "performs suboptimally as it only maps content to a single channel" —
a flow can never use URLLC for its ACKs while bulk rides eMBB, and an
unlucky pin at a bad instant persists for the flow's lifetime. The
baselines experiment quantifies exactly that gap against per-packet
steering.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.net.node import ChannelView
from repro.net.packet import Packet
from repro.steering.base import Steerer, up_views


class FlowPinnedSteerer(Steerer):
    """Pin each flow to the channel that looked best at its first packet."""

    name = "flow-pinned"

    def __init__(self) -> None:
        self._pins: Dict[int, int] = {}

    def choose(self, packet: Packet, views: Sequence[ChannelView], now: float) -> Sequence[int]:
        alive = up_views(views)
        pinned = self._pins.get(packet.flow_id)
        if pinned is not None and any(v.index == pinned and v.up for v in views):
            return (pinned,)
        best = min(
            alive, key=lambda v: v.estimated_delivery_delay(packet.size_bytes)
        )
        self._pins[packet.flow_id] = best.index
        return (best.index,)

    def pinned_channel(self, flow_id: int):
        """The channel a flow was assigned, or None (for tests/inspection)."""
        return self._pins.get(flow_id)
