"""Command-line entry point: ``python -m repro <experiment> [options]``.

Examples::

    python -m repro fig1a
    python -m repro fig2 --duration 30
    python -m repro table1 --pages 10
    python -m repro all --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures/tables and ablations.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="override run duration in seconds (fig1a/fig1b/fig2/ab-cc/ab-mlo)",
    )
    parser.add_argument(
        "--pages", type=int, default=None, help="corpus size for table1"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short runs (smoke-test scale, not paper scale)",
    )
    return parser


def _kwargs_for(name: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {"seed": args.seed}
    duration = args.duration
    if args.quick and duration is None:
        duration = 10.0
    if duration is not None and name in (
        "fig1a", "fig1b", "fig2", "ab-cc", "ab-mlo", "ab-mp", "ab-reseq"
    ):
        kwargs["duration"] = duration
    if name in ("table1", "baselines", "sweep-urllc-bw", "sweep-threshold", "sweep-urllc-rtt"):
        if args.pages is not None:
            kwargs["page_count"] = args.pages
        elif args.quick:
            kwargs["page_count"] = 4 if name == "table1" else 3
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner = EXPERIMENTS[name]
        result = runner(**_kwargs_for(name, args))
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
