"""Command-line entry point: ``python -m repro <experiment> [options]``.

Examples::

    python -m repro fig1a
    python -m repro fig2 --duration 30
    python -m repro table1 --pages 10 --jobs 4
    python -m repro all --quick --jobs 8
    python -m repro fig1a --no-cache
    python -m repro sweep-urllc-bw --cache-dir /tmp/repro-cache
    python -m repro fig1a --trace-dir /tmp/traces
    python -m repro obs summarize /tmp/traces/fig1a-cubic.jsonl
    python -m repro chaos --quick --jobs 4

Every experiment decomposes into independent simulation units executed
through :class:`repro.runner.ParallelRunner`: ``--jobs N`` fans units out
over N worker processes (results are merged deterministically, so output
is identical to a serial run), and units are memoized in a
content-addressed cache so repeated runs skip already-computed work.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS
from repro.runner import ParallelRunner, ResultCache, default_cache_dir


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures/tables and ablations.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="override run duration in seconds (fig1a/fig1b/fig2/ab-cc/ab-mlo)",
    )
    parser.add_argument(
        "--pages", type=int, default=None, help="corpus size for table1"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short runs (smoke-test scale, not paper scale)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run simulation units on N worker processes (default: 1, inline)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every unit instead of reusing the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "result cache location (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro)"
        ),
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="background tenant count for the fleet experiment",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "split fleet foreground flows across N shard units (the "
            "background replays identically in every shard; flows in "
            "different shards do not contend, so this changes the scenario)"
        ),
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "export repro.obs packet-lifecycle traces (JSONL) into DIR "
            "(fig1a/fig1b/fig2/table1); inspect with `python -m repro obs "
            "summarize`"
        ),
    )
    return parser


def _runner_for(args: argparse.Namespace) -> ParallelRunner:
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    return ParallelRunner(jobs=args.jobs, cache=cache)


def _kwargs_for(name: str, args: argparse.Namespace, runner: ParallelRunner) -> dict:
    kwargs: dict = {"seed": args.seed, "runner": runner}
    duration = args.duration
    if args.quick and duration is None:
        duration = 10.0
    if duration is not None and name in (
        "fig1a", "fig1b", "fig2", "ab-cc", "ab-mlo", "ab-mp", "ab-reseq", "faults"
    ):
        kwargs["duration"] = duration
    if name == "faults" and args.quick:
        # One outage length, shortened run: smoke-test scale.
        kwargs["outages"] = (1.0,)
        kwargs["duration"] = duration if duration is not None else 8.0
    if name == "resilience":
        # Quick keeps the full regime x policy x CCA grid (the scorecard's
        # acceptance bar includes every cell) and the 10k-tenant fleet
        # cells — only the simulated duration shrinks.
        from repro.experiments.resilience import QUICK_DURATION

        kwargs["duration"] = args.duration if args.duration is not None else (
            QUICK_DURATION if args.quick else 20.0
        )
        if args.quick:
            kwargs["fleet_duration"] = 6.0
        if args.tenants is not None:
            kwargs["fleet_tenants"] = args.tenants
    if name == "cc-matrix":
        kwargs["duration"] = args.duration if args.duration is not None else (
            2.5 if args.quick else 10.0
        )
        if args.quick:
            # Headline CCAs only: 6 pairs instead of 21 per preset/policy.
            from repro.experiments.cc_matrix import QUICK_CCAS

            kwargs["ccas"] = QUICK_CCAS
    if name == "ablate":
        # Quick keeps the full 8 s duration: the fault scenarios need their
        # cycles to play out for the deltas to be meaningful, and the whole
        # grid is only 30 short units.
        if args.duration is not None:
            kwargs["duration"] = args.duration
    if name == "fleet":
        if args.duration is not None:
            kwargs["duration"] = args.duration
        if args.quick:
            kwargs["tenants"] = 2_000
            kwargs["foreground"] = 6
            kwargs.setdefault("duration", 6.0)
        if args.tenants is not None:
            kwargs["tenants"] = args.tenants
        if args.shards is not None:
            kwargs["shards"] = args.shards
    if name in ("table1", "baselines", "sweep-urllc-bw", "sweep-threshold", "sweep-urllc-rtt"):
        if args.pages is not None:
            kwargs["page_count"] = args.pages
        elif args.quick:
            kwargs["page_count"] = 4 if name == "table1" else 3
    if args.trace_dir is not None and name in ("fig1a", "fig1b", "fig2", "table1"):
        kwargs["trace_dir"] = args.trace_dir
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        # Observability tooling has its own subcommand tree; dispatch before
        # argparse so `python -m repro obs summarize trace.jsonl` works.
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "chaos":
        # Same pattern for the invariant-checked chaos campaign
        # (`python -m repro chaos --quick`, `... chaos --replay bundle.json`).
        from repro.check.chaos import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "bench":
        # Benchmark trajectory harness (`python -m repro bench run|compare`).
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    runner = _runner_for(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run = EXPERIMENTS[name]
        result = run(**_kwargs_for(name, args, runner))
        print(result.render())
        print()
    if runner.cache is not None and (runner.cache_hits or runner.executed):
        print(
            f"[runner] jobs={runner.jobs} units={runner.cache_hits + runner.executed} "
            f"cache_hits={runner.cache_hits} executed={runner.executed} "
            f"cache={runner.cache.root}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
