"""The policy zoo: every steering baseline on the web workload.

The paper's related-work argument in one table: heterogeneity-blind
multipath (round-robin, rate-weighted), MPTCP-style schedulers (minRTT,
ECF), IANS-style flow-level selection (flow-pinned), DChannel's per-packet
steering, and transport-aware segment steering — all loading the same pages
over driving-trace eMBB + URLLC.

Expected ordering (the paper's narrative):

* eMBB-only — baseline;
* flow-pinned — little or no win (whole flows on one channel; web flows
  are too big for URLLC, so most pins land on eMBB);
* round-robin — actively harmful (half the bytes take a 2 Mbps channel);
* minRTT/ECF — moderate (delay-aware but class-blind);
* dchannel / transport-aware — best (accelerate the right packets).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.web.browser import load_page
from repro.apps.web.corpus import generate_corpus
from repro.core.api import HvcNetwork
from repro.core.results import ExperimentResult, Table
from repro.net.hvc import traced_embb_spec, urllc_spec
from repro.runner import ParallelRunner, RunUnit
from repro.steering.single import SingleChannelSteerer
from repro.traces.catalog import get_trace
from repro.units import to_ms

BASELINE_POLICIES = (
    "embb-only",
    "flow-pinned",
    "round-robin",
    "min-rtt",
    "ecf",
    "dchannel",
    "transport-aware",
)


def _steering_for(policy: str):
    if policy == "embb-only":
        return SingleChannelSteerer(channel_name="embb")
    return policy


def baseline_policy_unit(
    policy: str = "dchannel", page_count: int = 10, seed: int = 0
) -> dict:
    """Mean PLT for one steering policy over the corpus (runner unit)."""
    pages = generate_corpus(count=page_count, seed=seed)
    plts: List[float] = []
    events = 0
    for index, page in enumerate(pages):
        trace = get_trace("5g-lowband-driving", seed=seed + index + 1)
        embb = traced_embb_spec(trace)
        embb.name = "embb"
        net = HvcNetwork(
            [embb, urllc_spec()], steering=_steering_for(policy),
            seed=seed + index,
        )
        outcome = load_page(net, page, cc="cubic", timeout=45.0)
        plts.append(outcome.plt if outcome.complete else 45.0)
        events += net.sim.events_processed
    return {"plt_ms": to_ms(sum(plts) / len(plts)), "events": events}


def run_baselines(
    policies: Sequence[str] = BASELINE_POLICIES,
    page_count: int = 10,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """Mean web PLT per steering policy (driving trace, no background)."""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="baselines",
        description=(
            "Mean web PLT for the whole steering-policy zoo over "
            "5G Lowband driving + URLLC."
        ),
    )
    table = Table(["policy", "mean PLT (ms)", "vs eMBB-only"], title="Policy zoo")
    means: Dict[str, float] = {}
    payloads = runner.run(
        [
            RunUnit.make(
                "baseline-policy",
                "repro.experiments.baselines:baseline_policy_unit",
                seed=seed,
                policy=policy,
                page_count=page_count,
            )
            for policy in policies
        ]
    )
    for policy, payload in zip(policies, payloads):
        means[policy] = payload["plt_ms"]
        result.values[policy] = means[policy]
        result.events_processed += payload["events"]
    baseline = means.get("embb-only")
    for policy in policies:
        delta = (
            f"{100 * (1 - means[policy] / baseline):+.1f}%"
            if baseline
            else "-"
        )
        table.add_row(policy, means[policy], delta)
    result.tables.append(table)
    ordering = sorted(means, key=means.get)
    result.notes.append("fastest to slowest: " + " < ".join(ordering))
    return result
