"""Fleet-scale multi-tenant runs on the hybrid-fidelity engine.

One simulated network carries 10k+ tenants sharing an HVC channel pair:
foreground flows run packet-level, the tenant mass runs as fluid rate
ODEs (:mod:`repro.fleet`). The experiment reports the two headline
numbers the paper's fleet argument needs — the FCT distribution (p50 /
p99) and per-CCA goodput shares — as tenant count scales.

Sharding model: the *background* world is deterministic and cheap (one
vectorized ODE step per tick), so every shard replays it identically and
only the packet-level foreground flows are split across workers
(``flow_index % shards == shard``). The merge asserts every shard's
background digest matches — any nondeterminism or cross-fidelity leak
shows up as a hard failure, not a silently skewed figure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.results import ExperimentResult, SeriesSet, Table
from repro.errors import RunnerError
from repro.fleet.hybrid import FleetConfig, FleetSimulation, percentile
from repro.fleet.validation import (
    ValidationTolerance,
    check_equivalence,
    run_equivalence_case,
)
from repro.runner import ParallelRunner, RunUnit

DEFAULT_TENANTS = 10_000
DEFAULT_FOREGROUND = 12
DEFAULT_DURATION = 20.0


def fleet_unit(
    tenants: int = DEFAULT_TENANTS,
    foreground: int = DEFAULT_FOREGROUND,
    duration: float = DEFAULT_DURATION,
    preset: str = "paper",
    tick: float = 0.01,
    shard: int = 0,
    shards: int = 1,
    seed: int = 0,
) -> dict:
    """One shard of a fleet run, reduced to a picklable payload."""
    config = FleetConfig(
        tenants=tenants,
        foreground=foreground,
        duration=duration,
        seed=seed,
        preset=preset,
        tick=tick,
        shard=shard,
        shards=shards,
        # One-way coupling always: the experiment's output must be
        # identical for any shard count (the runner's determinism
        # promise), so even a single-shard run may not let the
        # foreground feed back into the fluid ODEs.
        sense_foreground=False,
    )
    sim = FleetSimulation(config)
    return sim.run()


def fleet_units(
    tenants: int,
    foreground: int,
    duration: float,
    preset: str,
    tick: float,
    shards: int,
    seed: int,
) -> List[RunUnit]:
    return [
        RunUnit.make(
            "fleet",
            "repro.experiments.fleet:fleet_unit",
            seed=seed,
            tenants=tenants,
            foreground=foreground,
            duration=duration,
            preset=preset,
            tick=tick,
            shard=shard,
            shards=shards,
        )
        for shard in range(shards)
    ]


def _merge_shards(payloads: List[dict]) -> dict:
    """Deterministic merge: background from shard 0, foreground by index.

    Every shard replays the identical fluid background; their digests
    must match exactly or the run is invalid (a shard's foreground leaked
    into the background dynamics, or the engine went nondeterministic).
    """
    digests = {p["background_digest"] for p in payloads}
    if len(digests) != 1:
        raise RunnerError(
            "fleet shards disagree on the background digest "
            f"({len(digests)} distinct values across {len(payloads)} shards) — "
            "the background world is supposed to replay identically in every "
            "shard; refusing to merge skewed results"
        )
    merged = dict(payloads[0])
    flows = [f for p in payloads for f in p["foreground"]]
    flows.sort(key=lambda f: f["index"])
    merged["foreground"] = flows
    merged["events_processed"] = sum(p["events_processed"] for p in payloads)
    fg_bytes: Dict[str, float] = {}
    for flow in flows:
        fg_bytes[flow["cca"]] = fg_bytes.get(flow["cca"], 0.0) + flow["bytes_acked"]
    from repro.fleet.hybrid import goodput_shares

    merged["goodput_shares"] = goodput_shares(
        merged["background"]["bytes_by_cca"], fg_bytes
    )
    return merged


def run_fleet(
    tenants: int = DEFAULT_TENANTS,
    foreground: int = DEFAULT_FOREGROUND,
    duration: float = DEFAULT_DURATION,
    preset: str = "paper",
    tick: float = 0.01,
    seed: int = 0,
    shards: int = 1,
    validate: bool = True,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """The fleet experiment: FCT and goodput shares at tenant scale.

    ``shards`` splits the packet-level foreground across that many run
    units (parallelized by the runner's worker pool). The background is
    bit-identical in every shard — asserted via digest at merge — but
    foreground flows in *different* shards do not contend with each
    other, so the shard count is part of the scenario, not a pure
    execution knob: it defaults to 1 and is never inferred from
    ``runner.jobs``.
    """
    runner = runner if runner is not None else ParallelRunner()
    shards = max(1, min(int(shards), max(foreground, 1)))
    payloads = runner.run(
        fleet_units(tenants, foreground, duration, preset, tick, shards, seed)
    )
    merged = _merge_shards(payloads)

    result = ExperimentResult(
        name="fleet",
        description=(
            f"{tenants} fluid background tenants + {foreground} packet-level "
            f"foreground flows sharing the {preset!r} channel pair for "
            f"{duration:g}s ({shards} shard(s))."
        ),
        events_processed=merged["events_processed"],
    )
    bg = merged["background"]
    bg_fct = bg["fct"]
    fg_fct = [x for flow in merged["foreground"] for x in flow["fct"]]

    result.values["tenants"] = float(tenants)
    result.values["bg_completed"] = float(bg["completed"])
    result.values["bg_fct_p50_ms"] = percentile(bg_fct, 50) * 1000.0
    result.values["bg_fct_p99_ms"] = percentile(bg_fct, 99) * 1000.0
    result.values["fg_fct_p50_ms"] = percentile(fg_fct, 50) * 1000.0
    result.values["fg_fct_p99_ms"] = percentile(fg_fct, 99) * 1000.0
    result.values["fg_requests"] = float(len(fg_fct))

    fct_table = Table(
        ["population", "flows", "completed", "p50 (ms)", "p99 (ms)"],
        title="Flow completion times",
    )
    fct_table.add_row(
        "background (fluid)",
        tenants,
        bg["completed"],
        result.values["bg_fct_p50_ms"],
        result.values["bg_fct_p99_ms"],
    )
    fct_table.add_row(
        "foreground (packet)",
        foreground,
        len(fg_fct),
        result.values["fg_fct_p50_ms"],
        result.values["fg_fct_p99_ms"],
    )
    result.tables.append(fct_table)

    share_table = Table(["CCA", "goodput share"], title="Per-CCA goodput shares")
    for cca, share in sorted(merged["goodput_shares"].items()):
        share_table.add_row(cca, share)
        result.values[f"share_{cca}"] = share
    result.tables.append(share_table)

    util = merged["utilization"]
    util_series = SeriesSet(
        title="Channel utilization (shard 0 view)", x_label="channel", y_label="util"
    )
    for i, (name, u) in enumerate(sorted(util.items())):
        util_series.add(name, [(0.0, u["up"]), (1.0, u["down"])])
        result.values[f"util_up_{name}"] = u["up"]
    result.series.append(util_series)

    by_class = bg["bytes_by_class"]
    result.notes.append(
        "background bytes by class: "
        + ", ".join(f"{k}={v:.0f}" for k, v in sorted(by_class.items()))
    )
    result.notes.append(f"background digest {merged['background_digest'][:16]}…")

    if validate:
        report = run_equivalence_case(seed=seed)
        violations = check_equivalence(report, ValidationTolerance())
        d = report["deltas"]
        result.values["validation_fct_p50_rel"] = d["fct_p50_rel"]
        result.values["validation_fct_p90_rel"] = d["fct_p90_rel"]
        if violations:
            result.notes.append(
                "hybrid-vs-packet equivalence gate FAILED: " + "; ".join(violations)
            )
        else:
            result.notes.append(
                "hybrid-vs-packet equivalence gate passed "
                f"(p50 rel {d['fct_p50_rel']:.1%}, p90 rel {d['fct_p90_rel']:.1%}, "
                f"{report['full']['tenants']} packet-level flows)"
            )
    return result
